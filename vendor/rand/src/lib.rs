//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API used by this workspace —
//! `StdRng::seed_from_u64`, `gen_range` over integer ranges, and
//! `gen_bool` — with a deterministic xorshift*-style generator seeded
//! through SplitMix64. See `vendor/README.md` for why this exists.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next pseudo-random word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly, yielding a `T`. Generic in
/// `T` (like the real crate) so that integer literals in ranges infer
/// their type from the call site.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to u64/i128-free arithmetic: the spans used in
                // this workspace are tiny, so modulo bias is irrelevant,
                // but use 128-bit multiply-shift anyway for uniformity.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let word = rng.next_u64();
                let idx = ((word as u128 * span as u128) >> 64) as u64;
                ((self.start as i64).wrapping_add(idx as i64)) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl SampleRange<u64> for Range<u64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let word = rng.next_u64();
        self.start + ((word as u128 * span as u128) >> 64) as u64
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator (xorshift1024*-lite: a
    /// 4-word xoshiro-style state initialised via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the (astronomically unlikely) all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-4..5i64);
            assert!((-4..5).contains(&x));
            let y = r.gen_range(0..3usize);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..u64::MAX) == b.gen_range(0..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
