//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses.
//! Cases are generated from a deterministic per-case RNG; there is no
//! shrinking — a failing case panics with its case index so it can be
//! replayed. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-run configuration (only `cases` is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG handed to strategies.
pub mod test_runner {
    pub use super::TestCaseError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case randomness source.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// An RNG for the given case index (scrambled so consecutive
        /// cases are uncorrelated).
        pub fn from_case(case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(
                case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xd1b5_4a32_d192_ed03,
            ))
        }
    }
}

use test_runner::TestRng;

/// A value generator. The stand-in generates without shrinking.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: each level chooses
    /// between the leaf strategy and one application of `recurse`.
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = union(vec![self.clone().boxed(), deeper]);
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Uniform choice among equally-weighted strategies (the engine
/// behind [`prop_oneof!`]).
pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    BoxedStrategy(Rc::new(move |rng| {
        let i = rng.0.gen_range(0..options.len());
        options[i].new_value(rng)
    }))
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Seeds the strategy RNG for one case of a `proptest!` property.
#[doc(hidden)]
pub fn rng_for_case(case: u64) -> TestRng {
    TestRng::from_case(case)
}

#[doc(hidden)]
pub fn _seed_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Supports the subset of the real macro used
/// by this workspace: an optional `#![proptest_config(..)]` header and
/// `fn name(pat in strategy, ...) { body }` items (with attributes and
/// doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut proptest_rng = $crate::rng_for_case(case);
                $(let $pat = $crate::Strategy::new_value(&($strat), &mut proptest_rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> BoxedStrategy<u32> {
        prop_oneof![Just(1u32), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_yields_members(x in small()) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn any_u64_draws_distinct_values(a in any::<u64>(), b in any::<u64>()) {
            // a and b come from one RNG stream; a collision within a
            // case would mean the stream is stuck.
            prop_assert!(a != b, "rng produced {} twice in a row", a);
        }

        #[test]
        fn map_and_tuples(pair in (small(), small()).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=6).contains(&pair), "sum {} out of range", pair);
        }
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::rng_for_case(9);
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 5);
        }
    }
}
