//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/group/bencher API surface this workspace's
//! benches use, with real wall-clock measurement: each benchmark is
//! auto-calibrated to ~25 ms per sample and reported as the median of
//! `sample_size` samples. Running a bench binary with `--test` (as
//! `cargo test --benches` does) executes every body once without
//! timing, so benches double as smoke tests. See `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Reads `--test` / a name filter from the command line, the way
    /// cargo invokes bench binaries.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" => {}
                s if s.starts_with("--") => {
                    // Swallow `--flag value` pairs we don't implement.
                    if matches!(s, "--save-baseline" | "--baseline" | "--measurement-time") {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, 100, &mut f);
        self
    }
}

fn run_one<F>(criterion: &Criterion, label: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.test_mode {
        let mut b = Bencher {
            mode: Mode::Once,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    let mut b = Bencher {
        mode: Mode::Measure { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no iterations)");
        return;
    }
    b.samples.sort_unstable_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

enum Mode {
    Once,
    Measure { sample_size: usize },
}

/// Times a closure, handed to each benchmark body.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs the routine repeatedly, recording ns/iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Once => {
                black_box(routine());
            }
            Mode::Measure { sample_size } => {
                // Calibrate: how many iterations fill the target
                // sample duration?
                let start = Instant::now();
                black_box(routine());
                let one = start.elapsed().max(Duration::from_nanos(1));
                let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
                self.samples.clear();
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }

    #[test]
    fn measurement_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                count += 1;
                std::hint::black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        run_one(&c, "x", 10, &mut |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }
}
