//! The end-to-end pipeline, now session-centric: GTLC source → λB →
//! λC → λS → execution, with all interned state owned by a
//! [`Session`].
//!
//! This module is the *compatibility* surface. The runtime itself
//! lives in [`crate::session`]: a [`Session`]
//! owns the coercion arena, compose cache, and type arena, and hands
//! out [`Program`] handles that share them —
//! so N programs compiled into one session intern each distinct
//! coercion, memoize each composition, and answer each subtyping
//! question exactly once between them.
//!
//! [`Compiled`] remains as a thin **deprecated** shim over a private
//! single-program session, so code written against the old
//! one-program-one-arena API keeps compiling for one release. Migrate
//! by replacing
//!
//! ```text
//! let program = Compiled::compile(src)?;          // old
//! let report  = program.run(Engine::MachineS, fuel);
//! ```
//!
//! with
//!
//! ```text
//! let session = Session::new();                    // new
//! let program = session.compile(src)?;
//! let report  = session.run_with_fuel(&program, Engine::MachineS, fuel)?;
//! ```
//!
//! (see the migration note in CHANGES.md). The new run path returns
//! `Result<RunReport, RunError>`: fuel exhaustion is the typed error
//! [`RunError::FuelExhausted`]
//! carrying the real step count, never a sentinel observation, and
//! nothing on the run path panics.

use bc_core::arena::CacheStats;
use bc_gtlc::Diagnostic;
use bc_syntax::intern::QueryStats;
use bc_syntax::{Label, Type};
use bc_translate::bisim::Observation;

use crate::session::{Program, RunError, Session};

pub use crate::session::{Engine, RunReport};

/// A program compiled through the whole pipeline, bound to its own
/// private single-program [`Session`].
///
/// Deprecated: compile into a shared [`Session`] instead, so programs
/// pool their interned state (see the [module docs](self) for the
/// migration recipe).
#[derive(Debug)]
pub struct Compiled {
    session: Session,
    program: Program,
}

impl Clone for Compiled {
    fn clone(&self) -> Compiled {
        // The session's arenas and cache clone as a pair (fresh
        // generation, re-bound cache) and the program is re-bound to
        // the clone's identity — both sides keep their warm caches.
        let session = self.session.clone_state();
        let program = session.adopt(&self.program);
        Compiled { session, program }
    }
}

impl std::ops::Deref for Compiled {
    type Target = Program;

    /// The underlying [`Program`] handle (term trees, type, blame
    /// explanation).
    fn deref(&self) -> &Program {
        &self.program
    }
}

impl Compiled {
    /// Compiles GTLC source text through cast insertion and the two
    /// translations, into a private single-program session.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on lexical, syntax, or gradual type
    /// errors.
    #[deprecated(note = "use Session::compile so programs share interned state; \
                         see the migration note in CHANGES.md")]
    pub fn compile(source: &str) -> Result<Compiled, Diagnostic> {
        let session = Session::new();
        let program = session.compile(source)?;
        Ok(Compiled { session, program })
    }

    /// Wraps an already-built λB term (assumed closed and well typed).
    ///
    /// # Panics
    ///
    /// Panics if the term is not well typed at `ty`; use
    /// [`Compiled::try_from_lambda_b`] for a typed error instead.
    #[deprecated(note = "use Compiled::try_from_lambda_b (typed error) or \
                         Session::load_lambda_b")]
    pub fn from_lambda_b(term: bc_lambda_b::Term, ty: Type) -> Compiled {
        Compiled::try_from_lambda_b(term, ty)
            .unwrap_or_else(|e| panic!("term is not well typed at the stated type: {e}"))
    }

    /// Wraps an already-built λB term, checking it against the stated
    /// type.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::IllTyped`] if the term is open, ill typed,
    /// or well typed at a different type than stated.
    pub fn try_from_lambda_b(term: bc_lambda_b::Term, ty: Type) -> Result<Compiled, RunError> {
        let session = Session::new();
        let program = session.load_lambda_b(term, ty)?;
        Ok(Compiled { session, program })
    }

    /// Runs the program on the chosen engine with a fuel bound,
    /// reporting fuel exhaustion as the legacy
    /// [`Observation::Timeout`] (with the machine metrics collected up
    /// to the cutoff, exactly as the pre-session API did).
    ///
    /// # Panics
    ///
    /// Panics if a term loaded through the deprecated unchecked path
    /// turns out ill typed (impossible for compiled source).
    #[deprecated(note = "use Session::run_with_fuel, which returns \
                         Result<RunReport, RunError> instead of a timeout sentinel")]
    pub fn run(&self, engine: Engine, fuel: u64) -> RunReport {
        match self.try_run(engine, fuel) {
            Ok(report) => report,
            Err(RunError::FuelExhausted { steps, metrics }) => RunReport {
                observation: Observation::Timeout,
                steps,
                metrics,
            },
            Err(e @ RunError::IllTyped(_)) => panic!("compiled program failed to run: {e}"),
        }
    }

    /// Runs the program on the chosen engine with a fuel bound,
    /// returning the typed result of the session run path.
    ///
    /// # Errors
    ///
    /// See [`Session::run_with_fuel`].
    pub fn try_run(&self, engine: Engine, fuel: u64) -> Result<RunReport, RunError> {
        self.session.run_with_fuel(&self.program, engine, fuel)
    }

    /// How much interning/memoization this program has accumulated:
    /// `(distinct coercions, memoized pairs, cache stats)`.
    #[deprecated(note = "use Session::stats (consolidated SessionStats)")]
    pub fn coercion_stats(&self) -> (usize, usize, CacheStats) {
        let stats = self.session.stats();
        (stats.coercions.nodes, stats.compose_pairs, stats.compose)
    }

    /// How much type interning/memoization this program has
    /// accumulated: `(distinct type nodes, query stats)`.
    #[deprecated(note = "use Session::stats (consolidated SessionStats)")]
    pub fn type_stats(&self) -> (usize, QueryStats) {
        let stats = self.session.stats();
        (stats.type_nodes, stats.type_queries)
    }

    /// The size (syntax nodes) and number of boundary crossings of the
    /// compiled IR.
    #[deprecated(note = "use Program::ir_size and Program::boundary_crossings")]
    pub fn compiled_stats(&self) -> (usize, usize) {
        (self.program.ir_size(), self.program.boundary_crossings())
    }

    /// Renders the compiled λS IR in the paper grammar (resolved
    /// through the private session's arenas).
    pub fn display_compiled(&self) -> String {
        self.session.display_compiled(&self.program)
    }

    /// Explains a blame label as a source-level diagnostic, when the
    /// program was compiled from source and the label came from cast
    /// insertion.
    pub fn explain_blame(&self, label: Label) -> Option<String> {
        self.program.explain_blame(label)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn deprecated_shim_still_compiles_and_runs() {
        let compiled = Compiled::compile(
            "letrec even (n : Int) : Bool = \
               if n = 0 then true else \
               if n = 1 then false else even (n - 2) \
             in even 10",
        )
        .expect("compiles");
        let expected = compiled.run(Engine::LambdaB, 100_000).observation;
        for engine in Engine::ALL {
            assert_eq!(
                compiled.run(engine, 100_000).observation,
                expected,
                "{engine}"
            );
        }
        // The legacy stats accessors keep answering (the program is
        // fully static, so there may be no coercions to count).
        let (_, _, cache_stats) = compiled.coercion_stats();
        assert_eq!(cache_stats.evictions, 0);
        let (type_nodes, _) = compiled.type_stats();
        assert!(type_nodes > 0);
        let (ir_size, _) = compiled.compiled_stats();
        assert!(ir_size > 0);
        assert!(!compiled.display_compiled().is_empty());
        // Deref exposes the Program fields old code read directly.
        assert_eq!(compiled.ty, Type::BOOL);
    }

    #[test]
    fn shim_run_reports_fuel_exhaustion_as_the_legacy_timeout() {
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 64",
        )
        .expect("compiles");
        let report = compiled.run(Engine::MachineS, 5);
        assert_eq!(report.observation, Observation::Timeout);
        assert_eq!(report.steps, 5);
        // Machine timeouts keep their metrics, exactly as the
        // pre-session API reported them.
        assert!(report.metrics.is_some());
        // The typed path reports the same condition as an error.
        match compiled.try_run(Engine::MachineS, 5) {
            Err(RunError::FuelExhausted { steps: 5, metrics }) => {
                assert!(metrics.is_some());
            }
            other => panic!("expected FuelExhausted, got {other:?}"),
        }
    }

    #[test]
    fn repeated_machine_s_runs_share_the_cache() {
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 64",
        )
        .expect("compiles");
        let first = compiled.run(Engine::MachineS, 1_000_000);
        let (_, _, stats_after_first) = compiled.coercion_stats();
        let second = compiled.run(Engine::MachineS, 1_000_000);
        assert_eq!(first.observation, second.observation);
        let (distinct, pairs, stats) = compiled.coercion_stats();
        assert_eq!(
            stats.misses, stats_after_first.misses,
            "second run must not compose anything structurally"
        );
        assert!(stats.hits > stats_after_first.hits);
        assert!(distinct > 0 && pairs > 0);
    }

    #[test]
    fn machine_s_boundary_crossings_never_reintern() {
        // A MachineS run of a compiled program performs zero tree
        // interning — boundary crossings are id loads — on the first
        // run and every run after.
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 512",
        )
        .expect("compiles");
        for round in 0..3 {
            let report = compiled.run(Engine::MachineS, 10_000_000);
            let reuse = report.metrics.expect("machines report metrics").reuse;
            assert_eq!(
                reuse.tree_interns, 0,
                "round {round} re-interned a coercion tree"
            );
            if round > 0 {
                assert_eq!(reuse.node_misses, 0, "round {round}");
                assert_eq!(reuse.compose_misses, 0, "round {round}");
                assert!(reuse.compose_hits > 0, "round {round}");
            }
        }
    }

    #[test]
    fn cloned_programs_keep_working_arenas() {
        // Compiled's Clone re-binds the cache to the cloned arena and
        // the program to the cloned session; both the original and the
        // clone keep running — and keep their warm caches.
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 32",
        )
        .expect("compiles");
        let before = compiled.run(Engine::MachineS, 1_000_000);
        let cloned = compiled.clone();
        let from_clone = cloned.run(Engine::MachineS, 1_000_000);
        let from_original = compiled.run(Engine::MachineS, 1_000_000);
        assert_eq!(before.observation, from_clone.observation);
        assert_eq!(before.observation, from_original.observation);
        let (_, _, stats) = cloned.coercion_stats();
        let (_, _, stats_orig) = compiled.coercion_stats();
        assert!(stats.hits > 0, "clone must inherit the warm cache");
        assert!(stats_orig.hits > 0);
    }

    #[test]
    fn try_from_lambda_b_reports_typed_errors() {
        let bad = bc_lambda_b::Term::int(1).app(bc_lambda_b::Term::int(2));
        match Compiled::try_from_lambda_b(bad, Type::INT) {
            Err(RunError::IllTyped(_)) => {}
            other => panic!("expected IllTyped, got {other:?}"),
        }
        let good =
            Compiled::try_from_lambda_b(bc_lambda_b::Term::int(1), Type::INT).expect("well typed");
        assert!(good.try_run(Engine::MachineS, 100).expect("runs").steps > 0);
    }

    #[test]
    #[should_panic(expected = "not well typed")]
    fn from_lambda_b_still_panics_for_old_callers() {
        let bad = bc_lambda_b::Term::int(1).app(bc_lambda_b::Term::int(2));
        let _ = Compiled::from_lambda_b(bad, Type::INT);
    }
}
