//! The end-to-end pipeline: GTLC source → λB → λC → λS → execution.

use std::fmt;

use bc_gtlc::Diagnostic;
use bc_machine::metrics::Metrics;
use bc_syntax::{Label, Type};
use bc_translate::bisim::{observe_b, observe_c, observe_s, Observation};
use bc_translate::{term_b_to_c, term_c_to_s};

/// Which semantics executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Small-step reduction in the blame calculus (Figure 1).
    LambdaB,
    /// Small-step reduction in the coercion calculus (Figure 3).
    LambdaC,
    /// Small-step reduction in the space-efficient calculus (Figure 5).
    LambdaS,
    /// The λB CEK machine (leaks on boundary-crossing tail calls).
    MachineB,
    /// The λC CEK machine (same leak, coercion syntax).
    MachineC,
    /// The λS CEK machine (merges coercion frames; space-efficient).
    MachineS,
}

impl Engine {
    /// All engines, in a fixed order.
    pub const ALL: [Engine; 6] = [
        Engine::LambdaB,
        Engine::LambdaC,
        Engine::LambdaS,
        Engine::MachineB,
        Engine::MachineC,
        Engine::MachineS,
    ];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::LambdaB => "λB (small-step)",
            Engine::LambdaC => "λC (small-step)",
            Engine::LambdaS => "λS (small-step)",
            Engine::MachineB => "λB (CEK machine)",
            Engine::MachineC => "λC (CEK machine)",
            Engine::MachineS => "λS (CEK machine)",
        };
        f.write_str(name)
    }
}

/// The result of running a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// What the program evaluated to.
    pub observation: Observation,
    /// Steps taken (reduction steps or machine transitions).
    pub steps: u64,
    /// Machine space metrics (machines only).
    pub metrics: Option<Metrics>,
}

/// A program compiled through the whole pipeline, with all three
/// intermediate representations available.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The elaborated λB term (with inserted casts).
    pub lambda_b: bc_lambda_b::Term,
    /// The λC translation `|·|BC`.
    pub lambda_c: bc_lambda_c::Term,
    /// The λS translation `|·|CS ∘ |·|BC`.
    pub lambda_s: bc_core::Term,
    /// The program's (gradual) type.
    pub ty: Type,
    /// The source-program span map for blame reporting, if compiled
    /// from source.
    program: Option<bc_gtlc::Program>,
    source: Option<String>,
}

impl Compiled {
    /// Compiles GTLC source text through cast insertion and the two
    /// translations.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on lexical, syntax, or gradual type
    /// errors.
    pub fn compile(source: &str) -> Result<Compiled, Diagnostic> {
        let program = bc_gtlc::compile(source)?;
        let mut compiled = Compiled::from_lambda_b(program.term.clone(), program.ty.clone());
        compiled.program = Some(program);
        compiled.source = Some(source.to_owned());
        Ok(compiled)
    }

    /// Wraps an already-built λB term (assumed closed and well typed).
    ///
    /// # Panics
    ///
    /// Panics if the term is not well typed at `ty`.
    pub fn from_lambda_b(term: bc_lambda_b::Term, ty: Type) -> Compiled {
        assert_eq!(
            bc_lambda_b::type_of(&term).as_ref(),
            Ok(&ty),
            "term is not well typed at the stated type"
        );
        let lambda_c = term_b_to_c(&term);
        let lambda_s = term_c_to_s(&lambda_c);
        Compiled {
            lambda_b: term,
            lambda_c,
            lambda_s,
            ty,
            program: None,
            source: None,
        }
    }

    /// Runs the program on the chosen engine with a fuel bound.
    pub fn run(&self, engine: Engine, fuel: u64) -> RunReport {
        match engine {
            Engine::LambdaB => {
                let r = bc_lambda_b::eval::run(&self.lambda_b, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_b(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::LambdaC => {
                let r = bc_lambda_c::eval::run(&self.lambda_c, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_c(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::LambdaS => {
                let r = bc_core::eval::run(&self.lambda_s, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_s(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::MachineB => {
                let r = bc_machine::cek_b::run(&self.lambda_b, fuel);
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
            Engine::MachineC => {
                let r = bc_machine::cek_c::run(&self.lambda_c, fuel);
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
            Engine::MachineS => {
                let r = bc_machine::cek_s::run(&self.lambda_s, fuel);
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
        }
    }

    /// Explains a blame label as a source-level diagnostic, when the
    /// program was compiled from source and the label came from cast
    /// insertion.
    pub fn explain_blame(&self, label: Label) -> Option<String> {
        let program = self.program.as_ref()?;
        let source = self.source.as_deref()?;
        program.explain_blame(label, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_on_a_program() {
        let compiled = Compiled::compile(
            "letrec even (n : Int) : Bool = \
               if n = 0 then true else \
               if n = 1 then false else even (n - 2) \
             in even 10",
        )
        .expect("compiles");
        let expected = compiled.run(Engine::LambdaB, 100_000).observation;
        for engine in Engine::ALL {
            assert_eq!(
                compiled.run(engine, 100_000).observation,
                expected,
                "{engine}"
            );
        }
    }

    #[test]
    fn blame_is_explained_at_source_level() {
        let compiled =
            Compiled::compile("let f = fun x => x + 1 in f true").expect("compiles");
        match compiled.run(Engine::MachineS, 10_000).observation {
            Observation::Blame(p) => {
                let msg = compiled.explain_blame(p).expect("label is mapped");
                assert!(msg.contains("error"), "{msg}");
            }
            other => panic!("expected blame, got {other}"),
        }
    }
}
