//! The end-to-end pipeline: GTLC source → λB → λC → λS → execution.
//!
//! Each [`Compiled`] program owns a [`CoercionArena`], a
//! [`ComposeCache`], and a [`TypeArena`]: the λC→λS translation
//! interns every coercion it normalises **and lowers the program to
//! the compiled λS term IR** ([`bc_core::sterm::STerm`]) whose
//! `Coerce` nodes hold `Copy` ids. Every λS-machine run executes that
//! IR against the same arenas, so across repeated runs (a server
//! answering the same compiled program many times) boundary crossings
//! intern nothing and all composition work is answered from the
//! cache — observable via [`Metrics::reuse`] on each run's report.

use std::cell::RefCell;
use std::fmt;

use bc_core::arena::{CacheStats, CoercionArena, ComposeCache};
use bc_core::sterm::{compile_term, STerm};
use bc_gtlc::Diagnostic;
use bc_machine::metrics::Metrics;
use bc_syntax::intern::QueryStats;
use bc_syntax::{Label, Type, TypeArena};
use bc_translate::bisim::{observe_b, observe_c, observe_s, Observation};
use bc_translate::{term_b_to_c, term_c_to_s_in};

/// Which semantics executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Small-step reduction in the blame calculus (Figure 1).
    LambdaB,
    /// Small-step reduction in the coercion calculus (Figure 3).
    LambdaC,
    /// Small-step reduction in the space-efficient calculus (Figure 5).
    LambdaS,
    /// The λB CEK machine (leaks on boundary-crossing tail calls).
    MachineB,
    /// The λC CEK machine (same leak, coercion syntax).
    MachineC,
    /// The λS CEK machine (merges coercion frames; space-efficient).
    MachineS,
}

impl Engine {
    /// All engines, in a fixed order.
    pub const ALL: [Engine; 6] = [
        Engine::LambdaB,
        Engine::LambdaC,
        Engine::LambdaS,
        Engine::MachineB,
        Engine::MachineC,
        Engine::MachineS,
    ];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::LambdaB => "λB (small-step)",
            Engine::LambdaC => "λC (small-step)",
            Engine::LambdaS => "λS (small-step)",
            Engine::MachineB => "λB (CEK machine)",
            Engine::MachineC => "λC (CEK machine)",
            Engine::MachineS => "λS (CEK machine)",
        };
        f.write_str(name)
    }
}

/// The result of running a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// What the program evaluated to.
    pub observation: Observation,
    /// Steps taken (reduction steps or machine transitions).
    pub steps: u64,
    /// Machine space metrics (machines only).
    pub metrics: Option<Metrics>,
}

/// A program compiled through the whole pipeline, with all three
/// intermediate representations available.
#[derive(Debug)]
pub struct Compiled {
    /// The elaborated λB term (with inserted casts).
    pub lambda_b: bc_lambda_b::Term,
    /// The λC translation `|·|BC`.
    pub lambda_c: bc_lambda_c::Term,
    /// The λS translation `|·|CS ∘ |·|BC`.
    pub lambda_s: bc_core::Term,
    /// The λS term compiled to the id-carrying IR: coercions as
    /// `Copy` arena handles, type annotations interned. This is what
    /// [`Engine::MachineS`] executes. Private: its ids are only
    /// meaningful with this struct's own arenas, so handing it out
    /// raw would invite resolving it against a foreign arena.
    lambda_s_compiled: STerm,
    /// The program's (gradual) type.
    pub ty: Type,
    /// The source-program span map for blame reporting, if compiled
    /// from source.
    program: Option<bc_gtlc::Program>,
    source: Option<String>,
    /// The program's interned coercions; shared by translation and
    /// every λS-machine run of this program.
    arena: RefCell<CoercionArena>,
    /// Memoized compositions over `arena`'s ids.
    cache: RefCell<ComposeCache>,
    /// The program's interned types (annotations of the compiled IR,
    /// plus memoized compatibility/subtyping verdicts).
    types: RefCell<TypeArena>,
}

impl Clone for Compiled {
    fn clone(&self) -> Compiled {
        // The arena and cache must be cloned as a pair: an arena
        // clone gets a fresh id-space identity, and `clone_pair`
        // re-binds the cache to it (cloning them independently would
        // yield a pair that panics on first use).
        let (arena, cache) = self.arena.borrow().clone_pair(&self.cache.borrow());
        // The compiled IR's ids stay valid in the cloned arena: a
        // clone is an identical snapshot of the id-space (only its
        // *generation* is fresh, which matters to caches, not ids).
        Compiled {
            lambda_b: self.lambda_b.clone(),
            lambda_c: self.lambda_c.clone(),
            lambda_s: self.lambda_s.clone(),
            lambda_s_compiled: self.lambda_s_compiled.clone(),
            ty: self.ty.clone(),
            program: self.program.clone(),
            source: self.source.clone(),
            arena: RefCell::new(arena),
            cache: RefCell::new(cache),
            types: RefCell::new(self.types.borrow().clone()),
        }
    }
}

impl Compiled {
    /// Compiles GTLC source text through cast insertion and the two
    /// translations.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on lexical, syntax, or gradual type
    /// errors.
    pub fn compile(source: &str) -> Result<Compiled, Diagnostic> {
        let program = bc_gtlc::compile(source)?;
        let mut compiled = Compiled::from_lambda_b(program.term.clone(), program.ty.clone());
        compiled.program = Some(program);
        compiled.source = Some(source.to_owned());
        Ok(compiled)
    }

    /// Wraps an already-built λB term (assumed closed and well typed).
    ///
    /// # Panics
    ///
    /// Panics if the term is not well typed at `ty`.
    pub fn from_lambda_b(term: bc_lambda_b::Term, ty: Type) -> Compiled {
        assert_eq!(
            bc_lambda_b::type_of(&term).as_ref(),
            Ok(&ty),
            "term is not well typed at the stated type"
        );
        let lambda_c = term_b_to_c(&term);
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let mut types = TypeArena::new();
        let lambda_s = term_c_to_s_in(&mut arena, &mut cache, &lambda_c);
        // Lower once; every MachineS run of this program reuses the
        // compiled IR and its interned coercions.
        let lambda_s_compiled = compile_term(&lambda_s, &mut arena, &mut types);
        Compiled {
            lambda_b: term,
            lambda_c,
            lambda_s,
            lambda_s_compiled,
            ty,
            program: None,
            source: None,
            arena: RefCell::new(arena),
            cache: RefCell::new(cache),
            types: RefCell::new(types),
        }
    }

    /// Runs the program on the chosen engine with a fuel bound.
    pub fn run(&self, engine: Engine, fuel: u64) -> RunReport {
        match engine {
            Engine::LambdaB => {
                let r = bc_lambda_b::eval::run(&self.lambda_b, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_b(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::LambdaC => {
                let r = bc_lambda_c::eval::run(&self.lambda_c, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_c(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::LambdaS => {
                let r = bc_core::eval::run(&self.lambda_s, fuel).expect("compiled well typed");
                RunReport {
                    observation: observe_s(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                }
            }
            Engine::MachineB => {
                let r = bc_machine::cek_b::run(&self.lambda_b, fuel);
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
            Engine::MachineC => {
                let r = bc_machine::cek_c::run(&self.lambda_c, fuel);
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
            Engine::MachineS => {
                // The compiled fast path: the IR's coercions are
                // already interned, so each run performs zero tree
                // interning and re-answers every merge from the memo
                // table (see the reuse counters in the report).
                let mut arena = self.arena.borrow_mut();
                let mut cache = self.cache.borrow_mut();
                let r = bc_machine::cek_s::run_compiled_in(
                    &self.lambda_s_compiled,
                    &mut arena,
                    &mut cache,
                    fuel,
                );
                RunReport {
                    observation: r.outcome.to_observation(),
                    steps: r.metrics.steps,
                    metrics: Some(r.metrics),
                }
            }
        }
    }

    /// How much interning/memoization this program has accumulated:
    /// `(distinct coercions, memoized pairs, cache stats)`.
    pub fn coercion_stats(&self) -> (usize, usize, CacheStats) {
        let arena = self.arena.borrow();
        let cache = self.cache.borrow();
        (arena.len(), cache.len(), cache.stats())
    }

    /// How much type interning/memoization this program has
    /// accumulated: `(distinct type nodes, query stats)`.
    pub fn type_stats(&self) -> (usize, QueryStats) {
        let types = self.types.borrow();
        (types.len(), types.query_stats())
    }

    /// Renders the compiled λS IR in the paper grammar (resolved
    /// through this program's own arenas — the only arenas its ids
    /// are meaningful in).
    pub fn display_compiled(&self) -> String {
        self.lambda_s_compiled
            .display(&self.arena.borrow(), &self.types.borrow())
    }

    /// The size (syntax nodes, with each interned handle counting as
    /// one) and number of boundary crossings of the compiled IR.
    pub fn compiled_stats(&self) -> (usize, usize) {
        (
            self.lambda_s_compiled.size(),
            self.lambda_s_compiled.coercion_nodes(),
        )
    }

    /// Explains a blame label as a source-level diagnostic, when the
    /// program was compiled from source and the label came from cast
    /// insertion.
    pub fn explain_blame(&self, label: Label) -> Option<String> {
        let program = self.program.as_ref()?;
        let source = self.source.as_deref()?;
        program.explain_blame(label, source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_on_a_program() {
        let compiled = Compiled::compile(
            "letrec even (n : Int) : Bool = \
               if n = 0 then true else \
               if n = 1 then false else even (n - 2) \
             in even 10",
        )
        .expect("compiles");
        let expected = compiled.run(Engine::LambdaB, 100_000).observation;
        for engine in Engine::ALL {
            assert_eq!(
                compiled.run(engine, 100_000).observation,
                expected,
                "{engine}"
            );
        }
    }

    #[test]
    fn repeated_machine_s_runs_share_the_cache() {
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 64",
        )
        .expect("compiles");
        let first = compiled.run(Engine::MachineS, 1_000_000);
        let (_, _, stats_after_first) = compiled.coercion_stats();
        let second = compiled.run(Engine::MachineS, 1_000_000);
        assert_eq!(first.observation, second.observation);
        let (distinct, pairs, stats) = compiled.coercion_stats();
        assert_eq!(
            stats.misses, stats_after_first.misses,
            "second run must not compose anything structurally"
        );
        assert!(stats.hits > stats_after_first.hits);
        assert!(distinct > 0 && pairs > 0);
    }

    #[test]
    fn machine_s_boundary_crossings_never_reintern() {
        // Acceptance criterion of the compiled IR: a MachineS run of a
        // compiled program performs zero tree interning — boundary
        // crossings are id loads — on the first run and every run
        // after.
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 512",
        )
        .expect("compiles");
        for round in 0..3 {
            let report = compiled.run(Engine::MachineS, 10_000_000);
            let reuse = report.metrics.expect("machines report metrics").reuse;
            assert_eq!(
                reuse.tree_interns, 0,
                "round {round} re-interned a coercion tree"
            );
            if round > 0 {
                // Warm rounds add no nodes and compose nothing
                // structurally.
                assert_eq!(reuse.node_misses, 0, "round {round}");
                assert_eq!(reuse.compose_misses, 0, "round {round}");
                assert!(reuse.compose_hits > 0, "round {round}");
            }
        }
        let (type_nodes, _) = compiled.type_stats();
        assert!(type_nodes > 0, "annotations were interned at compile time");
        let (ir_size, crossings) = compiled.compiled_stats();
        assert!(ir_size > 0 && crossings > 0);
        assert!(!compiled.display_compiled().is_empty());
    }

    #[test]
    fn cloned_programs_keep_working_arenas() {
        // Compiled's manual Clone re-binds the cache to the cloned
        // arena (clone_pair); both the original and the clone must
        // keep running — and keep their warm caches.
        let compiled = Compiled::compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 32",
        )
        .expect("compiles");
        let before = compiled.run(Engine::MachineS, 1_000_000);
        let cloned = compiled.clone();
        let from_clone = cloned.run(Engine::MachineS, 1_000_000);
        let from_original = compiled.run(Engine::MachineS, 1_000_000);
        assert_eq!(before.observation, from_clone.observation);
        assert_eq!(before.observation, from_original.observation);
        let (_, _, stats) = cloned.coercion_stats();
        let (_, _, stats_orig) = compiled.coercion_stats();
        assert!(stats.hits > 0, "clone must inherit the warm cache");
        assert!(stats_orig.hits > 0);
    }

    #[test]
    fn blame_is_explained_at_source_level() {
        let compiled = Compiled::compile("let f = fun x => x + 1 in f true").expect("compiles");
        match compiled.run(Engine::MachineS, 10_000).observation {
            Observation::Blame(p) => {
                let msg = compiled.explain_blame(p).expect("label is mapped");
                assert!(msg.contains("error"), "{msg}");
            }
            other => panic!("expected blame, got {other}"),
        }
    }
}
