//! Scheduling primitives for the preemptive serving front end:
//! fuel-timeslicing budgets, per-job deadlines, and the shared
//! completion cell behind [`JobHandle`](crate::pool::JobHandle).
//!
//! The paper's machines are step-functions over explicit state, so
//! preemption costs nothing in principle: a worker runs a job for a
//! [`SliceBudget`] worth of machine transitions, parks the machine
//! state (`Session::resume_slice`'s `PausedRun`), serves other jobs,
//! and resumes later. This module holds the pieces that are *not*
//! machine state:
//!
//! * [`SliceBudget`] — how many steps a job may take per turn before
//!   it is preempted and re-queued behind its worker's other jobs;
//! * [`Deadline`] — a wall-clock bound checked at slice boundaries
//!   (cooperative, like the preemption itself: a job never observes
//!   its deadline mid-slice);
//! * `JobState` (crate-private) — the `Mutex` + `Condvar` completion
//!   cell a
//!   submission and its serving worker share, carrying the result,
//!   an optional `on_ready` callback, the cancellation flag, and the
//!   in-flight accounting used for bounded-queue backpressure.
//!
//! The scheduler itself — the per-worker run queue with round-robin
//! slicing — lives in the worker loop (`src/pool.rs`); these types
//! are deliberately mechanism, not policy.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::pool::{JobError, JobOutput};

/// Steps a job may run per scheduling turn before it is preempted.
///
/// Fuel, slices, and reported step counts all use the same unit: one
/// machine transition (or one small-step reduction — the engines
/// enforce a 1:1 accounting, see the fuel check in
/// `bc_machine::cek_s`). A slice is therefore a *deterministic* unit
/// of work, not a wall-clock guess, and sliced execution is
/// observationally identical to unsliced execution by construction.
///
/// # Default rationale (measured)
///
/// The default is **4096 steps**. On the release-mode six-shape bench
/// workload a λS machine transition costs on the order of 40–80 ns,
/// so a slice is roughly 0.2–0.3 ms — two orders of magnitude above
/// the park/resume overhead (moving a `PausedRun` through the run
/// queue is a few pointer moves plus one counter update), and two
/// orders of magnitude below the default 1M-step fuel, so a divergent
/// spinner is preempted ~244 times instead of pinning its worker
/// once. `BENCH_8.json`'s E27 fairness table measures the ends of the
/// trade: sliced and unsliced latency on an all-convergent batch
/// agree within noise (p50 0.52 ms vs 0.51 ms on the bench host),
/// while the p99 latency of convergent jobs sharing one worker with
/// four spinners drops from the spinners' full fuel burn (~206 ms)
/// to a handful of slices (~6 ms). Shrink the budget for
/// tighter preemption latency (slice 1 still satisfies the identity
/// property — it is just all scheduling overhead); grow it toward
/// the fuel bound to approach unsliced behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceBudget(u64);

impl SliceBudget {
    /// A budget of `steps` machine transitions per scheduling turn.
    ///
    /// # Panics
    ///
    /// Panics on zero: a zero-step slice parks without progressing —
    /// the scheduler would spin forever.
    pub fn new(steps: u64) -> SliceBudget {
        assert!(steps > 0, "a SliceBudget must allow at least one step");
        SliceBudget(steps)
    }

    /// The budget in steps (machine transitions).
    pub fn steps(self) -> u64 {
        self.0
    }
}

impl Default for SliceBudget {
    fn default() -> SliceBudget {
        SliceBudget(4096)
    }
}

impl fmt::Display for SliceBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} steps/slice", self.0)
    }
}

/// A wall-clock bound on one job, enforced cooperatively at slice
/// boundaries: before a job's next slice starts, an expired deadline
/// resolves it to [`JobError::DeadlineExceeded`] with the steps it
/// actually took and the time it actually spent. A job is never
/// interrupted mid-slice, so the enforcement latency is bounded by
/// one [`SliceBudget`] worth of steps (plus queueing on the worker's
/// run queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + timeout,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub(crate) fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

type ReadyCallback = Box<dyn FnOnce(&Result<JobOutput, JobError>) + Send>;

/// The completion cell a job submission and its serving worker share:
/// the submitter's `JobHandle` and the worker's [`ReplySlot`] are the
/// two halves. Resolution happens exactly once (first write wins —
/// worker reply, cancellation, and the lost-on-drop backstop all
/// funnel through [`JobState::resolve`]); waiting is a condvar park,
/// polling a try-lock-free mutex peek, and `on_ready` callbacks fire
/// on the resolving thread (immediately, if already resolved).
pub(crate) struct JobState {
    cell: Mutex<JobCell>,
    ready: Condvar,
}

struct JobCell {
    result: Option<Result<JobOutput, JobError>>,
    callback: Option<ReadyCallback>,
    canceled: bool,
    /// The submission queue's in-flight counter, decremented exactly
    /// once — at resolution — so bounded-queue backpressure tracks
    /// jobs the pool still owes an answer, not just queued ones.
    inflight: Option<Arc<AtomicUsize>>,
}

impl fmt::Debug for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cell = self.lock();
        f.debug_struct("JobState")
            .field("resolved", &cell.result.is_some())
            .field("canceled", &cell.canceled)
            .finish()
    }
}

impl JobState {
    /// A fresh, unresolved cell; `inflight` (if any) is decremented
    /// once when the cell resolves.
    pub(crate) fn new(inflight: Option<Arc<AtomicUsize>>) -> Arc<JobState> {
        Arc::new(JobState {
            cell: Mutex::new(JobCell {
                result: None,
                callback: None,
                canceled: false,
                inflight,
            }),
            ready: Condvar::new(),
        })
    }

    /// A cell born resolved — how rejected submissions hand back a
    /// typed error without ever entering a queue.
    pub(crate) fn resolved(result: Result<JobOutput, JobError>) -> Arc<JobState> {
        let state = JobState::new(None);
        state.resolve(result);
        state
    }

    fn lock(&self) -> MutexGuard<'_, JobCell> {
        // Poisoning is survivable everywhere the pool locks: see
        // `pool::lock`. A panicking callback leaves a fully-resolved,
        // valid cell behind.
        self.cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolves the job; the first resolution wins and later ones are
    /// dropped (a worker replying to a job the submitter already
    /// canceled, the drop backstop firing after a real reply).
    pub(crate) fn resolve(&self, result: Result<JobOutput, JobError>) {
        let (callback, result_for_callback, inflight) = {
            let mut cell = self.lock();
            if cell.result.is_some() {
                return;
            }
            let callback = cell.callback.take();
            let for_callback = callback.as_ref().map(|_| result.clone());
            cell.result = Some(result);
            (callback, for_callback, cell.inflight.take())
        };
        self.ready.notify_all();
        if let Some(counter) = inflight {
            counter.fetch_sub(1, Ordering::AcqRel);
        }
        // Outside the lock: a callback is arbitrary user code and may
        // itself poke the handle.
        if let Some(callback) = callback {
            callback(&result_for_callback.expect("cloned alongside the callback"));
        }
    }

    /// Blocks until resolved.
    pub(crate) fn wait(&self) -> Result<JobOutput, JobError> {
        let mut cell = self.lock();
        loop {
            if let Some(result) = &cell.result {
                return result.clone();
            }
            cell = self
                .ready
                .wait(cell)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Blocks until resolved or `timeout` elapses; `None` on timeout
    /// (the job stays in flight and the cell stays valid).
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobOutput, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.lock();
        loop {
            if let Some(result) = &cell.result {
                return Some(result.clone());
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) = self
                .ready
                .wait_timeout(cell, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            cell = guard;
        }
    }

    /// Non-blocking probe.
    pub(crate) fn try_wait(&self) -> Option<Result<JobOutput, JobError>> {
        self.lock().result.clone()
    }

    /// Registers (or immediately fires, if already resolved) the
    /// completion callback. One callback per job: a second
    /// registration replaces an unfired first.
    pub(crate) fn on_ready(&self, callback: ReadyCallback) {
        let mut cell = self.lock();
        match cell.result.clone() {
            Some(result) => {
                drop(cell);
                callback(&result);
            }
            None => cell.callback = Some(callback),
        }
    }

    /// Requests cancellation: marks the cell canceled and — if the
    /// job has not resolved yet — resolves it to
    /// [`JobError::Canceled`] immediately, so the submitter never
    /// waits on a job it gave up on. The serving worker observes the
    /// flag at its next queue pop or slice boundary and discards its
    /// side of the job there.
    pub(crate) fn cancel(&self) {
        {
            let mut cell = self.lock();
            cell.canceled = true;
        }
        self.resolve(Err(JobError::Canceled));
    }

    /// Whether cancellation was requested (checked by workers at
    /// scheduling boundaries).
    pub(crate) fn is_canceled(&self) -> bool {
        self.lock().canceled
    }
}

/// The worker's half of a [`JobState`]: resolves the job, and — the
/// backstop that keeps every handle answerable — resolves it to
/// [`JobError::Lost`] on drop if nothing else resolved it first (a
/// job dropped by a closing pool, a worker dying in a way that skips
/// the typed panic path).
#[derive(Debug)]
pub(crate) struct ReplySlot(Arc<JobState>);

impl ReplySlot {
    pub(crate) fn new(state: Arc<JobState>) -> ReplySlot {
        ReplySlot(state)
    }

    pub(crate) fn resolve(&self, result: Result<JobOutput, JobError>) {
        self.0.resolve(result);
    }

    pub(crate) fn is_canceled(&self) -> bool {
        self.0.is_canceled()
    }
}

impl Drop for ReplySlot {
    fn drop(&mut self) {
        self.0.resolve(Err(JobError::Lost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> Result<JobOutput, JobError> {
        Err(JobError::Canceled)
    }

    #[test]
    fn first_resolution_wins() {
        let state = JobState::new(None);
        state.resolve(output());
        state.resolve(Err(JobError::Lost));
        assert_eq!(state.try_wait(), Some(Err(JobError::Canceled)));
    }

    #[test]
    fn drop_backstop_reports_lost() {
        let state = JobState::new(None);
        drop(ReplySlot::new(Arc::clone(&state)));
        assert_eq!(state.try_wait(), Some(Err(JobError::Lost)));
    }

    #[test]
    fn inflight_decrements_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(1));
        let state = JobState::new(Some(Arc::clone(&counter)));
        let slot = ReplySlot::new(Arc::clone(&state));
        state.cancel();
        assert_eq!(counter.load(Ordering::Acquire), 0);
        drop(slot); // the Lost backstop must not double-decrement
        assert_eq!(counter.load(Ordering::Acquire), 0);
    }

    #[test]
    fn on_ready_fires_immediately_when_already_resolved() {
        let state = JobState::new(None);
        state.resolve(output());
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        state.on_ready(Box::new(move |r| {
            assert!(matches!(r, Err(JobError::Canceled)));
            seen.fetch_add(1, Ordering::AcqRel);
        }));
        assert_eq!(fired.load(Ordering::Acquire), 1);
    }

    #[test]
    fn slice_budget_rejects_zero() {
        assert!(std::panic::catch_unwind(|| SliceBudget::new(0)).is_err());
        assert_eq!(SliceBudget::default().steps(), 4096);
    }
}
