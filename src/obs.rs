//! The pool's observability bundle: every instrument the
//! [`SessionPool`](crate::SessionPool) exports, wired to one
//! [`Registry`], plus the bounded [`AuditSink`] the workers emit
//! per-job records into.
//!
//! The bundle is built once at pool construction (unless
//! [`SessionPoolBuilder::no_observability`] turned it off) and shared
//! by reference through `PoolShared`; the hot path touches only
//! wait-free cells — counter `fetch_add`s, histogram `fetch_add`s,
//! and the audit ring's short push-only mutex. Gauges (queue depths,
//! epoch, base hit rates) are *polled*: they are refreshed from a
//! coherent [`PoolStats`](crate::PoolStats) snapshot at render time
//! rather than written on the job path, so a gauge read costs serving
//! nothing.
//!
//! [`SessionPoolBuilder::no_observability`]:
//! crate::SessionPoolBuilder::no_observability

use std::sync::Arc;
use std::time::Duration;

use bc_obs::{AuditOutcome, AuditRecord, AuditSink, Counter, Gauge, Histogram, Registry};

use crate::pool::PoolStats;

/// Default retention of the audit ring (records, not bytes): deep
/// enough that a drain cadence of "every few thousand jobs" loses
/// nothing, small enough (~a few hundred KiB of flat records) to be
/// an always-on default.
pub(crate) const DEFAULT_AUDIT_CAPACITY: usize = 8192;

/// Saturating nanosecond conversion (a `Duration` past `u64::MAX`
/// nanoseconds is ~585 years; clamping is academic but total).
pub(crate) fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// All pool instruments plus the audit sink. Counters are incremented
/// at the same sites as the `WorkerSlot` accounting they mirror, so
/// they are monotone across epoch rebuilds, session retirements, and
/// worker respawns by construction — nothing is re-derived from a
/// session that could be retired out from under it.
#[derive(Debug)]
pub(crate) struct PoolObs {
    registry: Registry,
    /// One series per [`AuditOutcome`], indexed by
    /// [`AuditOutcome::index`].
    jobs: Vec<Arc<Counter>>,
    /// End-to-end latency (submission → resolution), nanoseconds.
    pub(crate) latency: Arc<Histogram>,
    /// Time queued before a worker first claimed the job,
    /// nanoseconds.
    pub(crate) queue_wait: Arc<Histogram>,
    pub(crate) slices: Arc<Counter>,
    pub(crate) preemptions: Arc<Counter>,
    pub(crate) steals: Arc<Counter>,
    pub(crate) promotions: Arc<Counter>,
    pub(crate) respawns: Arc<Counter>,
    pub(crate) sessions_retired: Arc<Counter>,
    epoch: Arc<Gauge>,
    workers: Arc<Gauge>,
    base_hit_rate: Arc<Gauge>,
    compose_base_hit_rate: Arc<Gauge>,
    queue_depth: Vec<Arc<Gauge>>,
    parked_depth: Vec<Arc<Gauge>>,
    sink: AuditSink,
}

impl PoolObs {
    pub(crate) fn new(workers: usize, audit_capacity: usize) -> PoolObs {
        let registry = Registry::new();
        let jobs = AuditOutcome::ALL
            .iter()
            .map(|outcome| {
                registry.counter(
                    "bc_jobs_total",
                    "Jobs resolved, by outcome.",
                    &[("outcome", outcome.as_str())],
                )
            })
            .collect();
        let latency = registry.histogram(
            "bc_job_latency_ns",
            "End-to-end job latency (submission to resolution), nanoseconds.",
            &[],
        );
        let queue_wait = registry.histogram(
            "bc_job_queue_wait_ns",
            "Time a job waited in a queue before a worker claimed it, nanoseconds.",
            &[],
        );
        let slices = registry.counter(
            "bc_slices_total",
            "Scheduling turns executed (one job, up to one slice budget of steps).",
            &[],
        );
        let preemptions = registry.counter(
            "bc_preemptions_total",
            "Slices that ended with the job parked rather than finished.",
            &[],
        );
        let steals = registry.counter(
            "bc_steals_total",
            "Jobs claimed from a sibling worker's queue.",
            &[],
        );
        let promotions = registry.counter(
            "bc_promotions_total",
            "Overlay-to-base promotions published.",
            &[],
        );
        let respawns = registry.counter(
            "bc_respawns_total",
            "Workers respawned after a caught serve panic.",
            &[],
        );
        let sessions_retired = registry.counter(
            "bc_sessions_retired_total",
            "Worker sessions retired (epoch adoptions + panic recoveries).",
            &[],
        );
        let sink = AuditSink::new(audit_capacity);
        registry.attach_counter(
            "bc_audit_dropped_total",
            "Audit records evicted from the ring without being drained.",
            &[],
            &sink.dropped_cell(),
        );
        let epoch = registry.gauge("bc_epoch", "Current base epoch (1 = warmup).", &[]);
        let workers_gauge = registry.gauge("bc_workers", "Worker threads.", &[]);
        let base_hit_rate = registry.gauge(
            "bc_coercion_base_hit_rate",
            "Fraction of coercion-intern probes answered by the frozen base, \
             cumulative across epochs.",
            &[],
        );
        let compose_base_hit_rate = registry.gauge(
            "bc_compose_base_hit_rate",
            "Fraction of compositions answered by a frozen pair table, \
             cumulative across epochs.",
            &[],
        );
        let per_worker_gauge = |name: &str, help: &str| -> Vec<Arc<Gauge>> {
            (0..workers)
                .map(|i| registry.gauge(name, help, &[("worker", &i.to_string())]))
                .collect()
        };
        let queue_depth = per_worker_gauge(
            "bc_queue_depth",
            "Jobs waiting in this worker's intake queue.",
        );
        let parked_depth = per_worker_gauge(
            "bc_parked_depth",
            "Jobs parked mid-run in this worker's run queue.",
        );
        PoolObs {
            registry,
            jobs,
            latency,
            queue_wait,
            slices,
            preemptions,
            steals,
            promotions,
            respawns,
            sessions_retired,
            epoch,
            workers: workers_gauge,
            base_hit_rate,
            compose_base_hit_rate,
            queue_depth,
            parked_depth,
            sink,
        }
    }

    /// Records one job resolution: its outcome series, the latency
    /// histogram (every resolved job lands here exactly once — the
    /// histogram's `_count` equals jobs resolved), and one audit
    /// record. Wait-free except for the audit ring's push mutex.
    pub(crate) fn resolved(&self, record: AuditRecord) {
        self.jobs[record.outcome.index()].inc();
        self.latency.record(record.latency_ns);
        self.sink.emit(record);
    }

    /// The audit stream.
    pub(crate) fn sink(&self) -> &AuditSink {
        &self.sink
    }

    /// Refreshes the polled gauges from a coherent stats snapshot,
    /// then renders the full text exposition.
    pub(crate) fn render(&self, stats: &PoolStats) -> String {
        self.epoch.set(stats.epoch as f64);
        self.workers.set(stats.workers.len() as f64);
        self.base_hit_rate.set(stats.coercion_base_hit_rate());
        self.compose_base_hit_rate
            .set(stats.compose_base_hit_rate());
        for (gauge, w) in self.queue_depth.iter().zip(&stats.workers) {
            gauge.set(w.queue_depth as f64);
        }
        for (gauge, w) in self.parked_depth.iter().zip(&stats.workers) {
            gauge.set(w.parked_depth as f64);
        }
        self.registry.render()
    }
}
