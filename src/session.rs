//! The session-centric runtime: one [`Session`] owns the interning
//! arenas, many [`Program`]s share them.
//!
//! The λS space-efficiency story (and the arena/cache/compiled-IR
//! machinery built in earlier milestones) makes a *single* program
//! cheap to re-run. A server, though, runs *many* gradually-typed
//! programs — and structurally similar programs cross the same
//! boundaries, intern the same coercions, compose the same pairs, and
//! ask the same subtyping questions. A [`Session`] hoists the
//! [`CoercionArena`], [`ComposeCache`], and [`TypeArena`] out of the
//! per-program state: every program compiled into the session interns
//! against the shared arenas, so the second structurally similar
//! program adds (near) zero new nodes and answers its merges from the
//! warm cache.
//!
//! * [`Session::compile`] / [`Session::compile_batch`] — GTLC source →
//!   λB → λC → λS → compiled IR, interned into the shared arenas;
//!   returns a lightweight [`Program`] handle bound to this session.
//! * [`Session::run`] / [`Session::run_with_fuel`] — execute a program
//!   on any [`Engine`], returning `Result<RunReport, RunError>`:
//!   fuel exhaustion and ill-typedness are typed errors, never panics
//!   or sentinel observations.
//! * [`Session::builder`] — configure the eviction knobs
//!   ([`SessionBuilder::compose_cache_capacity`],
//!   [`SessionBuilder::type_memo_capacity`]) and the
//!   [`SessionBuilder::default_fuel`] used by [`Session::run`].
//! * [`Session::stats`] — one consolidated [`SessionStats`] snapshot
//!   of everything the session has accumulated.
//!
//! ```
//! use blame_coercion::session::{Engine, Session};
//!
//! let session = Session::new();
//! let program = session
//!     .compile("let inc = fun x => x + 1 in (inc 41 : Int)")
//!     .expect("type checks gradually");
//! let report = session.run(&program, Engine::MachineS).expect("runs");
//! assert_eq!(report.observation.to_string(), "42");
//! ```

use std::cell::{Cell, OnceCell, RefCell};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bc_core::arena::{CoercionArena, ComposeCache, FrozenCoercions};
use bc_core::sterm::{decompile_term, STerm};
use bc_gtlc::Diagnostic;
use bc_lambda_b::BTerm;
use bc_lambda_c::CArena;
use bc_machine::metrics::Metrics;
use bc_syntax::intern::FrozenTypes;
use bc_syntax::{Label, Type, TypeArena, TypeId};
use bc_translate::bisim::{observe_b, observe_c, observe_s_compiled, Observation};
use bc_translate::{
    term_b_to_c, term_b_to_c_compiled, term_c_to_s_from_compiled, CNormalizer, CNormalizerStats,
};

/// Which semantics executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Small-step reduction in the blame calculus (Figure 1).
    LambdaB,
    /// Small-step reduction in the coercion calculus (Figure 3).
    LambdaC,
    /// Small-step reduction in the space-efficient calculus (Figure 5).
    LambdaS,
    /// The λB CEK machine (leaks on boundary-crossing tail calls).
    MachineB,
    /// The λC CEK machine (same leak, coercion syntax).
    MachineC,
    /// The λS CEK machine (merges coercion frames; space-efficient).
    MachineS,
}

impl Engine {
    /// All engines, in a fixed order.
    pub const ALL: [Engine; 6] = [
        Engine::LambdaB,
        Engine::LambdaC,
        Engine::LambdaS,
        Engine::MachineB,
        Engine::MachineC,
        Engine::MachineS,
    ];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::LambdaB => "λB (small-step)",
            Engine::LambdaC => "λC (small-step)",
            Engine::LambdaS => "λS (small-step)",
            Engine::MachineB => "λB (CEK machine)",
            Engine::MachineC => "λC (CEK machine)",
            Engine::MachineS => "λS (CEK machine)",
        };
        f.write_str(name)
    }
}

/// The result of running a program to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// What the program evaluated to.
    pub observation: Observation,
    /// Steps taken (reduction steps or machine transitions).
    pub steps: u64,
    /// Machine space metrics (machines only).
    pub metrics: Option<Metrics>,
    /// Wall-clock time spent *executing* the run. For a sliced run
    /// this accumulates only the active slices — time parked in a run
    /// queue is scheduling, not execution (the pool reports
    /// end-to-end latency separately, on `JobOutput::elapsed`).
    /// Unlike every other field it is timing, not semantics: sliced
    /// and unsliced runs agree on observation/steps/metrics exactly
    /// (property-tested) while their `elapsed` naturally differs.
    pub elapsed: Duration,
}

/// Why a run produced no [`RunReport`] — the typed error for the whole
/// run path. Nothing on the run path panics for these conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The fuel bound was reached; the program may diverge.
    FuelExhausted {
        /// Steps (reduction steps or machine transitions) actually
        /// taken before fuel ran out.
        steps: u64,
        /// Space metrics collected up to the cutoff (machine engines
        /// only, like [`RunReport::metrics`]) — this is what makes the
        /// λB/λC space leak *measurable on genuinely diverging
        /// programs*: a fuel-bounded machine run still reports its
        /// peak cast frames.
        metrics: Option<Metrics>,
    },
    /// The program (or one of its translations) is not well typed; the
    /// diagnostic carries the engine-level type error. Unreachable for
    /// programs produced by [`Session::compile`] — cast insertion and
    /// both translations preserve typing — but loaded λB terms are
    /// only as good as their stated type.
    IllTyped(Diagnostic),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::FuelExhausted { steps, .. } => {
                write!(f, "fuel exhausted after {steps} steps")
            }
            RunError::IllTyped(d) => write!(f, "ill-typed program: {}", d.message),
        }
    }
}

impl std::error::Error for RunError {}

/// Builds an ill-typed diagnostic with no source location (run-path
/// type errors come from calculus terms, which carry no spans).
fn ill_typed(detail: impl fmt::Display) -> RunError {
    RunError::IllTyped(Diagnostic::unlocated(detail.to_string()))
}

/// Maps a small-step engine's typed error into the session-level
/// [`RunError`]. One definition for all three calculi (their `RunError`
/// enums are distinct types with the same session-relevant shape);
/// small-step runs carry no machine metrics, mirroring
/// [`RunReport::metrics`].
macro_rules! small_step_run_error {
    ($calculus:ident) => {
        |e| match e {
            $calculus::eval::RunError::FuelExhausted { steps, .. } => RunError::FuelExhausted {
                steps,
                metrics: None,
            },
            $calculus::eval::RunError::IllTyped(e) => ill_typed(e),
        }
    };
}

/// One hop of a session's fork history: an ancestor session's
/// identity, with the arena watermarks (node counts) this lineage
/// held at the moment it forked away from that ancestor (via
/// [`Session::clone_state`] or [`Session::freeze`]).
///
/// A program compiled in the ancestor *before* those watermarks
/// references only state every descendant inherited verbatim — the
/// soundness condition [`Session::adopt`] checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AncestryEntry {
    session: u64,
    coercions: usize,
    types: usize,
}

/// A frozen, immutable snapshot of a warm [`Session`]'s shared state —
/// the base tier of the two-tier (base + per-worker overlay) sharing
/// model.
///
/// Produced by [`Session::freeze`]; consumed by
/// [`SessionBuilder::base`]. The snapshot bundles the frozen type
/// arena (nodes, metadata, and every memoized relational verdict) and
/// the frozen coercion arena (nodes plus every memoized composition
/// pair); it is `Send + Sync`, so one `Arc<FrozenBase>` can back any
/// number of worker sessions on any number of threads, each layering
/// a cheap private overlay on top. E22 measured the warm working set
/// this captures at ≤ 16 type nodes and ≤ 10 compose pairs on every
/// bench workload — a few hundred bytes buying every worker a fully
/// warm start.
///
/// **When to freeze**: after compiling (and ideally running) a
/// representative warmup workload, so the snapshot holds the types,
/// coercions, verdicts, and compositions the real traffic repeats.
/// The first freeze builds an append-only slab; every later freeze of
/// a session built over that slab merely *appends* the overlay — cost
/// proportional to what the session interned locally, independent of
/// base size — and returns a new watermark view over the same shared
/// storage. Snapshots taken over one base therefore share memory and
/// stay cheap to take even as the base grows, but a base is still a
/// deployment artifact: freeze at traffic boundaries, not per
/// request. Use [`Session::freeze_detached`] for a fully independent
/// copy.
///
/// **Id-offset contract**: ids below the frozen lengths denote
/// snapshot nodes and mean the same thing in every session built over
/// this base; each worker's locally interned ids start past them and
/// are private to that worker (see `bc_syntax::intern::FrozenTypes`
/// and `bc_core::arena::FrozenCoercions`).
#[derive(Debug)]
pub struct FrozenBase {
    types: Arc<FrozenTypes>,
    coercions: Arc<FrozenCoercions>,
    /// The freezing session's own fork history plus the freezing
    /// session itself — sessions built over this base extend it, so
    /// programs compiled before the freeze can be adopted by them.
    ancestry: Vec<AncestryEntry>,
}

impl FrozenBase {
    /// Number of frozen coercion nodes.
    pub fn coercion_nodes(&self) -> usize {
        self.coercions.len()
    }

    /// Number of frozen type nodes.
    pub fn type_nodes(&self) -> usize {
        self.types.len()
    }

    /// Number of frozen composition pairs.
    pub fn compose_pairs(&self) -> usize {
        self.coercions.pairs_len()
    }

    /// Number of frozen relational verdicts.
    pub fn verdicts(&self) -> usize {
        self.types.verdicts_len()
    }

    /// Whether this base *extends* `other`: both frozen tiers are
    /// views over the *same* append-only slab with this base's
    /// watermarks at or past `other`'s, and this base's ancestry
    /// begins with `other`'s. Because slab ids are never re-assigned,
    /// the watermark comparison alone proves every node `other` holds
    /// appears here at the same id — the hot-swap soundness
    /// condition: any id or compiled program valid against `other` is
    /// valid, unchanged, against an extension, which a
    /// [`Session::freeze`] of a session built over `other` produces
    /// by construction (freezing appends the overlay above the base
    /// watermark, leaving base ids untouched). O(1) — three pointer
    /// identities and a handful of integer compares plus the ancestry
    /// prefix — cheap enough for promotion-time validation on every
    /// swap.
    pub fn extends(&self, other: &FrozenBase) -> bool {
        self.types.extends(&other.types)
            && self.coercions.extends(&other.coercions)
            && self.ancestry.starts_with(&other.ancestry)
    }

    /// Whether a program compiled by `session` at the given watermarks
    /// references only state frozen into this base — the per-program
    /// form of the [`Session::adopt`] soundness condition, answered
    /// from the ancestry chain without building a session. The pool
    /// uses it to re-validate its warmup-compiled payloads against
    /// each newly promoted epoch before trusting the no-recheck load
    /// path.
    pub(crate) fn inherits(&self, session: u64, coercions: usize, types: usize) -> bool {
        self.ancestry
            .iter()
            .any(|e| e.session == session && coercions <= e.coercions && types <= e.types)
    }
}

/// Why [`Session::adopt`] refused to re-bind a program — the typed
/// error for cross-session handle transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdoptError {
    /// The adopting session is not a descendant (via
    /// [`Session::clone_state`] or a [`FrozenBase`]) of the session
    /// that compiled the program, so the program's ids belong to an
    /// unrelated id-space.
    ForeignSession,
    /// The adopting session *is* a descendant of the compiling
    /// session, but the program was compiled **after** the fork: it
    /// may reference nodes this session never inherited.
    PostFork {
        /// Coercion nodes the program's session held when the program
        /// was compiled.
        program_coercions: usize,
        /// Coercion nodes inherited at the fork.
        inherited_coercions: usize,
        /// Type nodes the program's session held when the program was
        /// compiled.
        program_types: usize,
        /// Type nodes inherited at the fork.
        inherited_types: usize,
    },
}

impl fmt::Display for AdoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdoptError::ForeignSession => f.write_str(
                "cannot adopt: the program was compiled by an unrelated session \
                 (adopt only works in a session forked from the compiling one via \
                 Session::clone_state or a FrozenBase; recompile the program here instead)",
            ),
            AdoptError::PostFork {
                program_coercions,
                inherited_coercions,
                program_types,
                inherited_types,
            } => write!(
                f,
                "cannot adopt: the program was compiled after this session forked \
                 from its owner (program watermarks: {program_coercions} coercion / \
                 {program_types} type nodes; inherited: {inherited_coercions} / \
                 {inherited_types}) — fork again after compiling, or recompile here"
            ),
        }
    }
}

impl std::error::Error for AdoptError {}

/// The two-tier sharing counters of a [`Session`]: how much of its
/// state lives in the frozen base versus the private overlay, and how
/// often the base tier answered. All-zero for a session without a
/// base.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Coercion nodes in the frozen base tier.
    pub base_coercion_nodes: usize,
    /// Coercion nodes interned locally, past the base. Zero means the
    /// base absorbed every coercion this session ever interned.
    pub local_coercion_nodes: usize,
    /// Type nodes in the frozen base tier.
    pub base_type_nodes: usize,
    /// Type nodes interned locally, past the base.
    pub local_type_nodes: usize,
    /// Coercion interns answered by the frozen base index.
    pub coercion_base_hits: u64,
    /// Type interns answered by the frozen base index.
    pub type_base_hits: u64,
    /// Compositions answered by the frozen pair table.
    pub compose_base_hits: u64,
    /// Relational verdicts answered by the frozen verdict table.
    pub verdict_base_hits: u64,
}

/// A consolidated snapshot of everything a [`Session`] has
/// accumulated — the replacement for the per-program
/// `coercion_stats`/`type_stats` tuple trio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Programs compiled or loaded into the session so far.
    pub programs: usize,
    /// Coercion-arena counters (distinct nodes, tree interns,
    /// node hits/misses).
    pub coercions: bc_core::arena::ArenaStats,
    /// Memoized composition pairs currently held.
    pub compose_pairs: usize,
    /// The compose cache's pair cap.
    pub compose_capacity: usize,
    /// Compose-cache hit/miss/eviction counters.
    pub compose: bc_core::arena::CacheStats,
    /// Distinct type nodes interned.
    pub type_nodes: usize,
    /// Memoized relational verdicts currently held.
    pub type_memo_pairs: usize,
    /// The verdict tables' entry cap.
    pub type_memo_capacity: usize,
    /// Relational-query hit/miss/eviction counters.
    pub type_queries: bc_syntax::intern::QueryStats,
    /// Distinct λC coercion nodes interned (the derived λC tier is
    /// session-local; see [`Session`]'s field docs).
    pub lambda_c_nodes: usize,
    /// The `|·|CS` normalisation memo's entry/hit/miss counters — a
    /// warm recompile is all hits.
    pub normalizer: CNormalizerStats,
    /// Tree views materialised since the session was built
    /// ([`Session::lambda_b`]/[`Session::lambda_c`]/
    /// [`Session::lambda_s`] first accesses). Zero for a session that
    /// only compiled and ran on the compiled engines — the
    /// allocation-free-pipeline acceptance counter.
    pub tree_builds: u64,
    /// Two-tier sharing counters (all-zero without a [`FrozenBase`]).
    pub tier: TierStats,
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} programs; {} coercion nodes, {} composed pairs \
             ({} hits / {} misses / {} evictions); \
             {} type nodes, {} verdicts ({} hits / {} misses / {} evictions)",
            self.programs,
            self.coercions.nodes,
            self.compose_pairs,
            self.compose.hits,
            self.compose.misses,
            self.compose.evictions,
            self.type_nodes,
            self.type_memo_pairs,
            self.type_queries.hits,
            self.type_queries.misses,
            self.type_queries.evictions,
        )
    }
}

/// Configures and builds a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    compose_cache_capacity: usize,
    type_memo_capacity: usize,
    default_fuel: u64,
    base: Option<Arc<FrozenBase>>,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder {
            compose_cache_capacity: SessionBuilder::DEFAULT_COMPOSE_CACHE_CAPACITY,
            type_memo_capacity: SessionBuilder::DEFAULT_TYPE_MEMO_CAPACITY,
            default_fuel: SessionBuilder::DEFAULT_FUEL,
            base: None,
        }
    }
}

impl SessionBuilder {
    /// The default step bound used by [`Session::run`].
    pub const DEFAULT_FUEL: u64 = 1_000_000;

    /// The default compose-cache pair cap, picked from measured reuse
    /// on the benchmark workloads (report E22): a 16-program
    /// boundary-loop batch — the most composition-heavy workload in
    /// the suite — peaks at **10** live pairs with a 99.9% hit rate,
    /// and no workload reaches triple digits. 2¹⁶ keeps >5000×
    /// headroom over anything observed while bounding a long-lived
    /// multi-tenant session's table at a few MB (the raw-arena default
    /// `ComposeCache::DEFAULT_CAPACITY` of 2²⁰ stays for callers
    /// managing their own arenas).
    pub const DEFAULT_COMPOSE_CACHE_CAPACITY: usize = 1 << 16;

    /// The default verdict-table cap, picked from the same
    /// measurements: the interned front end answers its relational
    /// questions almost entirely from the O(1) fast paths (hit rates
    /// ≥ 0.999 on every E22 workload) and holds at most a few dozen
    /// memoized verdicts, so 2¹⁶ is again >1000× headroom at bounded
    /// memory.
    pub const DEFAULT_TYPE_MEMO_CAPACITY: usize = 1 << 16;

    /// Caps the compose cache at `capacity` memoized pairs (evicted
    /// second-chance beyond that; see `bc_core::arena::ComposeCache`).
    ///
    /// The default is the data-driven
    /// [`SessionBuilder::DEFAULT_COMPOSE_CACHE_CAPACITY`]; raise it
    /// only for workloads measurably evicting
    /// ([`SessionStats::compose`]`.evictions > 0` with a falling hit
    /// rate).
    ///
    /// # Panics
    ///
    /// [`SessionBuilder::build`] panics if the capacity is zero.
    pub fn compose_cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.compose_cache_capacity = capacity;
        self
    }

    /// Caps the type arena's relational-verdict tables at `capacity`
    /// memoized entries (evicted second-chance beyond that; see
    /// [`TypeArena::with_memo_capacity`]).
    ///
    /// The default is the data-driven
    /// [`SessionBuilder::DEFAULT_TYPE_MEMO_CAPACITY`]; raise it only
    /// if [`SessionStats::type_queries`] shows evictions with a
    /// falling hit rate.
    ///
    /// # Panics
    ///
    /// [`SessionBuilder::build`] panics if the capacity is zero.
    pub fn type_memo_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.type_memo_capacity = capacity;
        self
    }

    /// The step bound [`Session::run`] uses when the caller does not
    /// pass one explicitly.
    pub fn default_fuel(mut self, fuel: u64) -> SessionBuilder {
        self.default_fuel = fuel;
        self
    }

    /// Builds the session as a cheap overlay over a frozen base (see
    /// [`Session::freeze`]): every type, coercion, verdict, and
    /// composition the base holds is shared read-only, and only
    /// genuinely new state is interned locally. This is how
    /// [`crate::pool::SessionPool`] gives every worker thread a warm
    /// start from one snapshot.
    pub fn base(mut self, base: Arc<FrozenBase>) -> SessionBuilder {
        self.base = Some(base);
        self
    }

    /// Builds the session.
    ///
    /// # Panics
    ///
    /// Panics if either configured capacity is zero.
    pub fn build(self) -> Session {
        let (arena, cache, types, ancestry) = match self.base {
            Some(base) => (
                CoercionArena::with_base(Arc::clone(&base.coercions)),
                ComposeCache::with_base(Arc::clone(&base.coercions), self.compose_cache_capacity),
                TypeArena::with_base(Arc::clone(&base.types), self.type_memo_capacity),
                base.ancestry.clone(),
            ),
            None => (
                CoercionArena::new(),
                ComposeCache::with_capacity(self.compose_cache_capacity),
                TypeArena::with_memo_capacity(self.type_memo_capacity),
                Vec::new(),
            ),
        };
        Session {
            id: next_session_id(),
            ancestry,
            arena: RefCell::new(arena),
            cache: RefCell::new(cache),
            types: RefCell::new(types),
            carena: RefCell::new(CArena::default()),
            normalizer: RefCell::new(CNormalizer::new()),
            default_fuel: self.default_fuel,
            programs: Cell::new(0),
            tree_builds: Cell::new(0),
        }
    }
}

fn next_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);
    NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed)
}

/// A runtime session: the owner of the coercion arena, compose cache,
/// and type arena that all of its [`Program`]s share.
///
/// Programs compiled into one session pool every piece of
/// interned/memoized state: a boundary the first program crossed is
/// already interned when the second program meets it, a composition
/// the first program's loop memoized is a hash lookup for everyone
/// after, and a subtyping verdict is computed once per session, not
/// once per program. [`SessionStats`] makes the sharing observable.
///
/// See the [module docs](self) for an end-to-end example.
#[derive(Debug)]
pub struct Session {
    /// Identity of this session's id-spaces; programs record it so a
    /// handle can never be resolved against the wrong arenas.
    id: u64,
    /// Fork history: the chain of ancestor sessions (with the
    /// watermarks inherited from each), consulted by
    /// [`Session::adopt`].
    ancestry: Vec<AncestryEntry>,
    arena: RefCell<CoercionArena>,
    cache: RefCell<ComposeCache>,
    types: RefCell<TypeArena>,
    /// The λC coercion arena: one hash-consed node per distinct cast
    /// the session's programs cross. Session-local (not part of a
    /// [`FrozenBase`]) — λC forms are derived, so workers re-intern
    /// them privately; the memo below makes that a per-shape cost.
    carena: RefCell<CArena>,
    /// The `|·|CS` memo: λC coercion id → normalised space coercion
    /// id. A warm recompile normalises nothing (all hits).
    normalizer: RefCell<CNormalizer>,
    default_fuel: u64,
    programs: Cell<usize>,
    /// How many tree views ([`Session::lambda_b`]/[`Session::lambda_c`]/
    /// [`Session::lambda_s`]) have been materialised — the
    /// zero-allocation acceptance counter: a compile+run on the
    /// compiled engines leaves it untouched.
    tree_builds: Cell<u64>,
}

impl Default for Session {
    fn default() -> Session {
        SessionBuilder::default().build()
    }
}

/// A program compiled into a [`Session`], held entirely in compiled
/// (id-carrying) form.
///
/// The handle owns its compiled IRs — the interned λB term
/// ([`Program::lambda_b_compiled`]) and the λS term the machines run —
/// but *not* the arenas their ids point into: those live in the
/// session that compiled it, which is also the only session that can
/// run it (enforced at run time). No `Rc` term tree is built at
/// compile time; the three tree views exist only as lazily decompiled
/// caches ([`Session::lambda_b`], [`Session::lambda_c`],
/// [`Session::lambda_s`]) for the tree engines, docs, and tests.
#[derive(Debug, Clone)]
pub struct Program {
    /// The elaborated λB term in compiled form: type annotations and
    /// cast endpoints are interned `TypeId`s, the spine is `Arc` (and
    /// therefore `Send` — this is the form pool jobs travel in).
    lambda_b_compiled: BTerm,
    /// The λS term compiled to the id-carrying IR. Private: its ids
    /// are only meaningful in the owning session's arenas.
    lambda_s_compiled: STerm,
    /// The program's (gradual) type, as a shared tree handle (resolved
    /// once per distinct type per session — a warm recompile clones an
    /// `Rc`, allocating nothing).
    pub ty: Type,
    /// The program's type as an id in the owning session's arena.
    ty_id: TypeId,
    /// The tree-form λB view, decompiled lazily by
    /// [`Session::lambda_b`]; compilation leaves it empty.
    lambda_b: OnceCell<bc_lambda_b::Term>,
    /// The tree-form λC view (`|·|BC` on trees), built lazily by
    /// [`Session::lambda_c`].
    lambda_c: OnceCell<bc_lambda_c::Term>,
    /// The tree-form λS view, decompiled lazily by
    /// [`Session::lambda_s`].
    lambda_s: OnceCell<bc_core::Term>,
    /// Owning session id (checked by every [`Session::run`]).
    session: u64,
    /// Coercion nodes the owning session held when this program was
    /// compiled (every id this program references is below it).
    coercion_watermark: usize,
    /// Type nodes the owning session held when this program was
    /// compiled.
    type_watermark: usize,
    /// The source-program span map for blame reporting, if compiled
    /// from source.
    program: Option<bc_gtlc::ProgramC>,
    source: Option<String>,
}

impl Program {
    /// The size of the compiled IR in syntax nodes (each interned
    /// handle counting as one).
    pub fn ir_size(&self) -> usize {
        self.lambda_s_compiled.size()
    }

    /// The number of boundary crossings (`Coerce` nodes) in the
    /// compiled IR.
    pub fn boundary_crossings(&self) -> usize {
        self.lambda_s_compiled.coercion_nodes()
    }

    /// The compiled λB term: cast insertion's output with every type
    /// annotation an interned id. Paired with [`Program::ty_id`], this
    /// is the session-independent job payload —
    /// `Arc`-spined and `Send`, with every id below the owning
    /// session's watermarks, so a session sharing those ids (via a
    /// [`FrozenBase`]) can [`Session::load_compiled`] it without
    /// re-parsing or re-elaborating.
    pub fn lambda_b_compiled(&self) -> &BTerm {
        &self.lambda_b_compiled
    }

    /// The compiled λS form the engines execute — the other half of
    /// the job payload. Also `Arc`-spined and `Send`: when its
    /// `CoercionId`s/`TypeId`s sit below a frozen base, a sharing
    /// session can run it directly, skipping the λB → λC → λS
    /// lowering altogether (how pool workers serve compiled jobs).
    pub fn lambda_s_compiled(&self) -> &STerm {
        &self.lambda_s_compiled
    }

    /// The program's type as an id in the owning session's type arena.
    pub fn ty_id(&self) -> TypeId {
        self.ty_id
    }

    /// Whether the tree-form λB term has been materialised (it is
    /// decompiled lazily by [`Session::lambda_b`]; compilation leaves
    /// it empty).
    pub fn lambda_b_materialized(&self) -> bool {
        self.lambda_b.get().is_some()
    }

    /// Whether the tree-form λC term has been materialised (built
    /// lazily by [`Session::lambda_c`]).
    pub fn lambda_c_materialized(&self) -> bool {
        self.lambda_c.get().is_some()
    }

    /// Whether the tree-form λS term has been materialised (it is
    /// decompiled lazily by [`Session::lambda_s`]; compilation leaves
    /// it empty).
    pub fn lambda_s_materialized(&self) -> bool {
        self.lambda_s.get().is_some()
    }

    /// The compiling session's identity plus the arena watermarks at
    /// compile time — everything [`FrozenBase::inherits`] needs to
    /// decide whether a frozen snapshot carries this program's ids.
    pub(crate) fn provenance(&self) -> (u64, usize, usize) {
        (self.session, self.coercion_watermark, self.type_watermark)
    }

    /// Explains a blame label as a source-level diagnostic, when the
    /// program was compiled from source and the label came from cast
    /// insertion.
    pub fn explain_blame(&self, label: Label) -> Option<String> {
        let program = self.program.as_ref()?;
        let source = self.source.as_deref()?;
        program.explain_blame(label, source)
    }
}

impl Session {
    /// A session with default capacities and fuel.
    pub fn new() -> Session {
        Session::default()
    }

    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The step bound [`Session::run`] applies.
    pub fn default_fuel(&self) -> u64 {
        self.default_fuel
    }

    /// Compiles GTLC source text through cast insertion and the two
    /// translations, interning into this session's shared arenas.
    ///
    /// The front end runs on interned types end to end and emits the
    /// compiled λB IR directly: the parser interns every annotation as
    /// it reads it ([`bc_gtlc::parser::parse_in`]) and the gradual
    /// type checker ([`bc_gtlc::elaborate_compiled`]) infers, checks
    /// consistency, and joins on `TypeId`s against this session's
    /// [`TypeArena`] — no `Rc<Type>` spine and no `Rc` term tree is
    /// ever built, and a structurally similar recompile in a warm
    /// session interns **zero** new nodes of any kind.
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`] on lexical, syntax, or gradual type
    /// errors.
    pub fn compile(&self, source: &str) -> Result<Program, Diagnostic> {
        let program = {
            let mut types = self.types.borrow_mut();
            bc_gtlc::compile_compiled(source, &mut types)?
        };
        let mut compiled = self.lower(program.term.clone(), program.ty);
        compiled.program = Some(program);
        compiled.source = Some(source.to_owned());
        Ok(compiled)
    }

    /// Compiles a batch of sources into this session, so the whole
    /// batch shares every interned coercion, memoized composition, and
    /// subtyping verdict.
    ///
    /// # Errors
    ///
    /// Returns the first [`Diagnostic`] encountered; earlier programs'
    /// interned state stays in the session (interning is idempotent,
    /// so recompiling them later costs no new nodes).
    pub fn compile_batch<'a, I>(&self, sources: I) -> Result<Vec<Program>, Diagnostic>
    where
        I: IntoIterator<Item = &'a str>,
    {
        sources.into_iter().map(|s| self.compile(s)).collect()
    }

    /// Wraps an already-built λB term, checking it against the stated
    /// type before lowering it into the session — through the interned
    /// λB checker ([`bc_lambda_b::type_of_interned`]), so the audit
    /// runs on this session's warm [`TypeArena`] and the
    /// stated-vs-actual comparison is an O(1) id equality.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::IllTyped`] if the term is open, ill typed,
    /// or well typed at a different type than stated.
    pub fn load_lambda_b(&self, term: bc_lambda_b::Term, ty: Type) -> Result<Program, RunError> {
        let (compiled, stated) = {
            let mut types = self.types.borrow_mut();
            let compiled = bc_lambda_b::bterm::compile(&term, &mut types);
            let stated = types.intern(&ty);
            match bc_lambda_b::type_of_compiled(&compiled, &mut types) {
                Err(e) => return Err(ill_typed(e)),
                Ok(actual) => {
                    if actual != stated {
                        return Err(ill_typed(format!(
                            "term has type `{}`, not the stated `{ty}`",
                            types.display(actual)
                        )));
                    }
                }
            }
            (compiled, stated)
        };
        Ok(self.lower(compiled, stated))
    }

    /// Wraps an already-compiled λB term — the `Send` job payload a
    /// warm sibling produced ([`Program::lambda_b_compiled`] /
    /// [`Program::ty_id`]) — checking it with the compiled λB checker
    /// before lowering. This is the no-re-parse path the
    /// [`crate::pool::SessionPool`] uses for warmed jobs.
    ///
    /// Every id in `term` and `ty` must be valid in this session's
    /// type arena: either interned here, or below the frozen-base
    /// watermark of a shared [`FrozenBase`] (the id-offset contract).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::IllTyped`] if the term is open, ill typed,
    /// or well typed at a different type than stated.
    ///
    /// # Panics
    ///
    /// May panic if an id does not denote a node in this session's
    /// arenas — a foreign id-space is a caller bug, not a typed error.
    pub fn load_compiled(&self, term: BTerm, ty: TypeId) -> Result<Program, RunError> {
        {
            let mut types = self.types.borrow_mut();
            match bc_lambda_b::type_of_compiled(&term, &mut types) {
                Err(e) => return Err(ill_typed(e)),
                Ok(actual) if actual != ty => {
                    return Err(ill_typed(format!(
                        "term has type `{}`, not the stated `{}`",
                        types.display(actual),
                        types.display(ty)
                    )))
                }
                Ok(_) => {}
            }
        }
        Ok(self.lower(term, ty))
    }

    /// [`Session::load_compiled`] without the λB re-check, for terms
    /// whose well-typedness is already established — the pool's
    /// compiled jobs, which its own warmup elaborated and checked
    /// before the freeze. Lowering still happens here (the λS form is
    /// session-local by design; see `bc_core::sterm`), but against a
    /// warm base it is pure arena and memo hits. (The debug assertions
    /// in `lower` still verify both intermediate forms in debug
    /// builds.)
    pub(crate) fn load_compiled_trusted(&self, term: BTerm, ty: TypeId) -> Program {
        self.lower(term, ty)
    }

    /// Lowers a well-typed compiled λB term into a session-bound
    /// program: λB → λC → λS entirely on interned ids. Casts become
    /// hash-consed λC coercions in the session's [`CArena`], which the
    /// session-wide [`CNormalizer`] memo normalises into the space
    /// arena — so a warm recompile interns nothing, normalises
    /// nothing, and builds no tree of any kind.
    fn lower(&self, term: BTerm, ty: TypeId) -> Program {
        let mut arena = self.arena.borrow_mut();
        let mut cache = self.cache.borrow_mut();
        let mut types = self.types.borrow_mut();
        let mut carena = self.carena.borrow_mut();
        let mut normalizer = self.normalizer.borrow_mut();
        let lambda_c_compiled = term_b_to_c_compiled(&term, &mut carena, &mut types);
        let lambda_s_compiled = term_c_to_s_from_compiled(
            &lambda_c_compiled,
            &carena,
            &mut normalizer,
            &mut arena,
            &mut cache,
            &types,
        );
        // Cast insertion and both translations preserve typing; audit
        // the intermediate forms with the compiled checkers on debug
        // builds (each IR is validated in place, never decompiled for
        // checking).
        debug_assert!(
            bc_lambda_c::has_type_compiled(&lambda_c_compiled, ty, &carena, &mut types),
            "λB → λC translation must preserve the program type"
        );
        debug_assert!(
            bc_core::styping::has_type_interned(&lambda_s_compiled, ty, &arena, &mut types),
            "λC → λS lowering must preserve the program type"
        );
        self.programs.set(self.programs.get() + 1);
        Program {
            lambda_b_compiled: term,
            lambda_s_compiled,
            ty: types.resolve_shared(ty),
            ty_id: ty,
            lambda_b: OnceCell::new(),
            lambda_c: OnceCell::new(),
            lambda_s: OnceCell::new(),
            session: self.id,
            coercion_watermark: arena.len(),
            type_watermark: types.len(),
            program: None,
            source: None,
        }
    }

    /// The tree-form λB term of a program (cast insertion's output),
    /// decompiled from the compiled IR through this session's type
    /// arena on first access and cached in the handle thereafter
    /// (cheap `Rc`-spine clones).
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a different session.
    pub fn lambda_b(&self, program: &Program) -> bc_lambda_b::Term {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session"
        );
        program
            .lambda_b
            .get_or_init(|| {
                self.tree_builds.set(self.tree_builds.get() + 1);
                bc_lambda_b::bterm::decompile(&program.lambda_b_compiled, &self.types.borrow())
            })
            .clone()
    }

    /// The tree-form λC term of a program (`|·|BC`), built lazily from
    /// the λB tree view on first access and cached in the handle
    /// thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a different session.
    pub fn lambda_c(&self, program: &Program) -> bc_lambda_c::Term {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session"
        );
        program
            .lambda_c
            .get_or_init(|| {
                self.tree_builds.set(self.tree_builds.get() + 1);
                term_b_to_c(&self.lambda_b(program))
            })
            .clone()
    }

    /// The tree-form λS term of a program, decompiled from the
    /// compiled IR through this session's arenas on first access and
    /// cached in the handle thereafter (cheap `Rc`-spine clones).
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a different session.
    pub fn lambda_s(&self, program: &Program) -> bc_core::Term {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session"
        );
        program
            .lambda_s
            .get_or_init(|| {
                self.tree_builds.set(self.tree_builds.get() + 1);
                decompile_term(
                    &program.lambda_s_compiled,
                    &self.arena.borrow(),
                    &self.types.borrow(),
                )
            })
            .clone()
    }

    /// Runs a program on the chosen engine with the session's default
    /// fuel.
    ///
    /// # Errors
    ///
    /// [`RunError::FuelExhausted`] (with the real step count) when the
    /// bound is reached; [`RunError::IllTyped`] if a loaded term lied
    /// about its type.
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a *different* session — its
    /// ids would silently denote the wrong coercions here, so the
    /// mismatch fails loudly instead.
    pub fn run(&self, program: &Program, engine: Engine) -> Result<RunReport, RunError> {
        self.run_with_fuel(program, engine, self.default_fuel)
    }

    /// [`Session::run`] with an explicit step bound.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    ///
    /// # Panics
    ///
    /// See [`Session::run`].
    pub fn run_with_fuel(
        &self,
        program: &Program,
        engine: Engine,
        fuel: u64,
    ) -> Result<RunReport, RunError> {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session: \
             its ids belong to another arena id-space"
        );
        let started = Instant::now();
        match engine {
            Engine::LambdaB => {
                // The λB small-step engine rewrites trees; materialise
                // the (lazily decompiled) tree view first.
                let lambda_b = self.lambda_b(program);
                let r = bc_lambda_b::eval::run(&lambda_b, fuel)
                    .map_err(small_step_run_error!(bc_lambda_b))?;
                Ok(RunReport {
                    observation: observe_b(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                    elapsed: started.elapsed(),
                })
            }
            Engine::LambdaC => {
                let lambda_c = self.lambda_c(program);
                let r = bc_lambda_c::eval::run(&lambda_c, fuel)
                    .map_err(small_step_run_error!(bc_lambda_c))?;
                Ok(RunReport {
                    observation: observe_c(&r.outcome),
                    steps: r.steps,
                    metrics: None,
                    elapsed: started.elapsed(),
                })
            }
            Engine::LambdaS => {
                // λS small-steps on the compiled IR directly: merges
                // go through the session's compose cache and no tree
                // is ever materialised (the tree-rewriting
                // `bc_core::eval::run` survives as this engine's
                // property-test oracle).
                let mut arena = self.arena.borrow_mut();
                let mut cache = self.cache.borrow_mut();
                let mut types = self.types.borrow_mut();
                let r = bc_core::eval::run_compiled(
                    &program.lambda_s_compiled,
                    fuel,
                    &mut arena,
                    &mut cache,
                    &mut types,
                )
                .map_err(small_step_run_error!(bc_core))?;
                Ok(RunReport {
                    observation: observe_s_compiled(&r.outcome, &arena),
                    steps: r.steps,
                    metrics: None,
                    elapsed: started.elapsed(),
                })
            }
            Engine::MachineB => machine_report(
                bc_machine::cek_b::run(&self.lambda_b(program), fuel),
                started.elapsed(),
            ),
            Engine::MachineC => machine_report(
                bc_machine::cek_c::run(&self.lambda_c(program), fuel),
                started.elapsed(),
            ),
            Engine::MachineS => {
                // The compiled fast path: the IR's coercions are
                // already interned in the shared arena, so each run
                // performs zero tree interning and merges through the
                // session-wide compose cache.
                let mut arena = self.arena.borrow_mut();
                let mut cache = self.cache.borrow_mut();
                let r = bc_machine::cek_s::run_compiled_in(
                    &program.lambda_s_compiled,
                    &mut arena,
                    &mut cache,
                    fuel,
                );
                machine_report(r, started.elapsed())
            }
        }
    }

    /// Begins a preemptible run: like [`Session::run_with_fuel`], but
    /// instead of running to completion it parks immediately, and the
    /// caller drives the engine in bounded fuel slices with
    /// [`Session::resume_slice`] — the primitive under the pool's
    /// timeslicing scheduler.
    ///
    /// Slicing is observationally invisible (property-tested in
    /// `tests/sched.rs`): the final report — observation, step count,
    /// space peaks, fuel-exhaustion accounting — is identical to the
    /// unsliced run, because every engine checks fuel before each step
    /// in both modes and the slice bound only chooses where control
    /// returns. The four compiled/machine engines
    /// ([`Engine::MachineB`], [`Engine::MachineC`], [`Engine::MachineS`],
    /// [`Engine::LambdaS`]) park for real; the two tree small-step
    /// oracles ([`Engine::LambdaB`], [`Engine::LambdaC`]) have no
    /// resumable state worth building and run to completion inside
    /// their first slice (documented, deliberate — they exist as
    /// property-test oracles, not serving engines).
    ///
    /// # Errors
    ///
    /// [`RunError::IllTyped`] if a loaded term lied about its type
    /// (checked up front, exactly as the unsliced entry does).
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a different session.
    pub fn start_run(
        &self,
        program: &Program,
        engine: Engine,
        fuel: u64,
    ) -> Result<PausedRun, RunError> {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session: \
             its ids belong to another arena id-space"
        );
        let inner = match engine {
            Engine::MachineB => {
                PausedInner::MachineB(bc_machine::cek_b::start(&self.lambda_b(program), fuel))
            }
            Engine::MachineC => {
                PausedInner::MachineC(bc_machine::cek_c::start(&self.lambda_c(program), fuel))
            }
            Engine::MachineS => PausedInner::MachineS(bc_machine::cek_s::start_compiled_in(
                &program.lambda_s_compiled,
                &self.arena.borrow(),
                &self.cache.borrow(),
                fuel,
            )),
            Engine::LambdaS => {
                let mut arena = self.arena.borrow_mut();
                let mut types = self.types.borrow_mut();
                PausedInner::LambdaS(
                    bc_core::eval::start_compiled(
                        &program.lambda_s_compiled,
                        fuel,
                        &mut arena,
                        &mut types,
                    )
                    .map_err(small_step_run_error!(bc_core))?,
                )
            }
            // The tree oracles rewrite whole terms with no separable
            // machine state: they run unsliced inside the first
            // resume_slice call.
            Engine::LambdaB | Engine::LambdaC => PausedInner::Unsliced {
                program: Box::new(program.clone()),
                engine,
                fuel,
            },
        };
        Ok(PausedRun {
            inner,
            session: self.id,
            active: Duration::ZERO,
        })
    }

    /// Runs a parked run for at most `slice` further steps against
    /// this session's arenas; fuel is checked before the slice budget,
    /// so a slice covering the remaining fuel finishes the run.
    ///
    /// # Panics
    ///
    /// Panics if `paused` was started by a different session (its ids
    /// would denote the wrong coercions here).
    pub fn resume_slice(&self, paused: PausedRun, slice: u64) -> SliceOutcome {
        assert_eq!(
            paused.session, self.id,
            "parked run belongs to a different Session"
        );
        let session = paused.session;
        let active = paused.active;
        let slice_started = Instant::now();
        // Both exits tally this slice's wall-clock onto the run's
        // accumulated active time: a park carries it forward, a finish
        // stamps it on the report.
        let parked = |inner| {
            SliceOutcome::Parked(PausedRun {
                inner,
                session,
                active: active + slice_started.elapsed(),
            })
        };
        match paused.inner {
            PausedInner::MachineB(p) => match bc_machine::cek_b::resume(p, slice) {
                bc_machine::metrics::SliceResult::Done(r) => {
                    SliceOutcome::Done(machine_report(r, active + slice_started.elapsed()))
                }
                bc_machine::metrics::SliceResult::Parked(p) => parked(PausedInner::MachineB(p)),
            },
            PausedInner::MachineC(p) => match bc_machine::cek_c::resume(p, slice) {
                bc_machine::metrics::SliceResult::Done(r) => {
                    SliceOutcome::Done(machine_report(r, active + slice_started.elapsed()))
                }
                bc_machine::metrics::SliceResult::Parked(p) => parked(PausedInner::MachineC(p)),
            },
            PausedInner::MachineS(p) => {
                let mut arena = self.arena.borrow_mut();
                let mut cache = self.cache.borrow_mut();
                match bc_machine::cek_s::resume_compiled_in(p, &mut arena, &mut cache, slice) {
                    bc_machine::metrics::SliceResult::Done(r) => {
                        SliceOutcome::Done(machine_report(r, active + slice_started.elapsed()))
                    }
                    bc_machine::metrics::SliceResult::Parked(p) => parked(PausedInner::MachineS(p)),
                }
            }
            PausedInner::LambdaS(p) => {
                let mut arena = self.arena.borrow_mut();
                let mut cache = self.cache.borrow_mut();
                match bc_core::eval::resume_compiled(p, slice, &mut arena, &mut cache) {
                    bc_core::eval::SliceC::Done(r) => {
                        SliceOutcome::Done(r.map_err(small_step_run_error!(bc_core)).map(|r| {
                            RunReport {
                                observation: observe_s_compiled(&r.outcome, &arena),
                                steps: r.steps,
                                metrics: None,
                                elapsed: active + slice_started.elapsed(),
                            }
                        }))
                    }
                    bc_core::eval::SliceC::Parked(p) => parked(PausedInner::LambdaS(p)),
                }
            }
            PausedInner::Unsliced {
                program,
                engine,
                fuel,
                // The unsliced oracles run whole inside this slice, so
                // run_with_fuel's own measurement is the active time.
            } => SliceOutcome::Done(self.run_with_fuel(&program, engine, fuel)),
        }
    }

    /// A consolidated snapshot of the session's shared state.
    pub fn stats(&self) -> SessionStats {
        let arena = self.arena.borrow();
        let cache = self.cache.borrow();
        let types = self.types.borrow();
        SessionStats {
            programs: self.programs.get(),
            coercions: arena.stats(),
            compose_pairs: cache.len(),
            compose_capacity: cache.capacity(),
            compose: cache.stats(),
            type_nodes: types.len(),
            type_memo_pairs: types.memo_len(),
            type_memo_capacity: types.memo_capacity(),
            type_queries: types.query_stats(),
            lambda_c_nodes: self.carena.borrow().len(),
            normalizer: self.normalizer.borrow().stats(),
            tree_builds: self.tree_builds.get(),
            tier: TierStats {
                base_coercion_nodes: arena.base_len(),
                local_coercion_nodes: arena.local_len(),
                base_type_nodes: types.base_len(),
                local_type_nodes: types.local_len(),
                coercion_base_hits: arena.stats().base_hits,
                type_base_hits: types.base_node_hits(),
                compose_base_hits: cache.stats().base_hits,
                verdict_base_hits: types.query_stats().base_hits,
            },
        }
    }

    /// Freezes the session's current arenas, memo tables, and
    /// composition pairs into an immutable [`FrozenBase`] snapshot
    /// that any number of sessions — on any number of threads — can
    /// be built over via [`SessionBuilder::base`]. The freezing
    /// session keeps working unchanged; programs it compiled *before*
    /// the freeze can be [`Session::adopt`]ed by sessions built over
    /// the snapshot.
    ///
    /// A session built over a base freezes by **appending** its
    /// overlay to the base's shared slab — O(overlay) work, flat in
    /// base size — and the result [`FrozenBase::extends`] the base by
    /// construction. When this session is the *first* to freeze over
    /// its base (the promotion path), its local ids land in the slab
    /// verbatim and programs it compiled remain adoptable at full
    /// watermarks; if a sibling session froze over the same base
    /// first, local ids may be re-numbered during the append, so the
    /// ancestry entry conservatively admits only programs compiled
    /// before this session interned anything local.
    pub fn freeze(&self) -> Arc<FrozenBase> {
        let types_arena = self.types.borrow();
        let coercion_arena = self.arena.borrow();
        let types = Arc::new(types_arena.freeze());
        let coercions = Arc::new(coercion_arena.freeze(&self.cache.borrow()));
        let verbatim = match (types_arena.base_view(), coercion_arena.base_view()) {
            (None, None) => true,
            (Some(tb), Some(cb)) => types.contiguous_over(tb) && coercions.contiguous_over(cb),
            _ => unreachable!("SessionBuilder wires both arenas to the same base"),
        };
        let entry = if verbatim {
            AncestryEntry {
                session: self.id,
                coercions: coercions.len(),
                types: types.len(),
            }
        } else {
            AncestryEntry {
                session: self.id,
                coercions: coercion_arena.base_len(),
                types: types_arena.base_len(),
            }
        };
        let mut ancestry = self.ancestry.clone();
        ancestry.push(entry);
        Arc::new(FrozenBase {
            types,
            coercions,
            ancestry,
        })
    }

    /// Like [`Session::freeze`], but always builds a **fresh,
    /// detached slab** — base rows copied, local rows appended
    /// verbatim — sharing no storage with the session's own base.
    ///
    /// This is the clone-semantics snapshot: O(base + overlay) work,
    /// useful when the original base's slab must remain untouched (a
    /// golden baseline, a bench control) or to cap a long append
    /// chain's memory at exactly the live rows. The result does *not*
    /// [`FrozenBase::extends`] the session's base — it is a new
    /// id-space root — but programs this session compiled remain
    /// adoptable by sessions built over it, because detached freezing
    /// preserves every id verbatim.
    pub fn freeze_detached(&self) -> Arc<FrozenBase> {
        let types = Arc::new(self.types.borrow().freeze_flat());
        let coercions = Arc::new(self.arena.borrow().freeze_flat(&self.cache.borrow()));
        let mut ancestry = self.ancestry.clone();
        ancestry.push(AncestryEntry {
            session: self.id,
            coercions: coercions.len(),
            types: types.len(),
        });
        Arc::new(FrozenBase {
            types,
            coercions,
            ancestry,
        })
    }

    /// Renders a program's compiled λS IR in the paper grammar,
    /// resolved through this session's arenas.
    ///
    /// # Panics
    ///
    /// Panics if `program` was compiled by a different session.
    pub fn display_compiled(&self, program: &Program) -> String {
        assert_eq!(
            program.session, self.id,
            "program was compiled by a different Session"
        );
        program
            .lambda_s_compiled
            .display(&self.arena.borrow(), &self.types.borrow())
    }

    /// Clones the session state (arenas, cache, counters) under a
    /// fresh session identity; programs of the original must be
    /// re-bound via [`Session::adopt`] to run here.
    pub fn clone_state(&self) -> Session {
        let (arena, cache) = self.arena.borrow().clone_pair(&self.cache.borrow());
        let mut ancestry = self.ancestry.clone();
        ancestry.push(AncestryEntry {
            session: self.id,
            coercions: arena.len(),
            types: self.types.borrow().len(),
        });
        Session {
            id: next_session_id(),
            ancestry,
            arena: RefCell::new(arena),
            cache: RefCell::new(cache),
            types: RefCell::new(self.types.borrow().clone()),
            carena: RefCell::new(self.carena.borrow().clone()),
            normalizer: RefCell::new(self.normalizer.borrow().clone()),
            default_fuel: self.default_fuel,
            programs: Cell::new(self.programs.get()),
            tree_builds: Cell::new(self.tree_builds.get()),
        }
    }

    /// Re-binds a program compiled by an ancestor session to this
    /// one. Sound exactly when this session inherited every id the
    /// program references — i.e. this session descends (via
    /// [`Session::clone_state`] or a [`FrozenBase`]) from the
    /// compiling session *at or after* the point the program was
    /// compiled; anything else is a typed [`AdoptError`], never a
    /// silent id-space confusion.
    ///
    /// # Errors
    ///
    /// [`AdoptError::ForeignSession`] when this session does not
    /// descend from the compiling one; [`AdoptError::PostFork`] when
    /// it does, but the program was compiled after the fork (its ids
    /// may exceed what was inherited).
    pub fn adopt(&self, program: &Program) -> Result<Program, AdoptError> {
        if program.session == self.id {
            return Ok(program.clone());
        }
        let fork = self
            .ancestry
            .iter()
            .find(|e| e.session == program.session)
            .ok_or(AdoptError::ForeignSession)?;
        if program.coercion_watermark <= fork.coercions && program.type_watermark <= fork.types {
            Ok(Program {
                session: self.id,
                ..program.clone()
            })
        } else {
            Err(AdoptError::PostFork {
                program_coercions: program.coercion_watermark,
                inherited_coercions: fork.coercions,
                program_types: program.type_watermark,
                inherited_types: fork.types,
            })
        }
    }
}

/// A run preempted at a slice boundary, created by
/// [`Session::start_run`] and driven by [`Session::resume_slice`].
///
/// The parked state references ids interned in the session that
/// started it, and machine values are `Rc`-shared, so a parked run is
/// worker-local by design — **not** `Send` — and must be resumed by
/// the same session (asserted). The pool's scheduler therefore parks
/// runs in per-worker run queues rather than migrating them.
pub struct PausedRun {
    inner: PausedInner,
    session: u64,
    /// Wall-clock time spent inside completed slices — what the final
    /// report's [`RunReport::elapsed`] accumulates (parked time is
    /// excluded: it is the scheduler's, not the run's).
    active: Duration,
}

impl PausedRun {
    /// Steps taken so far across all slices — what a deadline miss
    /// reports without waiting for the run to finish.
    pub fn steps(&self) -> u64 {
        match &self.inner {
            PausedInner::MachineB(p) => p.steps(),
            PausedInner::MachineC(p) => p.steps(),
            PausedInner::MachineS(p) => p.steps(),
            PausedInner::LambdaS(p) => p.steps(),
            PausedInner::Unsliced { .. } => 0,
        }
    }
}

enum PausedInner {
    MachineB(bc_machine::cek_b::Paused),
    MachineC(bc_machine::cek_c::Paused),
    MachineS(bc_machine::cek_s::Paused),
    LambdaS(bc_core::eval::PausedC),
    /// Tree small-step oracles: no resumable state, run unsliced on
    /// the first resume. The `Program` handle is boxed so the cold
    /// oracle path doesn't inflate every parked machine state.
    Unsliced {
        program: Box<Program>,
        engine: Engine,
        fuel: u64,
    },
}

/// What one [`Session::resume_slice`] call produced.
pub enum SliceOutcome {
    /// The run finished with the exact report an unsliced
    /// [`Session::run_with_fuel`] would have produced.
    Done(Result<RunReport, RunError>),
    /// The slice budget ran out first; resume to continue.
    Parked(PausedRun),
}

/// Maps a machine run to the session-level result: fuel exhaustion is
/// surfaced as [`RunError::FuelExhausted`] carrying the transition
/// count the machine actually took.
fn machine_report(
    r: bc_machine::metrics::MachineRun,
    elapsed: Duration,
) -> Result<RunReport, RunError> {
    match r.outcome {
        bc_machine::MachineOutcome::Timeout => Err(RunError::FuelExhausted {
            steps: r.metrics.steps,
            metrics: Some(r.metrics),
        }),
        outcome => Ok(RunReport {
            observation: outcome.to_observation(),
            steps: r.metrics.steps,
            metrics: Some(r.metrics),
            elapsed,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_32: &str = "letrec loop (n : Int) : Bool = \
         if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
       in loop 32";

    #[test]
    fn all_engines_agree_on_a_program() {
        let session = Session::new();
        let program = session
            .compile(
                "letrec even (n : Int) : Bool = \
                   if n = 0 then true else \
                   if n = 1 then false else even (n - 2) \
                 in even 10",
            )
            .expect("compiles");
        let expected = session
            .run(&program, Engine::LambdaB)
            .expect("runs")
            .observation;
        for engine in Engine::ALL {
            assert_eq!(
                session.run(&program, engine).expect("runs").observation,
                expected,
                "{engine}"
            );
        }
    }

    #[test]
    fn programs_in_one_session_share_interned_state() {
        // The tentpole acceptance criterion: a second structurally
        // similar program (same types and casts, different constants)
        // interns nothing new in a warm session.
        let source = |n: i64| {
            format!(
                "letrec loop (n : Int) : Bool = \
                   if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                 in loop {n}"
            )
        };
        let warm = Session::new();
        let first = warm.compile(&source(17)).expect("compiles");
        let after_first = warm.stats();
        assert!(after_first.coercions.nodes > 0);
        assert!(after_first.type_nodes > 0);

        let second = warm.compile(&source(23)).expect("compiles");
        let after_second = warm.stats();
        assert_eq!(
            after_second.coercions.nodes, after_first.coercions.nodes,
            "second similar program must intern zero new coercions"
        );
        assert_eq!(
            after_second.type_nodes, after_first.type_nodes,
            "second similar program must intern zero new types"
        );
        assert_eq!(after_second.programs, 2);

        // Contrast: a fresh session pays the interning again.
        let cold = Session::new();
        cold.compile(&source(23)).expect("compiles");
        assert_eq!(cold.stats().coercions.nodes, after_first.coercions.nodes);

        // And both programs still run correctly against the shared
        // arenas.
        let a = warm.run(&first, Engine::MachineS).expect("runs");
        let b = warm.run(&second, Engine::MachineS).expect("runs");
        assert_eq!(a.observation, b.observation);
    }

    #[test]
    fn batch_compilation_shares_the_caches() {
        let session = Session::builder().default_fuel(10_000_000).build();
        let sources: Vec<String> = (1..=8)
            .map(|n| {
                format!(
                    "letrec loop (n : Int) : Bool = \
                       if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                     in loop {n}"
                )
            })
            .collect();
        let programs = session
            .compile_batch(sources.iter().map(String::as_str))
            .expect("batch compiles");
        assert_eq!(programs.len(), 8);
        for p in &programs {
            let report = session.run(p, Engine::MachineS).expect("runs");
            assert_eq!(report.observation.to_string(), "true");
        }
        // Warm rerun of the whole batch composes nothing structurally.
        let misses = session.stats().compose.misses;
        for p in &programs {
            session.run(p, Engine::MachineS).expect("runs");
        }
        let stats = session.stats();
        assert_eq!(
            stats.compose.misses, misses,
            "warm batch rerun must be pure cache hits"
        );
        assert!(stats.compose.hits > 0);
    }

    #[test]
    fn fuel_exhaustion_is_a_typed_error_with_the_real_step_count() {
        let session = Session::new();
        let program = session.compile(LOOP_32).expect("compiles");
        for engine in Engine::ALL {
            match session.run_with_fuel(&program, engine, 7) {
                Err(RunError::FuelExhausted { steps, metrics }) => {
                    assert_eq!(steps, 7, "{engine} must report the real step count");
                    let is_machine = matches!(
                        engine,
                        Engine::MachineB | Engine::MachineC | Engine::MachineS
                    );
                    assert_eq!(
                        metrics.is_some(),
                        is_machine,
                        "{engine}: machine engines carry their space metrics to the cutoff"
                    );
                }
                other => panic!("{engine}: expected FuelExhausted, got {other:?}"),
            }
        }
    }

    #[test]
    fn loading_an_ill_typed_lambda_b_term_is_a_typed_error() {
        let session = Session::new();
        // 1 2 is ill typed.
        let bad = bc_lambda_b::Term::int(1).app(bc_lambda_b::Term::int(2));
        match session.load_lambda_b(bad, Type::INT) {
            Err(RunError::IllTyped(_)) => {}
            other => panic!("expected IllTyped, got {other:?}"),
        }
        // A well-typed term with a wrong stated type is rejected too.
        let one = bc_lambda_b::Term::int(1);
        match session.load_lambda_b(one, Type::BOOL) {
            Err(RunError::IllTyped(d)) => assert!(d.message.contains("stated"), "{d}"),
            other => panic!("expected IllTyped, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different Session")]
    fn running_a_foreign_program_fails_loudly() {
        let a = Session::new();
        let b = Session::new();
        let program = a.compile("1 + 2").expect("compiles");
        let _ = b.run(&program, Engine::MachineS);
    }

    #[test]
    fn builder_knobs_reach_the_arenas() {
        let session = Session::builder()
            .compose_cache_capacity(8)
            .type_memo_capacity(16)
            .default_fuel(123)
            .build();
        assert_eq!(session.default_fuel(), 123);
        let stats = session.stats();
        assert_eq!(stats.compose_capacity, 8);
        assert_eq!(stats.type_memo_capacity, 16);
        // A tiny compose cache under a boundary-heavy program evicts
        // but stays correct.
        let program = session.compile(LOOP_32).expect("compiles");
        let report = session
            .run_with_fuel(&program, Engine::MachineS, 1_000_000)
            .expect("runs");
        assert_eq!(report.observation.to_string(), "true");
        assert!(session.stats().compose_pairs <= 8);
    }

    #[test]
    fn blame_is_explained_at_source_level() {
        let session = Session::new();
        let program = session
            .compile("let f = fun x => x + 1 in f true")
            .expect("compiles");
        match session
            .run(&program, Engine::MachineS)
            .expect("runs")
            .observation
        {
            Observation::Blame(p) => {
                let msg = program.explain_blame(p).expect("label is mapped");
                assert!(msg.contains("error"), "{msg}");
            }
            other => panic!("expected blame, got {other}"),
        }
    }

    #[test]
    fn display_and_ir_stats_are_available() {
        let session = Session::new();
        let program = session.compile(LOOP_32).expect("compiles");
        assert!(program.ir_size() > 0);
        assert!(program.boundary_crossings() > 0);
        assert!(!session.display_compiled(&program).is_empty());
    }

    #[test]
    fn machine_s_boundary_crossings_never_reintern() {
        // A MachineS run of a compiled program performs zero tree
        // interning — boundary crossings are id loads — on the first
        // run and every run after.
        let session = Session::builder().default_fuel(10_000_000).build();
        let program = session
            .compile(
                "letrec loop (n : Int) : Bool = \
                   if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                 in loop 512",
            )
            .expect("compiles");
        for round in 0..3 {
            let report = session.run(&program, Engine::MachineS).expect("runs");
            let reuse = report.metrics.expect("machines report metrics").reuse;
            assert_eq!(
                reuse.tree_interns, 0,
                "round {round} re-interned a coercion tree"
            );
            if round > 0 {
                assert_eq!(reuse.node_misses, 0, "round {round}");
                assert_eq!(reuse.compose_misses, 0, "round {round}");
                assert!(reuse.compose_hits > 0, "round {round}");
            }
        }
    }

    #[test]
    fn cloned_sessions_keep_working_arenas() {
        // clone_state re-binds the compose cache to the cloned arena
        // under a fresh identity; adopt re-binds a program to the
        // clone. Both sides keep running — with their warm caches.
        let session = Session::builder().default_fuel(1_000_000).build();
        let program = session.compile(LOOP_32).expect("compiles");
        let before = session.run(&program, Engine::MachineS).expect("runs");
        let clone = session.clone_state();
        let adopted = clone.adopt(&program).expect("sibling adoption is sound");
        let from_clone = clone.run(&adopted, Engine::MachineS).expect("runs");
        let from_original = session.run(&program, Engine::MachineS).expect("runs");
        assert_eq!(before.observation, from_clone.observation);
        assert_eq!(before.observation, from_original.observation);
        assert!(
            clone.stats().compose.hits > 0,
            "clone must inherit the warm cache"
        );
        // The original program still belongs to the original session.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = clone.run(&program, Engine::MachineS);
        }));
        assert!(err.is_err(), "foreign program must fail loudly");
    }

    #[test]
    fn adopt_rejects_a_foreign_session() {
        // Two unrelated sessions: adoption is a typed error, not a
        // silent id-space confusion (satellite: adopt ergonomics).
        let a = Session::new();
        let b = Session::new();
        let program = a.compile("1 + 2").expect("compiles");
        assert!(matches!(b.adopt(&program), Err(AdoptError::ForeignSession)));
        // The error message tells the caller what to do instead.
        let msg = AdoptError::ForeignSession.to_string();
        assert!(msg.contains("clone_state"), "{msg}");
    }

    #[test]
    fn adopt_rejects_a_post_fork_program() {
        // Fork first, compile after: the clone never inherited the
        // new program's nodes, so adoption must fail typed-ly.
        let session = Session::new();
        let early = session.compile("1 + 2").expect("compiles");
        let clone = session.clone_state();
        let late = session
            .compile("let f = fun (x : Int -> Bool) => x in 3")
            .expect("compiles");
        match clone.adopt(&late) {
            Err(AdoptError::PostFork {
                program_types,
                inherited_types,
                ..
            }) => {
                // The late program's annotation interned new type
                // nodes past what the clone inherited.
                assert!(program_types > inherited_types);
            }
            other => panic!("expected PostFork, got {other:?}"),
        }
        // The program compiled *before* the fork still adopts fine.
        clone.adopt(&early).expect("pre-fork program is inherited");
    }

    #[test]
    fn adopting_into_the_same_session_is_a_noop() {
        let session = Session::new();
        let program = session.compile("1 + 2").expect("compiles");
        let adopted = session.adopt(&program).expect("self-adoption");
        let report = session.run(&adopted, Engine::MachineS).expect("runs");
        assert_eq!(report.observation.to_string(), "3");
    }

    #[test]
    fn lambda_s_is_decompiled_lazily() {
        // Satellite: the hot compile path allocates no λS tree; the
        // tree form materialises on first access and is cached in the
        // handle.
        let session = Session::new();
        let program = session.compile(LOOP_32).expect("compiles");
        assert!(
            !program.lambda_s_materialized(),
            "compile must not build the λS tree"
        );
        let tree = session.lambda_s(&program);
        assert!(program.lambda_s_materialized());
        // The decompiled tree is exactly what the old eager path
        // stored: the tree-level λC → λS translation.
        assert_eq!(tree, bc_translate::term_c_to_s(&session.lambda_c(&program)));
        // Cached: the second access is a handle clone of the same tree.
        assert_eq!(session.lambda_s(&program), tree);
        // The λS small-step engine runs the compiled IR directly —
        // even it no longer materialises the tree.
        let fresh = session.compile(LOOP_32).expect("compiles");
        assert!(!fresh.lambda_s_materialized());
        let report = session.run(&fresh, Engine::LambdaS).expect("runs");
        assert_eq!(report.observation.to_string(), "true");
        assert!(!fresh.lambda_s_materialized());
    }

    #[test]
    fn frozen_base_sessions_share_the_warm_working_set() {
        // The tiered-interning tentpole at the session level: freeze
        // a warm session, build a fresh session over the base, and
        // compile a structurally similar program — zero local
        // interning, everything answered by the frozen tier.
        let warm = Session::builder().default_fuel(10_000_000).build();
        let p = warm.compile(LOOP_32).expect("compiles");
        warm.run(&p, Engine::MachineS).expect("runs");
        let base = warm.freeze();
        assert!(base.coercion_nodes() > 0);
        assert!(base.type_nodes() > 0);
        assert!(base.compose_pairs() > 0);

        let worker = Session::builder()
            .default_fuel(10_000_000)
            .base(Arc::clone(&base))
            .build();
        let q = worker
            .compile(
                "letrec loop (n : Int) : Bool = \
                   if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                 in loop 48",
            )
            .expect("compiles");
        let report = worker.run(&q, Engine::MachineS).expect("runs");
        assert_eq!(report.observation.to_string(), "true");
        let tier = worker.stats().tier;
        assert_eq!(tier.base_coercion_nodes, base.coercion_nodes());
        assert_eq!(
            tier.local_coercion_nodes, 0,
            "warm-shaped program must intern zero coercions locally: {tier:?}"
        );
        assert_eq!(
            tier.local_type_nodes, 0,
            "warm-shaped program must intern zero types locally: {tier:?}"
        );
        assert!(tier.coercion_base_hits > 0);
        assert!(tier.type_base_hits > 0);
        assert!(tier.compose_base_hits > 0, "{tier:?}");
        // This workload answers its relational questions entirely
        // from the O(1) fast paths (reflexivity and the ?-absorbing
        // rules), so there may be nothing to freeze; when there is,
        // the worker must hit it.
        if base.verdicts() > 0 {
            assert!(tier.verdict_base_hits > 0, "{tier:?}");
        }

        // A program compiled before the freeze adopts into the
        // base-child (the base inherited its ids).
        let adopted = worker.adopt(&p).expect("pre-freeze program adopts");
        let r = worker.run(&adopted, Engine::MachineS).expect("runs");
        assert_eq!(r.observation.to_string(), "true");

        // A program compiled in the warm session *after* the freeze
        // does not (the base never saw its ids) — unless it interned
        // nothing new past the frozen watermarks.
        warm.compile("let g = fun (x : (Int -> Int) -> Bool) => 7 in 1")
            .expect("compiles");
        // Sessions without lineage are still rejected outright.
        let stranger = Session::new();
        let sp = stranger.compile("1 + 2").expect("compiles");
        assert!(matches!(worker.adopt(&sp), Err(AdoptError::ForeignSession)));
    }

    #[test]
    fn warm_session_front_end_interns_nothing_new() {
        // The compile-time acceptance criterion: typechecking and
        // elaborating a structurally similar program against a warm
        // session interns zero new type nodes *at compile time* (no
        // run needed — the front end itself is interned).
        let source = |n: i64| {
            format!(
                "let twice = fun (f : ? -> ?) => fun (x : ?) => f (f x) in \
                 let inc = fun x => x + {n} in \
                 (twice (inc : ? -> ?) {n} : Int)"
            )
        };
        let session = Session::new();
        session.compile(&source(1)).expect("compiles");
        let warm = session.stats();
        assert!(warm.type_nodes > 0);
        session.compile(&source(2)).expect("compiles");
        let after = session.stats();
        assert_eq!(
            after.type_nodes, warm.type_nodes,
            "warm recompile must intern zero new type nodes"
        );
        assert_eq!(
            after.coercions.nodes, warm.coercions.nodes,
            "warm recompile must intern zero new coercion nodes"
        );
        // And the warm front end answers its relational questions from
        // the memo tables: no new verdicts are computed either.
        assert_eq!(
            after.type_queries.misses, warm.type_queries.misses,
            "warm recompile must not compute a single new verdict"
        );
        assert!(after.type_queries.hits > warm.type_queries.hits);
    }
}
