//! Parallel serving: a multi-threaded [`SessionPool`] over an
//! epoch-managed [`FrozenBase`].
//!
//! Everything below the session layer is deliberately
//! single-threaded — `Rc` trees, `RefCell` arenas, `&mut` caches —
//! because one request's hot path must not pay for synchronisation it
//! does not need. This module is where the parallelism lives instead:
//! a [`SessionPool`] serves compile+run requests across N OS threads
//! by combining
//!
//! * the **frozen base tier** ([`Session::freeze`] →
//!   `Arc<FrozenBase>`): an immutable snapshot of a warm session's
//!   arenas — every type node, coercion node, relational verdict, and
//!   composition pair the warmup traffic touched — shared read-only
//!   by all workers (it is `Send + Sync`; nothing in it ever mutates);
//! * **per-worker overlay sessions** ([`SessionBuilder::base`]): each
//!   worker thread owns a private, completely unsynchronised
//!   [`Session`] layered over the base. Lookups consult the base
//!   first; only genuinely new nodes are interned locally, with ids
//!   offset past the base;
//! * **live base promotion** ([`PromotionPolicy`]): when traffic
//!   *drifts* past what the warmup predicted, the base does not stay
//!   stale forever — the fattest overlay is re-frozen (freezing
//!   flattens base + overlay, preserving every base id verbatim) and
//!   published as a new **epoch** that every worker adopts at its next
//!   job boundary.
//!
//! # The epoch lifecycle
//!
//! A pool's base moves through five phases:
//!
//! 1. **warmup** — [`SessionPoolBuilder::warmup`] compiles (and
//!    briefly runs) representative sources into one session, then
//!    freezes it: epoch 1.
//! 2. **serve** — workers run private overlay sessions over the
//!    current epoch's base. Traffic the base covers interns nothing;
//!    drifted traffic interns into per-worker overlays, duplicated
//!    once per worker that meets it.
//! 3. **promote** — each worker, at job boundaries, checks its own
//!    overlay against the pool's [`PromotionPolicy`] (overlay size,
//!    base-miss rate, a job interval). The worker holding the
//!    *fattest* overlay re-freezes its session — base ids are
//!    preserved verbatim, so the new snapshot [`FrozenBase::extends`]
//!    the old one and every outstanding id and compiled payload stays
//!    valid. The warmup's [`CompiledProgram`]s are re-validated
//!    against the new snapshot's watermarks before it is published.
//! 4. **hot-swap** — the new epoch is published through an
//!    `ArcSwap`-shaped cell (`EpochBase`): an atomic epoch counter
//!    over a mutex-guarded `Arc<FrozenBase>`. Readers pay one atomic
//!    load per job; only an actual epoch change takes the lock (for
//!    one `Arc` clone — never a torn base). Publication never pauses
//!    job intake: [`SessionPool::submit`] touches only its target
//!    queue.
//! 5. **drain** — workers pick the new epoch up at their next job
//!    boundary, rebuilding their overlays over the fatter base (the
//!    nodes they had interned locally are now base nodes). The old
//!    epoch's `Arc` drops reference by reference and frees itself;
//!    nothing blocks on it.
//!
//! # Work-stealing queues
//!
//! Jobs are dispatched round-robin to **per-worker deques**; an idle
//! worker first drains its own queue, then steals from the back of
//! the longest sibling queue. There is no global queue lock on the
//! per-job hot path — the deque mutexes are held for a push or a pop,
//! and contention only appears when a thief and its victim touch the
//! same deque. [`PoolStats`] reports `steals` and live
//! [`queue depths`](SessionPool::queue_depths) (the backpressure
//! signal for load-shedding callers).
//!
//! # Timeslicing, deadlines, cancellation
//!
//! Workers serve **preemptively**: a job runs for a
//! [`SliceBudget`] worth of machine steps,
//! then parks its machine state (`Session::resume_slice`) into its
//! worker's run queue behind the worker's other in-flight jobs —
//! round-robin, so a divergent spinner costs its queue-mates one
//! slice of latency per turn instead of its whole fuel bound. Slices
//! are counted in steps, not wall-clock, so slicing is deterministic
//! and observationally invisible: sliced and unsliced runs produce
//! identical observations, step counts, fuel-exhaustion accounting,
//! and space metrics (property-tested in `tests/sched.rs`). Parked
//! state is worker-local by design — machine values share `Rc` spines
//! (an `Arc` spine taxes every step; see `bc_core::sterm`) — so a
//! parked job resumes on the worker that started it; only its
//! *result* travels.
//!
//! On top of the slice boundaries the front end gets three controls:
//!
//! * **deadlines** — [`SessionPool::submit_with_deadline`] bounds a
//!   job in wall-clock time, enforced cooperatively before each slice
//!   ([`JobError::DeadlineExceeded`] reports the steps and time
//!   actually spent);
//! * **cancellation** — [`JobHandle::cancel`] resolves the handle to
//!   [`JobError::Canceled`] immediately; the serving worker discards
//!   its side at the next queue pop or slice boundary;
//! * **bounded queues** — [`SessionPoolBuilder::queue_capacity`]
//!   bounds each worker's standing work (queued + parked + running);
//!   submissions past the bound resolve to [`JobError::Rejected`]
//!   instead of queueing without bound.
//!
//! # Id-offset contract
//!
//! Ids below the base lengths ([`FrozenBase::coercion_nodes`],
//! [`FrozenBase::type_nodes`]) denote frozen nodes and mean the same
//! thing in every worker. Ids at or past them are worker-local:
//! two workers may mint the same numeric id for different nodes, so
//! local ids must never travel between workers — which the API
//! enforces by keeping [`Program`](crate::Program) handles inside the
//! worker that compiled them and returning only `Send` observations.
//! Promotion respects the contract by construction: an epoch N+1 base
//! is always an *extension* of epoch N (checked by
//! [`FrozenBase::extends`] in debug builds before every publish).
//!
//! # Compiled jobs
//!
//! The one payload that *may* travel is a [`CompiledProgram`]: the
//! warmup's interned λB term plus its type id, compiled **before**
//! the freeze, so every id it references is below the base watermarks
//! and denotes the same node in every worker — in epoch 1 and, by the
//! extension property, in every later epoch (each serve re-checks the
//! payload's watermarks against its epoch's ancestry before taking
//! the no-recheck load path). [`SessionPool::submit`] upgrades any
//! submission whose source text exactly matches a warmup source to
//! this path automatically ([`SessionPool::submit_compiled`] is the
//! explicit form).
//!
//! # Worker failure
//!
//! A panic while serving a job is caught in the worker loop: the job
//! resolves to [`JobError::WorkerPanicked`], the worker's session is
//! retired (its counters fold into [`PoolStats`], so accounting stays
//! monotone), and the worker respawns itself over the **current**
//! epoch. Jobs already queued behind the panic are either stolen by
//! siblings or served by the replacement.
//!
//! # Example
//!
//! ```
//! use blame_coercion::{Engine, SessionPool};
//!
//! let pool = SessionPool::builder()
//!     .workers(2)
//!     .warmup(["let inc = fun x => x + 1 in (inc 41 : Int)"])
//!     .build()
//!     .expect("warmup compiles");
//! let handles = pool.submit_batch(
//!     (0..8).map(|n| format!("let inc = fun x => x + {n} in (inc 1 : Int)")),
//!     Engine::MachineS,
//! );
//! for handle in handles {
//!     handle.wait().expect("runs");
//! }
//! let stats = pool.shutdown();
//! assert_eq!(stats.jobs(), 8);
//! // The warmup covered the workload's shapes: no worker interned
//! // a single coercion or type past the shared base, and the base
//! // never needed to move past its warmup epoch.
//! assert_eq!(stats.local_coercion_nodes(), 0);
//! assert_eq!(stats.local_type_nodes(), 0);
//! assert_eq!(stats.epoch, 1);
//! assert_eq!(stats.promotions, 0);
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bc_gtlc::Diagnostic;
use bc_lambda_b::BTerm;
use bc_machine::metrics::Metrics;
use bc_obs::{AuditOutcome, AuditRecord};
use bc_syntax::TypeId;
use bc_translate::bisim::Observation;

use crate::obs::{ns, PoolObs, DEFAULT_AUDIT_CAPACITY};
use crate::sched::{Deadline, JobState, ReplySlot, SliceBudget};
use crate::session::{
    Engine, FrozenBase, PausedRun, RunError, Session, SessionBuilder, SessionStats, SliceOutcome,
};

/// Locks a mutex, shrugging off poisoning: every structure the pool
/// guards this way (slots, queues, the epoch cell, join handles) is
/// valid after any panic — panics are caught at the serve boundary and
/// the panicking worker's state is retired wholesale.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What a completed pool job returns: the observation plus the run
/// accounting, all `Send` (no arena ids, no term trees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// What the program evaluated to.
    pub observation: Observation,
    /// Steps taken (reduction steps or machine transitions).
    pub steps: u64,
    /// Machine space metrics (machine engines only).
    pub metrics: Option<Metrics>,
    /// Index of the worker that served the job (for observability;
    /// jobs are dispatched round-robin and stolen by idle workers, so
    /// the assignment is load-dependent).
    pub worker: usize,
    /// Whether the job travelled as a compiled program (the warmup's
    /// interned λB term) rather than source text — `true` means the
    /// serving worker never touched the parser or the elaborator.
    pub compiled: bool,
    /// End-to-end wall-clock time from submission to resolution —
    /// queueing, any parked turns, and execution together. For the
    /// execution time alone see
    /// [`RunReport::elapsed`](crate::RunReport::elapsed); the gap
    /// between the two is scheduling (queue wait + time parked behind
    /// run-queue siblings).
    pub elapsed: Duration,
}

/// A program compiled once at warmup and shipped to workers by id:
/// the interned λB term plus its type id, with every id below the
/// pool base's frozen watermarks (the warmup compiles *before* the
/// freeze), so any worker session built over the base adopts it with
/// no lexing, no parsing, no elaboration, and no λB re-check — the
/// worker only re-lowers λB → λC → λS, which on a warm base is pure
/// arena and memo hits. (The lowered λS form itself deliberately does
/// not travel: its `Rc` spine is `!Send` because atomic refcounts
/// would tax every machine step; see `bc_core::sterm`.) `Send + Sync`
/// by construction: the λB spine is `Arc`, the ids plain integers.
///
/// The payload also carries its *provenance* — the warmup session's
/// identity and the arena watermarks at compile time — which is what
/// keeps the no-recheck path honest across base promotions: before
/// trusting the ids, a serving worker asks its current epoch's base
/// whether it inherits that provenance (epoch N+1 extends epoch N, so
/// the answer stays yes; a `false` falls back to compiling the
/// bundled source).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    source: String,
    term: BTerm,
    ty: TypeId,
    /// Compiling session id + (coercion, type) watermarks — the
    /// [`FrozenBase::inherits`] query key.
    session: u64,
    coercion_watermark: usize,
    type_watermark: usize,
}

impl CompiledProgram {
    /// The source text this program was compiled from (the key
    /// [`SessionPool::submit`] uses to upgrade matching submissions).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether a base snapshot carries every id this payload
    /// references — true for the epoch the warmup froze and, because
    /// promotion only extends bases, for every epoch after it.
    fn valid_against(&self, base: &FrozenBase) -> bool {
        base.inherits(self.session, self.coercion_watermark, self.type_watermark)
    }
}

/// Why a pool job produced no [`JobOutput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The source failed to lex, parse, or gradually type check.
    Compile(Diagnostic),
    /// The program compiled but the run errored (fuel exhaustion or a
    /// loaded term's type lie) — same payload as [`Session::run`].
    Run(RunError),
    /// The worker serving this job panicked mid-serve. The panic was
    /// caught, the worker retired and respawned over the current
    /// epoch, and the pool keeps serving — only this job is affected.
    WorkerPanicked,
    /// The job's [`Deadline`] passed before
    /// it finished. Enforced cooperatively at scheduling boundaries
    /// (queue pop, slice start), so the job reports the steps it
    /// actually executed and the wall-clock time since submission —
    /// both useful for choosing a better deadline or fuel bound.
    DeadlineExceeded {
        /// Machine steps the job had executed when the miss was
        /// detected (zero if the deadline passed while still queued).
        steps: u64,
        /// Wall-clock time from submission to detection.
        elapsed: Duration,
    },
    /// The submitter called [`JobHandle::cancel`] before the job
    /// finished. Queued and parked jobs are discarded at the next
    /// scheduling boundary; a running job stops at its next slice
    /// boundary — cancellation is cooperative, never mid-step.
    Canceled,
    /// The submission was refused up front: the target worker already
    /// holds [`SessionPoolBuilder::queue_capacity`] jobs in flight
    /// (queued, parked, or running). The job never entered a queue —
    /// shed load or retry later.
    Rejected {
        /// The target worker's in-flight job count at rejection time.
        queue_depth: usize,
    },
    /// The pool shut down (or a worker died) before answering; the
    /// job may or may not have executed.
    Lost,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Compile(d) => write!(f, "compile error: {}", d.message),
            JobError::Run(e) => write!(f, "run error: {e}"),
            JobError::WorkerPanicked => {
                f.write_str("worker panicked while serving the job (worker respawned)")
            }
            JobError::DeadlineExceeded { steps, elapsed } => write!(
                f,
                "deadline exceeded after {steps} steps ({:.1} ms elapsed)",
                elapsed.as_secs_f64() * 1e3
            ),
            JobError::Canceled => f.write_str("job canceled by its submitter"),
            JobError::Rejected { queue_depth } => write!(
                f,
                "job rejected: target worker already holds {queue_depth} jobs in flight"
            ),
            JobError::Lost => f.write_str("job lost: the pool shut down before answering"),
        }
    }
}

impl std::error::Error for JobError {}

/// A handle to a submitted job: wait (with or without a timeout),
/// poll, register a completion callback, or cancel.
///
/// The handle and the serving worker share one completion cell
/// (`sched::JobState`); every job resolves exactly once — a worker
/// reply, a deadline miss, a cancellation, a rejection, or the
/// lost-on-shutdown backstop — and every waiter sees that one
/// resolution.
#[derive(Debug)]
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    /// Blocks until the job completes, returning its output (or the
    /// typed error). Returns [`JobError::Lost`] if the pool shut down
    /// without answering.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        self.state.wait()
    }

    /// Blocks for at most `timeout`: `Some` with the result if the
    /// job completed in time, `None` on timeout. Timing out does
    /// **not** lose or cancel the job — it stays in flight and a
    /// later [`JobHandle::wait`], [`JobHandle::wait_timeout`], or
    /// [`JobHandle::try_wait`] can still collect it.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobOutput, JobError>> {
        self.state.wait_timeout(timeout)
    }

    /// Non-blocking probe: `Some` once the job has resolved (pollers
    /// see [`JobError::Lost`] on a shutdown exactly like
    /// [`JobHandle::wait`] callers, rather than spinning on `None`
    /// forever).
    pub fn try_wait(&self) -> Option<Result<JobOutput, JobError>> {
        self.state.try_wait()
    }

    /// Registers a callback fired exactly once, when the job
    /// resolves — immediately (on this thread) if it already has,
    /// otherwise on the resolving thread (usually the serving
    /// worker). One callback per job: registering again replaces an
    /// unfired predecessor. Keep it quick — it runs inline on the
    /// worker's serving path.
    pub fn on_ready(&self, callback: impl FnOnce(&Result<JobOutput, JobError>) + Send + 'static) {
        self.state.on_ready(Box::new(callback));
    }

    /// Cancels the job cooperatively: the handle resolves to
    /// [`JobError::Canceled`] immediately (any waiter unblocks now),
    /// and the serving worker discards its side at the next
    /// scheduling boundary — a queued or parked job is dropped there;
    /// a running job stops at its next slice boundary. Canceling a
    /// job that already resolved is a no-op (the original result
    /// stands).
    pub fn cancel(&self) {
        self.state.cancel();
    }
}

/// What a job asks a worker to execute: source text (parsed and
/// elaborated by the worker) or an already-compiled program (loaded
/// straight into the worker's session — the no-re-parse path).
#[derive(Debug)]
enum JobSpec {
    /// Source text; the worker compiles it (consulting its local
    /// program cache first, so a repeated source parses once per
    /// worker).
    Source(String),
    /// A warmup-compiled program shipped by reference; the worker
    /// loads the interned term without ever seeing the source.
    Compiled(Arc<CompiledProgram>),
    /// Deliberate fault injection: serving this job panics inside the
    /// worker. Test-only ([`SessionPool::submit_poison`]); exercises
    /// the catch-unwind + respawn path.
    Poison,
}

impl JobSpec {
    /// The cache key: compiled jobs and their source-text twins hash
    /// to the same worker-local program.
    fn key(&self) -> &str {
        match self {
            JobSpec::Source(s) => s,
            JobSpec::Compiled(p) => &p.source,
            JobSpec::Poison => "\u{22a5}poison",
        }
    }
}

/// A unit of work travelling a queue: the spec plus run options, with
/// the reply slot (the worker's half of the completion cell) riding
/// along. Dropping an unresolved job resolves it to
/// [`JobError::Lost`] — the backstop that keeps every handle
/// answerable no matter how the job dies.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    engine: Engine,
    fuel: Option<u64>,
    reply: ReplySlot,
    deadline: Option<Deadline>,
    submitted: Instant,
}

impl Job {
    /// Whether the job's deadline (if any) has passed.
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| d.expired())
    }
}

/// A job mid-run on a worker: the parked machine state plus the job
/// it belongs to, waiting in the worker's run queue for its next
/// slice. Worker-local by design (the run holds `Rc`-shared machine
/// state and session-bound ids); if the worker dies, the run dies
/// with it and [`Job::spec`] restarts from step zero elsewhere.
struct ParkedEntry {
    job: Job,
    run: PausedRun,
    compiled: bool,
    /// How long the job sat queued before this worker admitted it
    /// (already recorded in the queue-wait histogram; kept for the
    /// job's eventual audit record).
    queue_wait: Duration,
}

/// How a job left its worker (for the slot counters).
#[derive(Clone, Copy)]
enum Disposition {
    Completed,
    Canceled,
    DeadlineMissed,
}

/// When (if ever) a pool promotes a worker overlay into a new base
/// epoch. All three gates must pass on the *same* worker at a job
/// boundary; the worker must also hold the fattest overlay in the
/// pool at that moment (promotion freezes *one* overlay — freezing
/// the fattest one retires the most duplicated-interning debt at
/// once).
///
/// # Default rationale (measured)
///
/// * `min_local_nodes` = **64**: the *entire* warm working set of the
///   six-shape bench workload freezes to well under this (report E22
///   measures ≤ 16 type nodes and ≤ 10 compose pairs live at ≥ 0.999
///   hit rates; the full warmup base is ~100 nodes of each kind).
///   An overlay that has grown 64 nodes past such a base is not
///   noise — the hot set has structurally moved.
/// * `min_miss_rate` = **0.02**: the pool's steady-state acceptance
///   bar is a ≥ 0.99 coercion base-hit rate (E23 asserts 1.000 on
///   covered traffic), so a session-lifetime miss rate of 2% is twice
///   the healthy ceiling — drift, not jitter.
/// * `min_interval_jobs` = **256**: a freeze *appends* the promoting
///   worker's overlay to the shared slab — O(overlay) work, flat in
///   base size (E28 measures it staying within 1.5× from a 1× to a
///   64× base while the old clone path grows with the base) — so the
///   charge to the promoting worker's job is small and stays small as
///   the base grows. The interval gate is therefore less about freeze
///   cost than about churn: a fresh epoch needs traffic to prove
///   itself before being re-judged, and respawning workers onto a new
///   epoch re-warms their overlays. 256 jobs keeps a pathological
///   workload (a hot set rotating every job) from thrashing epochs.
///
/// Promotion is enabled by default with these settings; they are
/// deliberately conservative — a pool whose warmup covers its traffic
/// never promotes (the bench-suite pools all stay at epoch 1).
/// Tighten them (or promote on an interval of 1) in tests and drills;
/// disable promotion entirely with
/// [`SessionPoolBuilder::no_promotion`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Minimum nodes (coercion + type) a worker's overlay must hold.
    pub min_local_nodes: usize,
    /// Minimum fraction of the worker session's coercion-intern
    /// probes *not* answered by the base (`1 - base hit rate`).
    pub min_miss_rate: f64,
    /// Minimum jobs served pool-wide since the last promotion (or
    /// since startup).
    pub min_interval_jobs: u64,
}

impl Default for PromotionPolicy {
    fn default() -> PromotionPolicy {
        PromotionPolicy {
            min_local_nodes: 64,
            min_miss_rate: 0.02,
            min_interval_jobs: 256,
        }
    }
}

/// The hot-swap cell: an `ArcSwap`-shaped pairing of an atomic epoch
/// counter with a mutex-guarded `Arc<FrozenBase>` (hand-rolled — the
/// build is offline and the pool needs exactly one operation pattern:
/// read-mostly, swap-rarely).
///
/// Readers cache the `(epoch, Arc)` pair and pay **one atomic load**
/// per job boundary ([`EpochBase::refresh`]); only an actual epoch
/// change takes the lock, for the duration of one `Arc` clone. The
/// epoch counter is only ever advanced while the lock is held and the
/// pair is only ever read together under the same lock, so a reader
/// can never observe a torn base (an epoch number paired with some
/// other epoch's snapshot). Since the slab rework the `Arc` being
/// swapped is a thin *watermark view* — a pointer to the shared
/// append-only slab plus published lengths — not a copy of the base:
/// publishing an epoch appends the overlay rows (done inside
/// [`Session::freeze`], under the slab's writer mutex) and then swaps
/// this small view, so promotion moves O(overlay) bytes regardless of
/// base size. Old epochs are not tracked and never invalidated:
/// superseded views read below their own watermark out of the same
/// slab forever (append-only storage is never moved or re-assigned),
/// so draining a replaced epoch costs nothing and the view `Arc`
/// frees itself when its last worker session is rebuilt.
#[derive(Debug)]
struct EpochBase {
    /// Monotone epoch number; starts at 1 for the warmup base.
    epoch: AtomicU64,
    current: Mutex<Arc<FrozenBase>>,
}

impl EpochBase {
    fn new(base: Arc<FrozenBase>) -> EpochBase {
        EpochBase {
            epoch: AtomicU64::new(1),
            current: Mutex::new(base),
        }
    }

    /// The current epoch number (one atomic load).
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current `(epoch, base)` pair, read consistently under the
    /// cell's lock.
    fn load(&self) -> (u64, Arc<FrozenBase>) {
        let guard = lock(&self.current);
        (self.epoch.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// `Some((epoch, base))` if the epoch has moved past `seen`; the
    /// no-change fast path is a single atomic load, no lock.
    fn refresh(&self, seen: u64) -> Option<(u64, Arc<FrozenBase>)> {
        if self.epoch.load(Ordering::Acquire) == seen {
            return None;
        }
        Some(self.load())
    }

    /// Publishes `base` as the next epoch, returning its number.
    fn publish(&self, base: Arc<FrozenBase>) -> u64 {
        let mut guard = lock(&self.current);
        *guard = base;
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        self.epoch.store(next, Ordering::Release);
        next
    }
}

/// One worker's job deque plus the condvar its owner parks on.
#[derive(Debug, Default)]
struct WorkerQueue {
    deque: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

/// Counters that outlive a worker's current session: every time a
/// session is retired (epoch adoption or panic recovery) its tier and
/// probe counters are folded in here, so the pool's accounting stays
/// monotone across rebuilds — "total overlay nodes interned" means
/// exactly that, not "nodes the *current* sessions happen to hold".
#[derive(Debug, Clone, Copy, Default)]
struct RetiredTotals {
    sessions: u64,
    local_coercion_nodes: u64,
    local_type_nodes: u64,
    coercion_base_hits: u64,
    coercion_probes: u64,
    compose_base_hits: u64,
    compose_probes: u64,
    programs: u64,
}

impl RetiredTotals {
    fn absorb(&mut self, stats: &SessionStats) {
        self.sessions += 1;
        self.local_coercion_nodes += stats.tier.local_coercion_nodes as u64;
        self.local_type_nodes += stats.tier.local_type_nodes as u64;
        self.coercion_base_hits += stats.coercions.base_hits;
        self.coercion_probes += stats.coercions.node_hits + stats.coercions.node_misses;
        self.compose_base_hits += stats.compose.base_hits;
        self.compose_probes += stats.compose.hits + stats.compose.misses;
        self.programs += stats.programs as u64;
    }
}

/// One worker's published counters (refreshed after every job).
#[derive(Debug, Clone, Copy, Default)]
struct WorkerSlot {
    jobs: u64,
    steals: u64,
    panics: u64,
    slices: u64,
    preemptions: u64,
    deadline_misses: u64,
    cancellations: u64,
    parked_depth: usize,
    dead: bool,
    stats: Option<SessionStats>,
    retired: RetiredTotals,
}

/// A snapshot of one worker's accounting.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// The worker's index (stable for the pool's lifetime, across
    /// respawns).
    pub worker: usize,
    /// Jobs this worker has completed (including jobs that resolved
    /// to [`JobError::WorkerPanicked`]).
    pub jobs: u64,
    /// Jobs this worker claimed from a sibling's queue.
    pub steals: u64,
    /// Serve panics caught on this worker (each retired the session
    /// and respawned the worker).
    pub panics: u64,
    /// Scheduling turns executed: each ran one job for up to one
    /// slice budget of steps. Monotone across epoch rebuilds and
    /// respawns (slot-level, not session-level).
    pub slices: u64,
    /// Slices that ended with the job parked (preempted) rather than
    /// finished; `slices - preemptions` is the number of jobs whose
    /// final slice ran here. Monotone.
    pub preemptions: u64,
    /// Jobs resolved to [`JobError::DeadlineExceeded`] on this
    /// worker. Monotone.
    pub deadline_misses: u64,
    /// Canceled jobs whose worker-side state this worker discarded at
    /// a scheduling boundary. Monotone.
    pub cancellations: u64,
    /// Jobs parked mid-run in this worker's run queue at snapshot
    /// time (a gauge, like `queue_depth`).
    pub parked_depth: usize,
    /// Whether the worker is currently dead (its thread exited after
    /// a panic and no replacement has started yet — transiently true
    /// during a respawn, or permanently if the pool is shutting
    /// down).
    pub dead: bool,
    /// Jobs waiting in this worker's queue at snapshot time.
    pub queue_depth: usize,
    /// The worker's *current* session's consolidated stats — `None`
    /// until the session serves its first job (including right after
    /// an epoch adoption rebuilds it). Counters for retired sessions
    /// live on in the accessor methods below.
    pub session: Option<SessionStats>,
    retired: RetiredTotals,
}

impl WorkerStats {
    /// Sessions this worker has retired (epoch adoptions + panic
    /// recoveries).
    pub fn sessions_retired(&self) -> u64 {
        self.retired.sessions
    }

    /// Coercion nodes this worker has interned past its base,
    /// cumulative across every session it has run.
    pub fn local_coercion_nodes(&self) -> u64 {
        self.retired.local_coercion_nodes
            + self
                .session
                .map_or(0, |s| s.tier.local_coercion_nodes as u64)
    }

    /// Type nodes this worker has interned past its base, cumulative
    /// across every session it has run.
    pub fn local_type_nodes(&self) -> u64 {
        self.retired.local_type_nodes + self.session.map_or(0, |s| s.tier.local_type_nodes as u64)
    }

    /// Cumulative coercion-intern probes answered by a frozen base.
    pub fn coercion_base_hits(&self) -> u64 {
        self.retired.coercion_base_hits + self.session.map_or(0, |s| s.coercions.base_hits)
    }

    /// Cumulative coercion-intern probes (hits + misses, either
    /// tier).
    pub fn coercion_probes(&self) -> u64 {
        self.retired.coercion_probes
            + self
                .session
                .map_or(0, |s| s.coercions.node_hits + s.coercions.node_misses)
    }

    /// Cumulative compositions answered by a frozen pair table.
    pub fn compose_base_hits(&self) -> u64 {
        self.retired.compose_base_hits + self.session.map_or(0, |s| s.compose.base_hits)
    }

    /// Cumulative composition lookups (hits + misses).
    pub fn compose_probes(&self) -> u64 {
        self.retired.compose_probes
            + self
                .session
                .map_or(0, |s| s.compose.hits + s.compose.misses)
    }

    /// Programs lowered on this worker, cumulative across sessions.
    pub fn programs_lowered(&self) -> u64 {
        self.retired.programs + self.session.map_or(0, |s| s.programs as u64)
    }
}

/// Aggregated pool accounting: per-worker stats plus the sharing
/// roll-ups the acceptance tests assert on. All counters are
/// *cumulative across epochs*: retiring a session (promotion
/// adoption, panic recovery) folds its counters into its worker's
/// totals rather than dropping them.
///
/// # Consistency contract
///
/// [`SessionPool::stats`] takes one **coherent snapshot per call**:
/// every worker's slot is locked simultaneously before any counter is
/// read, and the queue depths are sampled while those locks are still
/// held — so the rows in [`PoolStats::workers`] describe the pool at
/// a single instant. In particular, a sum over workers (e.g.
/// [`PoolStats::jobs`]) can never mix one worker's pre-job state with
/// another's post-job state for jobs that were counted before the
/// call began. What the snapshot does *not* include is work in
/// flight: each worker publishes its counters at job boundaries, so a
/// job being served right now appears only in the in-flight depth
/// gauges, not yet in `jobs`. Two snapshots are ordered — every
/// monotone counter in the later one is ≥ its value in the earlier
/// one (asserted across promotions and respawns in `tests/obs.rs`).
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// The current base epoch (1 = the warmup base; +1 per
    /// promotion).
    pub epoch: u64,
    /// Overlay-to-base promotions published so far.
    pub promotions: u64,
    /// Cumulative wall-clock nanoseconds spent inside promotion
    /// (freeze-append + validation + publish), across every promotion
    /// since pool startup. Monotone across epoch rebuilds and
    /// respawns, like every other pool counter; divide by
    /// [`PoolStats::promotions`] for the mean cost of a hot-swap.
    pub promotion_ns: u64,
    /// Wall-clock nanoseconds of the most recent promotion (0 until
    /// the first one). With append-based freezing this should stay
    /// flat as the base grows — the E28 bench table asserts it.
    pub last_promotion_ns: u64,
    /// Workers respawned after a caught serve panic.
    pub respawns: u64,
    /// Per-worker snapshots, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total jobs completed across all workers.
    pub fn jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Jobs claimed from a sibling's queue, summed over workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Per-worker queue depths at snapshot time (same order as
    /// [`PoolStats::workers`]).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.queue_depth).collect()
    }

    /// Scheduling turns executed across all workers (each ran one job
    /// for up to one slice budget of steps). Monotone across epoch
    /// rebuilds, promotions, and respawns.
    pub fn slices(&self) -> u64 {
        self.workers.iter().map(|w| w.slices).sum()
    }

    /// Slices that ended parked (preempted) rather than finished,
    /// summed over workers. Monotone.
    pub fn preemptions(&self) -> u64 {
        self.workers.iter().map(|w| w.preemptions).sum()
    }

    /// Jobs that missed their deadline, summed over workers.
    /// Monotone.
    pub fn deadline_misses(&self) -> u64 {
        self.workers.iter().map(|w| w.deadline_misses).sum()
    }

    /// Canceled jobs discarded by workers, summed. Monotone.
    pub fn cancellations(&self) -> u64 {
        self.workers.iter().map(|w| w.cancellations).sum()
    }

    /// Per-worker parked-run-queue depths at snapshot time (same
    /// order as [`PoolStats::workers`]).
    pub fn parked_depths(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.parked_depth).collect()
    }

    /// Coercion nodes interned *past the base*, summed over workers
    /// and cumulative across epochs. Zero means the frozen base
    /// absorbed every coercion the whole pool ever needed.
    pub fn local_coercion_nodes(&self) -> u64 {
        self.workers.iter().map(|w| w.local_coercion_nodes()).sum()
    }

    /// Type nodes interned past the base, summed over workers and
    /// cumulative across epochs.
    pub fn local_type_nodes(&self) -> u64 {
        self.workers.iter().map(|w| w.local_type_nodes()).sum()
    }

    /// Coercion-intern probes answered by a frozen base, summed over
    /// workers (cumulative across epochs).
    pub fn coercion_base_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.coercion_base_hits()).sum()
    }

    /// Coercion-intern probes issued, summed over workers (cumulative
    /// across epochs).
    pub fn coercion_probes(&self) -> u64 {
        self.workers.iter().map(|w| w.coercion_probes()).sum()
    }

    /// Fraction of coercion-intern probes answered by the frozen base
    /// index, across all workers and epochs (1.0 = every probe hit a
    /// base).
    pub fn coercion_base_hit_rate(&self) -> f64 {
        self.coercion_base_hits() as f64 / self.coercion_probes().max(1) as f64
    }

    /// Fraction of compositions answered by a frozen pair table,
    /// across all workers and epochs.
    pub fn compose_base_hit_rate(&self) -> f64 {
        let base: u64 = self.workers.iter().map(|w| w.compose_base_hits()).sum();
        let total: u64 = self.workers.iter().map(|w| w.compose_probes()).sum();
        base as f64 / total.max(1) as f64
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} jobs across {} workers (epoch {}, {} promotions, {} steals, \
             {} respawns); {} slices ({} preemptions, {} deadline misses, \
             {} cancellations); {} local coercion nodes, {} local type nodes; \
             base hit rates: {:.3} interning / {:.3} compose",
            self.jobs(),
            self.workers.len(),
            self.epoch,
            self.promotions,
            self.steals(),
            self.respawns,
            self.slices(),
            self.preemptions(),
            self.deadline_misses(),
            self.cancellations(),
            self.local_coercion_nodes(),
            self.local_type_nodes(),
            self.coercion_base_hit_rate(),
            self.compose_base_hit_rate(),
        )?;
        for w in &self.workers {
            writeln!(
                f,
                "  worker {}: {} jobs ({} stolen), {} local coercions, {} local types, \
                 {} base intern hits, {} sessions retired, queue {}{}",
                w.worker,
                w.jobs,
                w.steals,
                w.local_coercion_nodes(),
                w.local_type_nodes(),
                w.coercion_base_hits(),
                w.sessions_retired(),
                w.queue_depth,
                if w.dead { " [dead]" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// Configures and builds a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct SessionPoolBuilder {
    workers: usize,
    compose_cache_capacity: usize,
    type_memo_capacity: usize,
    default_fuel: u64,
    warmup: Vec<String>,
    base: Option<Arc<FrozenBase>>,
    promotion: Option<PromotionPolicy>,
    slice: Option<SliceBudget>,
    queue_capacity: usize,
    observability: bool,
    audit_capacity: usize,
}

impl Default for SessionPoolBuilder {
    fn default() -> SessionPoolBuilder {
        SessionPoolBuilder {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            compose_cache_capacity: SessionBuilder::DEFAULT_COMPOSE_CACHE_CAPACITY,
            type_memo_capacity: SessionBuilder::DEFAULT_TYPE_MEMO_CAPACITY,
            default_fuel: SessionBuilder::DEFAULT_FUEL,
            warmup: Vec::new(),
            base: None,
            promotion: Some(PromotionPolicy::default()),
            slice: Some(SliceBudget::default()),
            queue_capacity: usize::MAX,
            observability: true,
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
        }
    }
}

impl SessionPoolBuilder {
    /// Number of worker threads (default: the machine's available
    /// parallelism).
    ///
    /// # Panics
    ///
    /// [`SessionPoolBuilder::build`] panics if the count is zero.
    pub fn workers(mut self, workers: usize) -> SessionPoolBuilder {
        self.workers = workers;
        self
    }

    /// Per-worker compose-cache pair cap (see
    /// [`SessionBuilder::compose_cache_capacity`]); the frozen base's
    /// pair table is not counted against it.
    pub fn compose_cache_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.compose_cache_capacity = capacity;
        self
    }

    /// Per-worker verdict-table cap (see
    /// [`SessionBuilder::type_memo_capacity`]).
    pub fn type_memo_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.type_memo_capacity = capacity;
        self
    }

    /// The step bound applied to jobs submitted without an explicit
    /// fuel (see [`SessionPool::submit_with_fuel`]).
    pub fn default_fuel(mut self, fuel: u64) -> SessionPoolBuilder {
        self.default_fuel = fuel;
        self
    }

    /// Sources compiled — and run on the λS machine, to warm the
    /// composition pairs — into the warmup session whose frozen state
    /// becomes the workers' shared base (epoch 1). Pick
    /// representatives of the traffic the pool will serve: shapes the
    /// warmup covered cost the workers zero local interning.
    pub fn warmup<I, S>(mut self, sources: I) -> SessionPoolBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.warmup.extend(sources.into_iter().map(Into::into));
        self
    }

    /// Starts the warmup session from an existing frozen base instead
    /// of empty (the warmup sources, if any, are layered on top and
    /// the combination re-frozen) — how a pool inherits yesterday's
    /// warm state.
    pub fn base(mut self, base: Arc<FrozenBase>) -> SessionPoolBuilder {
        self.base = Some(base);
        self
    }

    /// Sets the live-promotion policy (see [`PromotionPolicy`] for
    /// the default and its rationale).
    pub fn promotion(mut self, policy: PromotionPolicy) -> SessionPoolBuilder {
        self.promotion = Some(policy);
        self
    }

    /// Disables live base promotion: the pool serves its warmup epoch
    /// forever, and drifted traffic interns per worker, duplicated —
    /// the pre-promotion behaviour, kept for comparison benches and
    /// for bases managed externally.
    pub fn no_promotion(mut self) -> SessionPoolBuilder {
        self.promotion = None;
        self
    }

    /// Sets the per-turn step budget workers run each job for before
    /// preempting it (see [`SliceBudget`]
    /// for the default and its measured rationale). Smaller budgets
    /// tighten latency fairness under divergent jobs; larger ones
    /// approach unsliced behaviour.
    pub fn slice_budget(mut self, budget: SliceBudget) -> SessionPoolBuilder {
        self.slice = Some(budget);
        self
    }

    /// Disables timeslicing: every job runs to completion (or fuel
    /// exhaustion) in a single turn, pinning its worker — the
    /// pre-scheduler behaviour, kept for comparison benches.
    /// Deadlines and cancellation still work but are only checked
    /// when a job starts.
    pub fn no_slicing(mut self) -> SessionPoolBuilder {
        self.slice = None;
        self
    }

    /// Bounds each worker's standing work: a submission targeting a
    /// worker that already holds `capacity` unresolved jobs (queued,
    /// parked, or running) resolves immediately to
    /// [`JobError::Rejected`] with the observed depth. The check is
    /// an atomic reserve, so concurrent submitters cannot overshoot
    /// the bound. Default: unbounded (`usize::MAX`), the
    /// pre-backpressure behaviour.
    pub fn queue_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.queue_capacity = capacity;
        self
    }

    /// Disables the observability layer entirely: no metric
    /// registry, no per-job instrument updates, no audit records.
    /// [`SessionPool::metrics_text`] renders a one-line comment and
    /// [`SessionPool::audit_records`] returns nothing. Observability
    /// is **on by default** — its measured cost is ≤ 2% of mixed-batch
    /// throughput (bench table E29) — so this switch exists for
    /// overhead comparisons and for embedders running their own
    /// telemetry.
    pub fn no_observability(mut self) -> SessionPoolBuilder {
        self.observability = false;
        self
    }

    /// Bounds the audit ring: at most `capacity` undrained
    /// [`AuditRecord`]s are retained; beyond that the oldest is
    /// evicted (counted exactly — `bc_audit_dropped_total` in the
    /// exposition, [`SessionPool::audit_dropped`] in the API) and the
    /// emitting worker never blocks. Default: 8192. Clamped to ≥ 1.
    pub fn audit_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.audit_capacity = capacity;
        self
    }

    /// Builds the base (compiling and running the warmup sources) and
    /// spawns the workers.
    ///
    /// # Errors
    ///
    /// Returns the first warmup source's [`Diagnostic`] if one fails
    /// to compile. Warmup *runs* are best-effort: a warmup program
    /// exhausting its fuel still warmed the caches, so it is not an
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if the worker count is zero or a worker thread cannot
    /// be spawned.
    pub fn build(self) -> Result<SessionPool, Diagnostic> {
        assert!(self.workers > 0, "SessionPool needs at least 1 worker");
        let mut warm = Session::builder()
            .compose_cache_capacity(self.compose_cache_capacity)
            .type_memo_capacity(self.type_memo_capacity)
            .default_fuel(self.default_fuel);
        if let Some(base) = self.base {
            warm = warm.base(base);
        }
        let warm = warm.build();
        let mut compiled = HashMap::new();
        // Warmup runs exist to seed the compose cache, and a
        // space-efficient loop reaches its steady-state coercion
        // working set within its first iterations — so the bound is
        // small and *independent* of the pool's job fuel: a divergent
        // warmup source must not burn `default_fuel` at build time.
        // The unit here is machine *steps* — the same unit job fuel,
        // `SliceBudget`, and `Metrics::steps` count, one transition
        // each (the engines enforce the 1:1 accounting at their fuel
        // checks; see the invariant note in `bc_machine::cek_s`) — so
        // this cap, slice accounting, and fuel-exhaustion reports are
        // all directly comparable numbers.
        const WARMUP_RUN_FUEL: u64 = 64;
        for source in &self.warmup {
            let program = warm.compile(source)?;
            // Warm the compose pairs; outcome (including fuel
            // exhaustion) is irrelevant here. Every warmup source runs:
            // even one whose compile interned nothing new can reach
            // compose *pairs* no earlier program composed (same nodes,
            // different dynamic order), and a redundant run is pure
            // cache hits — microseconds at this fuel bound.
            let _ = warm.run_with_fuel(
                &program,
                Engine::MachineS,
                WARMUP_RUN_FUEL.min(self.default_fuel),
            );
            // Keep the compiled form: every id it references is about
            // to be frozen into the base, so workers can load it
            // without re-parsing (`SessionPool::submit_compiled`).
            let (session, coercion_watermark, type_watermark) = program.provenance();
            compiled.insert(
                source.clone(),
                Arc::new(CompiledProgram {
                    source: source.clone(),
                    term: program.lambda_b_compiled().clone(),
                    ty: program.ty_id(),
                    session,
                    coercion_watermark,
                    type_watermark,
                }),
            );
        }
        let base = warm.freeze();
        debug_assert!(
            compiled.values().all(|p| p.valid_against(&base)),
            "warmup payloads must be carried by the warmup's own freeze"
        );

        let shared = Arc::new(PoolShared {
            epoch: EpochBase::new(base),
            queues: (0..self.workers).map(|_| WorkerQueue::default()).collect(),
            slots: (0..self.workers)
                .map(|_| Mutex::new(WorkerSlot::default()))
                .collect(),
            inflight: (0..self.workers)
                .map(|_| Arc::new(AtomicUsize::new(0)))
                .collect(),
            handles: Mutex::new((0..self.workers).map(|_| None).collect()),
            open: AtomicBool::new(true),
            promoting: AtomicBool::new(false),
            promotions: AtomicU64::new(0),
            promotion_ns: AtomicU64::new(0),
            last_promotion_ns: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            jobs_since_promotion: AtomicU64::new(0),
            policy: self.promotion,
            compiled_provenance: compiled
                .values()
                .map(|p| (p.session, p.coercion_watermark, p.type_watermark))
                .collect(),
            compose_cache_capacity: self.compose_cache_capacity,
            type_memo_capacity: self.type_memo_capacity,
            default_fuel: self.default_fuel,
            // No slicing = a slice the fuel bound can never exceed:
            // `resume_slice` then finishes every job in one turn.
            slice_steps: self.slice.map_or(u64::MAX, SliceBudget::steps),
            queue_capacity: self.queue_capacity,
            obs: self
                .observability
                .then(|| PoolObs::new(self.workers, self.audit_capacity)),
        });
        for index in 0..self.workers {
            let handle = shared.spawn_worker(index);
            lock(&shared.handles)[index] = Some(handle);
        }
        Ok(SessionPool {
            shared,
            next: AtomicUsize::new(0),
            compiled,
            default_fuel: self.default_fuel,
        })
    }
}

/// Everything the workers and the pool handle share: the epoch cell,
/// the per-worker queues and slots, the promotion machinery, and the
/// session configuration respawns and rebuilds need.
#[derive(Debug)]
struct PoolShared {
    epoch: EpochBase,
    queues: Vec<WorkerQueue>,
    slots: Vec<Mutex<WorkerSlot>>,
    /// Per-worker in-flight job counts (accepted but unresolved:
    /// queued + parked + running) — the bounded-backpressure gauge.
    /// `Arc`ed so each job's completion cell can decrement its
    /// worker's counter exactly once, at resolution, wherever that
    /// happens.
    inflight: Vec<Arc<AtomicUsize>>,
    /// Worker join handles, indexed by worker; a dying worker writes
    /// its replacement's handle over its own before exiting.
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// False once shutdown starts: no new jobs, no respawns; workers
    /// drain every queue and exit.
    open: AtomicBool,
    /// Serialises promotions (freeze + validate + publish); never
    /// blocks submit or serving — a worker that loses the race just
    /// keeps serving and adopts the winner's epoch.
    promoting: AtomicBool,
    promotions: AtomicU64,
    /// Cumulative / most-recent promotion wall-clock cost (ns);
    /// snapshot into [`PoolStats::promotion_ns`] /
    /// [`PoolStats::last_promotion_ns`].
    promotion_ns: AtomicU64,
    last_promotion_ns: AtomicU64,
    respawns: AtomicU64,
    jobs_since_promotion: AtomicU64,
    policy: Option<PromotionPolicy>,
    /// Provenance of every warmup [`CompiledProgram`], re-validated
    /// against each candidate epoch before it is published.
    compiled_provenance: Vec<(u64, usize, usize)>,
    compose_cache_capacity: usize,
    type_memo_capacity: usize,
    default_fuel: u64,
    /// Steps per scheduling turn (`u64::MAX` when slicing is off).
    slice_steps: u64,
    /// Max unresolved jobs per worker before submissions reject.
    queue_capacity: usize,
    /// The observability bundle (`None` when the builder disabled
    /// it): instruments incremented at the same sites as the slot
    /// counters, plus the audit ring.
    obs: Option<PoolObs>,
}

/// The engine's audit-stream name, without a per-job `format!`
/// allocation pass (records are built once per job on the serving
/// path).
fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::LambdaB => "LambdaB",
        Engine::LambdaC => "LambdaC",
        Engine::LambdaS => "LambdaS",
        Engine::MachineB => "MachineB",
        Engine::MachineC => "MachineC",
        Engine::MachineS => "MachineS",
    }
}

/// The skeleton of a job's audit record, filled at a resolution site:
/// identity, timing, and shape are known here; steps, peaks, and
/// blame are patched in by the site that has them.
fn base_record(
    worker: usize,
    epoch: u64,
    job: &Job,
    queue_wait: Duration,
    outcome: AuditOutcome,
) -> AuditRecord {
    AuditRecord {
        seq: 0, // stamped by the sink
        worker,
        epoch,
        engine: engine_name(job.engine),
        outcome,
        blame_label: None,
        cast_site: None,
        steps: 0,
        peak_frames: 0,
        peak_cast_frames: 0,
        compiled: matches!(job.spec, JobSpec::Compiled(_)),
        latency_ns: ns(job.submitted.elapsed()),
        queue_wait_ns: ns(queue_wait),
        shape: bc_obs::shape_key(job.spec.key()),
    }
}

/// How long an idle worker parks before re-scanning sibling queues —
/// the steal-latency and lost-wakeup backstop (submits notify the
/// target worker directly; the timeout only matters when work lands
/// on a *busy* worker's queue while this one sleeps).
const IDLE_PARK: Duration = Duration::from_millis(1);

impl PoolShared {
    fn build_session(&self, base: Arc<FrozenBase>) -> Session {
        Session::builder()
            .base(base)
            .compose_cache_capacity(self.compose_cache_capacity)
            .type_memo_capacity(self.type_memo_capacity)
            .default_fuel(self.default_fuel)
            .build()
    }

    fn spawn_worker(self: &Arc<Self>, index: usize) -> JoinHandle<()> {
        let shared = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("bc-pool-worker-{index}"))
            .spawn(move || worker_loop(index, shared))
            .expect("spawn pool worker")
    }

    /// Claims the next job for `index`: own queue front, else steal
    /// from the back of the longest sibling queue, else park. `None`
    /// means the pool is closed and every queue has drained.
    fn next_job(&self, index: usize) -> Option<Job> {
        let mine = &self.queues[index];
        loop {
            if let Some(job) = lock(&mine.deque).pop_front() {
                return Some(job);
            }
            if let Some(job) = self.steal(index) {
                return Some(job);
            }
            if !self.open.load(Ordering::Acquire) {
                // Drain semantics: exit only once nothing is claimable
                // anywhere (a sibling may still be *serving*, but its
                // unclaimed jobs are visible in its queue).
                if self.queues.iter().all(|q| lock(&q.deque).is_empty()) {
                    return None;
                }
                continue;
            }
            let guard = lock(&mine.deque);
            if !guard.is_empty() {
                continue;
            }
            let (mut guard, _) = mine
                .ready
                .wait_timeout(guard, IDLE_PARK)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(job) = guard.pop_front() {
                return Some(job);
            }
        }
    }

    /// Steals one job from the back of the longest sibling queue.
    fn steal(&self, thief: usize) -> Option<Job> {
        let mut victim: Option<(usize, usize)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if i == thief {
                continue;
            }
            let depth = lock(&q.deque).len();
            if depth > 0 && victim.is_none_or(|(_, best)| depth > best) {
                victim = Some((i, depth));
            }
        }
        let (victim, _) = victim?;
        let job = lock(&self.queues[victim].deque).pop_back();
        if job.is_some() {
            lock(&self.slots[thief]).steals += 1;
            if let Some(obs) = &self.obs {
                obs.steals.inc();
            }
        }
        job
    }

    /// Non-blocking claim (own queue front, else a steal): how a
    /// worker with parked jobs checks for new intake without ever
    /// waiting — if nothing is immediately available it has slices to
    /// run instead.
    fn try_claim(&self, index: usize) -> Option<Job> {
        if let Some(job) = lock(&self.queues[index].deque).pop_front() {
            return Some(job);
        }
        self.steal(index)
    }

    /// Publishes a finished job into the worker's slot — *before* the
    /// reply, so a caller that observes a job as complete via its
    /// handle finds it counted in [`SessionPool::stats`] too. Every
    /// disposition counts as a job; misses and cancellations bump
    /// their own monotone counters on top.
    fn count_job(&self, index: usize, session: &Session, disposition: Disposition) {
        self.jobs_since_promotion.fetch_add(1, Ordering::Relaxed);
        let mut slot = lock(&self.slots[index]);
        slot.jobs += 1;
        match disposition {
            Disposition::Completed => {}
            Disposition::Canceled => slot.cancellations += 1,
            Disposition::DeadlineMissed => slot.deadline_misses += 1,
        }
        slot.stats = Some(session.stats());
    }

    /// Folds the session's counters into the worker's retired totals
    /// (called before the session is replaced or abandoned).
    fn retire(&self, index: usize, session: &Session) {
        let stats = session.stats();
        let mut slot = lock(&self.slots[index]);
        slot.retired.absorb(&stats);
        slot.stats = None;
        drop(slot);
        if let Some(obs) = &self.obs {
            obs.sessions_retired.inc();
        }
    }

    /// The cheap per-job promotion gate: policy thresholds on this
    /// worker's own session, then the fattest-overlay check against
    /// the other workers' published slots.
    fn should_promote(&self, index: usize, session: &Session) -> bool {
        let Some(policy) = &self.policy else {
            return false;
        };
        if self.jobs_since_promotion.load(Ordering::Relaxed) < policy.min_interval_jobs {
            return false;
        }
        let stats = session.stats();
        let local = stats.tier.local_coercion_nodes + stats.tier.local_type_nodes;
        if local < policy.min_local_nodes {
            return false;
        }
        let probes = stats.coercions.node_hits + stats.coercions.node_misses;
        let miss_rate = 1.0 - stats.coercions.base_hits as f64 / probes.max(1) as f64;
        if probes > 0 && miss_rate < policy.min_miss_rate {
            return false;
        }
        // Freeze the fattest overlay: if some other worker's published
        // overlay is fatter, leave promotion to it (its next job
        // boundary will get here). Published slots lag by at most one
        // job per worker, so a fatter-looking-but-stale slot delays
        // promotion by a bounded number of jobs, never blocks it.
        self.slots.iter().enumerate().all(|(i, s)| {
            i == index
                || lock(s).stats.is_none_or(|other| {
                    other.tier.local_coercion_nodes + other.tier.local_type_nodes <= local
                })
        })
    }

    /// Freezes `session` and publishes it as the next epoch, unless a
    /// concurrent promotion got there first. Returns the new epoch
    /// pair for the promoting worker to adopt. Job intake is never
    /// paused: only the promoting worker spends time here, and
    /// submits/steals proceed against the per-worker queues
    /// throughout.
    fn promote(
        &self,
        epoch_seen: u64,
        old: &Arc<FrozenBase>,
        session: &Session,
    ) -> Option<(u64, Arc<FrozenBase>)> {
        if self.promoting.swap(true, Ordering::AcqRel) {
            return None;
        }
        let started = Instant::now();
        let published = (|| {
            // Lost the race: someone published while this worker was
            // deciding; adopt theirs instead of stacking a promotion
            // from a stale overlay.
            if self.epoch.epoch() != epoch_seen {
                return None;
            }
            let next = session.freeze();
            debug_assert!(
                next.extends(old),
                "a promoted epoch must extend the epoch it was grown over"
            );
            // Re-validate the warmup's compiled payloads: the new
            // base must carry every id they reference, or the
            // no-recheck adopt path would be unsound after the swap.
            // Guaranteed by the extension property; checked for real
            // because publishing an invalid base is the one mistake
            // the pool could never recover from.
            if !self
                .compiled_provenance
                .iter()
                .all(|&(s, c, t)| next.inherits(s, c, t))
            {
                return None;
            }
            let epoch = self.epoch.publish(Arc::clone(&next));
            let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.promotion_ns.fetch_add(elapsed, Ordering::Relaxed);
            self.last_promotion_ns.store(elapsed, Ordering::Relaxed);
            self.promotions.fetch_add(1, Ordering::Relaxed);
            self.jobs_since_promotion.store(0, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.promotions.inc();
            }
            Some((epoch, next))
        })();
        self.promoting.store(false, Ordering::Release);
        published
    }

    /// Spawns a replacement worker after a caught panic (unless the
    /// pool is shutting down, in which case siblings drain the dead
    /// worker's queue).
    fn respawn(self: &Arc<Self>, index: usize) {
        if !self.open.load(Ordering::Acquire) {
            return;
        }
        let handle = self.spawn_worker(index);
        self.respawns.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.respawns.inc();
        }
        // Overwrites the dying worker's own handle: it is past
        // everything observable and exits right after this call, so
        // nothing is lost by detaching it.
        lock(&self.handles)[index] = Some(handle);
    }
}

/// Overwrites an audit record's default (`CompileError`) outcome with
/// the one a [`JobError`] actually denotes, plus whatever accounting
/// the error carries.
fn patch_error(record: &mut AuditRecord, err: &JobError) {
    match err {
        JobError::Compile(_) => record.outcome = AuditOutcome::CompileError,
        JobError::Run(e) => patch_run_error(record, e),
        // The remaining variants never reach a worker's resolution
        // sites (they resolve on the submitter's side or in `die`).
        _ => {}
    }
}

/// Fills an audit record from a run error: fuel exhaustion carries
/// real step and peak-frame accounting (the cutoff metrics are what
/// make λB/λC space leaks measurable on diverging programs).
fn patch_run_error(record: &mut AuditRecord, err: &RunError) {
    match err {
        RunError::FuelExhausted { steps, metrics } => {
            record.outcome = AuditOutcome::FuelExhausted;
            record.steps = *steps;
            if let Some(m) = metrics {
                record.peak_frames = m.peak_frames as u64;
                record.peak_cast_frames = m.peak_cast_frames as u64;
            }
        }
        RunError::IllTyped(_) => record.outcome = AuditOutcome::IllTyped,
    }
}

/// One worker: a private overlay [`Session`] over the current epoch's
/// base, a run queue of parked jobs, and a scheduling loop that
/// interleaves intake with round-robin timeslicing until the pool
/// closes, every queue drains, and every parked job finishes.
///
/// Each loop turn does at most one intake claim (blocking only when
/// nothing is parked — an idle worker parks on its condvar exactly
/// like the pre-slicing loop) and one slice of the run queue's head.
/// A 64-job batch with divergent spinners therefore finishes its
/// convergent jobs in a bounded number of turns: a spinner gets one
/// slice per rotation, never the whole worker.
fn worker_loop(index: usize, shared: Arc<PoolShared>) {
    lock(&shared.slots[index]).dead = false;
    let (mut epoch, mut base) = shared.epoch.load();
    let mut session = shared.build_session(Arc::clone(&base));
    // The worker-local program cache: one lowered Program per distinct
    // job key. Programs hold session-bound ids, so the cache lives and
    // dies with the current session; it is what makes a repeated job
    // (compiled or source) a pure lookup — zero parsing, zero
    // lowering.
    let mut programs: HashMap<String, crate::session::Program> = HashMap::new();
    let mut run_queue: VecDeque<ParkedEntry> = VecDeque::new();
    loop {
        let incoming = if run_queue.is_empty() {
            match shared.next_job(index) {
                Some(job) => Some(job),
                // Closed, every queue drained, nothing parked: done.
                None => return,
            }
        } else {
            shared.try_claim(index)
        };
        if let Some(job) = incoming {
            // The job is claimed: everything before this instant was
            // queueing (dispatch, standing in a deque, being stolen).
            let queue_wait = job.submitted.elapsed();
            if let Some(obs) = &shared.obs {
                obs.queue_wait.record(ns(queue_wait));
            }
            // Epoch adoption happens only with an empty run queue:
            // parked runs hold ids interned in the current session,
            // which an adoption would rebuild. A parked spinner thus
            // delays its worker's adoption until it finishes or
            // exhausts its fuel — bounded by the fuel bound, never
            // forever. The old base's Arc drops with the retired
            // session — epochs drain, they are never collected.
            if run_queue.is_empty() {
                if let Some((e, b)) = shared.epoch.refresh(epoch) {
                    shared.retire(index, &session);
                    (epoch, base) = (e, b);
                    session = shared.build_session(Arc::clone(&base));
                    programs.clear();
                }
            }
            if job.reply.is_canceled() {
                // Canceled while queued: the handle resolved when the
                // submitter canceled; drop the worker's side here.
                shared.count_job(index, &session, Disposition::Canceled);
                if let Some(obs) = &shared.obs {
                    obs.resolved(base_record(
                        index,
                        epoch,
                        &job,
                        queue_wait,
                        AuditOutcome::Canceled,
                    ));
                }
            } else if job.expired() {
                shared.count_job(index, &session, Disposition::DeadlineMissed);
                if let Some(obs) = &shared.obs {
                    obs.resolved(base_record(
                        index,
                        epoch,
                        &job,
                        queue_wait,
                        AuditOutcome::DeadlineExceeded,
                    ));
                }
                job.reply.resolve(Err(JobError::DeadlineExceeded {
                    steps: 0,
                    elapsed: job.submitted.elapsed(),
                }));
            } else {
                // Admission is the first unwind boundary: it runs
                // job-determined work (parsing, elaboration,
                // lowering). AssertUnwindSafe is sound because
                // everything the closure touches is discarded on
                // panic (session, program cache, and parked runs die
                // with this worker; the replacement starts fresh over
                // the current epoch).
                let admitted = catch_unwind(AssertUnwindSafe(|| {
                    admit(&session, &mut programs, &base, &job)
                }));
                match admitted {
                    Ok(Ok((run, compiled))) => run_queue.push_back(ParkedEntry {
                        job,
                        run,
                        compiled,
                        queue_wait,
                    }),
                    Ok(Err(err)) => {
                        shared.count_job(index, &session, Disposition::Completed);
                        if let Some(obs) = &shared.obs {
                            let mut record = base_record(
                                index,
                                epoch,
                                &job,
                                queue_wait,
                                AuditOutcome::CompileError,
                            );
                            patch_error(&mut record, &err);
                            obs.resolved(record);
                        }
                        job.reply.resolve(Err(err));
                        if run_queue.is_empty() {
                            adopt_if_promoted(
                                &shared,
                                index,
                                &mut epoch,
                                &mut base,
                                &mut session,
                                &mut programs,
                            );
                        }
                    }
                    Err(_) => {
                        die(&shared, index, &session, job, queue_wait, run_queue);
                        return;
                    }
                }
            }
        }
        // One scheduling turn: slice the head of the run queue; a job
        // parked again goes to the back (round-robin — every parked
        // job advances one slice per rotation).
        if let Some(entry) = run_queue.pop_front() {
            let ParkedEntry {
                job,
                run,
                compiled,
                queue_wait,
            } = entry;
            if job.reply.is_canceled() {
                shared.count_job(index, &session, Disposition::Canceled);
                if let Some(obs) = &shared.obs {
                    let mut record =
                        base_record(index, epoch, &job, queue_wait, AuditOutcome::Canceled);
                    record.steps = run.steps();
                    obs.resolved(record);
                }
            } else if job.expired() {
                let steps = run.steps();
                shared.count_job(index, &session, Disposition::DeadlineMissed);
                if let Some(obs) = &shared.obs {
                    let mut record = base_record(
                        index,
                        epoch,
                        &job,
                        queue_wait,
                        AuditOutcome::DeadlineExceeded,
                    );
                    record.steps = steps;
                    obs.resolved(record);
                }
                job.reply.resolve(Err(JobError::DeadlineExceeded {
                    steps,
                    elapsed: job.submitted.elapsed(),
                }));
            } else {
                // The slice is the other unwind boundary (machine
                // steps run job-determined work too).
                let sliced = catch_unwind(AssertUnwindSafe(|| {
                    session.resume_slice(run, shared.slice_steps)
                }));
                match sliced {
                    Ok(SliceOutcome::Done(result)) => {
                        lock(&shared.slots[index]).slices += 1;
                        shared.count_job(index, &session, Disposition::Completed);
                        let elapsed = job.submitted.elapsed();
                        if let Some(obs) = &shared.obs {
                            obs.slices.inc();
                            let mut record =
                                base_record(index, epoch, &job, queue_wait, AuditOutcome::Value);
                            record.compiled = compiled;
                            match &result {
                                Ok(report) => {
                                    record.steps = report.steps;
                                    if let Some(m) = &report.metrics {
                                        record.peak_frames = m.peak_frames as u64;
                                        record.peak_cast_frames = m.peak_cast_frames as u64;
                                    }
                                    if let Observation::Blame(label) = &report.observation {
                                        record.outcome = AuditOutcome::Blame;
                                        record.blame_label = Some(label.to_string());
                                        record.cast_site = Some(label.id());
                                    }
                                }
                                Err(err) => patch_run_error(&mut record, err),
                            }
                            obs.resolved(record);
                        }
                        let result = result
                            .map(|report| JobOutput {
                                observation: report.observation,
                                steps: report.steps,
                                metrics: report.metrics,
                                worker: index,
                                compiled,
                                elapsed,
                            })
                            .map_err(JobError::Run);
                        job.reply.resolve(result);
                        if run_queue.is_empty() {
                            adopt_if_promoted(
                                &shared,
                                index,
                                &mut epoch,
                                &mut base,
                                &mut session,
                                &mut programs,
                            );
                        }
                    }
                    Ok(SliceOutcome::Parked(run)) => {
                        {
                            let mut slot = lock(&shared.slots[index]);
                            slot.slices += 1;
                            slot.preemptions += 1;
                        }
                        if let Some(obs) = &shared.obs {
                            obs.slices.inc();
                            obs.preemptions.inc();
                        }
                        run_queue.push_back(ParkedEntry {
                            job,
                            run,
                            compiled,
                            queue_wait,
                        });
                    }
                    Err(_) => {
                        die(&shared, index, &session, job, queue_wait, run_queue);
                        return;
                    }
                }
            }
        }
        lock(&shared.slots[index]).parked_depth = run_queue.len();
    }
}

/// The caught-panic exit path: types the panicking job, retires the
/// session, hands the surviving parked jobs back to the queue (their
/// runs died with the session — the replacement restarts them from
/// step zero by spec, at-least-once for a language with no side
/// effects to repeat), and respawns.
fn die(
    shared: &Arc<PoolShared>,
    index: usize,
    session: &Session,
    job: Job,
    queue_wait: Duration,
    run_queue: VecDeque<ParkedEntry>,
) {
    shared.retire(index, session);
    {
        let mut slot = lock(&shared.slots[index]);
        slot.jobs += 1;
        slot.panics += 1;
        slot.dead = true;
        slot.parked_depth = 0;
    }
    if let Some(obs) = &shared.obs {
        obs.resolved(base_record(
            index,
            shared.epoch.epoch(),
            &job,
            queue_wait,
            AuditOutcome::WorkerPanicked,
        ));
    }
    job.reply.resolve(Err(JobError::WorkerPanicked));
    if !run_queue.is_empty() {
        let queue = &shared.queues[index];
        {
            let mut deque = lock(&queue.deque);
            for entry in run_queue {
                deque.push_back(entry.job);
            }
        }
        queue.ready.notify_one();
    }
    shared.respawn(index);
}

/// The promotion gate + adoption, shared by every completion site.
/// Callers only reach here with an empty run queue (adoption rebuilds
/// the session that parked runs reference).
fn adopt_if_promoted(
    shared: &PoolShared,
    index: usize,
    epoch: &mut u64,
    base: &mut Arc<FrozenBase>,
    session: &mut Session,
    programs: &mut HashMap<String, crate::session::Program>,
) {
    if shared.should_promote(index, session) {
        if let Some((e, b)) = shared.promote(*epoch, base, session) {
            // The promoting worker adopts its own epoch at once — its
            // overlay *is* the new base.
            shared.retire(index, session);
            (*epoch, *base) = (e, b);
            *session = shared.build_session(Arc::clone(base));
            programs.clear();
        }
    }
}

/// Bound on the worker-local program cache; beyond it the cache is
/// dropped wholesale (recompiling is always safe — the arenas stay
/// warm, so a re-lower interns nothing).
const WORKER_PROGRAM_CACHE_CAP: usize = 1024;

/// Admits one job: resolves the program (worker cache → compiled
/// payload → source compile) and starts a resumable run parked at
/// step zero — no machine steps run here; the scheduling loop doles
/// those out in slices.
fn admit(
    session: &Session,
    programs: &mut HashMap<String, crate::session::Program>,
    base: &Arc<FrozenBase>,
    job: &Job,
) -> Result<(PausedRun, bool), JobError> {
    if matches!(job.spec, JobSpec::Poison) {
        panic!("deliberate pool fault injection (JobSpec::Poison)");
    }
    let mut compiled = false;
    let key = job.spec.key();
    if !programs.contains_key(key) {
        let program = match &job.spec {
            // Pool-made `CompiledProgram`s were elaborated and checked
            // by warmup itself before the freeze, so the worker skips
            // the λB re-check and goes straight to lowering — every
            // intern, normalisation, and compose a base-covered term
            // needs is already frozen, so this is memo lookups only.
            // The provenance check keeps the trust honest across
            // epoch swaps (promotion preserves it by extension; a
            // mismatch falls back to the bundled source).
            JobSpec::Compiled(p) if p.valid_against(base) => {
                compiled = true;
                session.load_compiled_trusted(p.term.clone(), p.ty)
            }
            JobSpec::Compiled(p) => session.compile(&p.source).map_err(JobError::Compile)?,
            JobSpec::Source(source) => session.compile(source).map_err(JobError::Compile)?,
            JobSpec::Poison => unreachable!("poison panics before program resolution"),
        };
        if programs.len() >= WORKER_PROGRAM_CACHE_CAP {
            programs.clear();
        }
        programs.insert(key.to_owned(), program);
    } else {
        compiled = matches!(job.spec, JobSpec::Compiled(_));
    }
    let program = &programs[key];
    let fuel = job.fuel.unwrap_or_else(|| session.default_fuel());
    let run = session
        .start_run(program, job.engine, fuel)
        .map_err(JobError::Run)?;
    Ok((run, compiled))
}

/// A multi-threaded serving pool: N worker threads, each with a
/// private overlay [`Session`] over the current epoch's shared
/// [`FrozenBase`], each draining its own work-stealing deque.
///
/// See the [module docs](self) for the epoch lifecycle and an
/// example.
#[derive(Debug)]
pub struct SessionPool {
    shared: Arc<PoolShared>,
    /// Round-robin dispatch cursor.
    next: AtomicUsize,
    /// The warmup's compiled programs, keyed by their source text:
    /// the payloads [`SessionPool::submit_compiled`] ships and
    /// [`SessionPool::submit`] upgrades matching submissions to.
    compiled: HashMap<String, Arc<CompiledProgram>>,
    default_fuel: u64,
}

impl SessionPool {
    /// Starts configuring a pool.
    pub fn builder() -> SessionPoolBuilder {
        SessionPoolBuilder::default()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// The current epoch's frozen base (a fresh `Arc` clone: the pool
    /// may publish a newer epoch at any time, so the base is a
    /// snapshot, not a stable reference).
    pub fn base(&self) -> Arc<FrozenBase> {
        self.shared.epoch.load().1
    }

    /// The current base epoch (1 = the warmup base; +1 per
    /// promotion).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.epoch()
    }

    /// The step bound applied to jobs submitted without explicit
    /// fuel.
    pub fn default_fuel(&self) -> u64 {
        self.default_fuel
    }

    /// Total jobs currently waiting in worker queues (excludes jobs
    /// parked in run queues or being served right now — for the full
    /// standing-work signal, the pool enforces
    /// [`SessionPoolBuilder::queue_capacity`] against the per-worker
    /// in-flight counts and rejects with [`JobError::Rejected`]).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queues
            .iter()
            .map(|q| lock(&q.deque).len())
            .sum()
    }

    /// Per-worker queue depths (index = worker). Imbalance here is
    /// what the work-stealing path erases; sustained imbalance means
    /// one worker is pinned by a long job.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|q| lock(&q.deque).len())
            .collect()
    }

    /// Submits one compile+run job, dispatched round-robin (idle
    /// workers steal it if its assigned worker is busy).
    ///
    /// If `source` is byte-for-byte one of the warmup sources, the job
    /// is upgraded to the compiled path automatically: the worker
    /// receives the warmup's interned λB term and never re-parses.
    pub fn submit(&self, source: impl Into<String>, engine: Engine) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, None, None)
    }

    /// [`SessionPool::submit`] with an explicit step bound.
    pub fn submit_with_fuel(
        &self,
        source: impl Into<String>,
        engine: Engine,
        fuel: u64,
    ) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, Some(fuel), None)
    }

    /// [`SessionPool::submit`] with a wall-clock deadline: a job that
    /// has not finished when it passes resolves to
    /// [`JobError::DeadlineExceeded`] at its next scheduling boundary
    /// (so enforcement lags the deadline by at most one slice plus
    /// queueing on the worker's run queue).
    pub fn submit_with_deadline(
        &self,
        source: impl Into<String>,
        engine: Engine,
        deadline: Deadline,
    ) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, None, Some(deadline))
    }

    /// The fully-explicit submission: step bound and/or deadline.
    pub fn submit_with_options(
        &self,
        source: impl Into<String>,
        engine: Engine,
        fuel: Option<u64>,
        deadline: Option<Deadline>,
    ) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, fuel, deadline)
    }

    /// Submits a batch of jobs, returning one handle per source (in
    /// submission order; completion order is up to the workers). Each
    /// source gets the same compiled-path upgrade as
    /// [`SessionPool::submit`].
    pub fn submit_batch<I, S>(&self, sources: I, engine: Engine) -> Vec<JobHandle>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        sources
            .into_iter()
            .map(|s| self.submit_job(self.spec_for(s.into()), engine, None, None))
            .collect()
    }

    /// Submits a warmup source by name as a compiled job — the
    /// explicit form of the upgrade [`SessionPool::submit`] applies:
    /// the worker loads the warmup's interned λB term
    /// ([`Session::load_compiled`]) instead of parsing. Returns `None`
    /// if `source` was not among the pool's warmup sources (nothing
    /// compiled exists to ship — use [`SessionPool::submit`], which
    /// compiles on the worker).
    pub fn submit_compiled(&self, source: &str, engine: Engine) -> Option<JobHandle> {
        let program = self.compiled.get(source)?;
        Some(self.submit_job(JobSpec::Compiled(Arc::clone(program)), engine, None, None))
    }

    /// [`SessionPool::submit_compiled`] with an explicit step bound.
    pub fn submit_compiled_with_fuel(
        &self,
        source: &str,
        engine: Engine,
        fuel: u64,
    ) -> Option<JobHandle> {
        let program = self.compiled.get(source)?;
        Some(self.submit_job(
            JobSpec::Compiled(Arc::clone(program)),
            engine,
            Some(fuel),
            None,
        ))
    }

    /// Test-only fault injection: submits a job whose serve panics
    /// inside the worker, exercising the catch-unwind, dead-marking,
    /// and respawn path end to end. Hidden rather than `cfg(test)`
    /// so integration tests and fault-injection drills can reach it.
    #[doc(hidden)]
    pub fn submit_poison(&self) -> JobHandle {
        self.submit_job(JobSpec::Poison, Engine::MachineS, None, None)
    }

    /// The warmup sources with a compiled program ready to ship
    /// (the keys [`SessionPool::submit_compiled`] accepts).
    pub fn compiled_sources(&self) -> impl Iterator<Item = &str> {
        self.compiled.keys().map(String::as_str)
    }

    /// Upgrades a source submission to the compiled path when the
    /// warmup compiled exactly this text.
    fn spec_for(&self, source: String) -> JobSpec {
        match self.compiled.get(&source) {
            Some(program) => JobSpec::Compiled(Arc::clone(program)),
            None => JobSpec::Source(source),
        }
    }

    fn submit_job(
        &self,
        spec: JobSpec,
        engine: Engine,
        fuel: Option<u64>,
        deadline: Option<Deadline>,
    ) -> JobHandle {
        // A closed pool answers Lost immediately — the honest answer.
        if !self.shared.open.load(Ordering::Acquire) {
            return JobHandle {
                state: JobState::resolved(Err(JobError::Lost)),
            };
        }
        let target = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        // Bounded backpressure: atomically reserve a slot in the
        // target worker's in-flight count (queued + parked + running)
        // or reject without ever touching a queue. The reservation is
        // released exactly once, when the job's completion cell
        // resolves — wherever and however that happens.
        let inflight = &self.shared.inflight[target];
        let capacity = self.shared.queue_capacity;
        let reserved = inflight.fetch_update(Ordering::AcqRel, Ordering::Acquire, |depth| {
            (depth < capacity).then_some(depth + 1)
        });
        if let Err(depth) = reserved {
            if let Some(obs) = &self.shared.obs {
                // Rejected jobs never became a `Job`; audit them here
                // (zero steps, zero waits — they were refused at the
                // door), so `bc_jobs_total` sums to submissions.
                obs.resolved(AuditRecord {
                    seq: 0,
                    worker: target,
                    epoch: self.shared.epoch.epoch(),
                    engine: engine_name(engine),
                    outcome: AuditOutcome::Rejected,
                    blame_label: None,
                    cast_site: None,
                    steps: 0,
                    peak_frames: 0,
                    peak_cast_frames: 0,
                    compiled: matches!(spec, JobSpec::Compiled(_)),
                    latency_ns: 0,
                    queue_wait_ns: 0,
                    shape: bc_obs::shape_key(spec.key()),
                });
            }
            return JobHandle {
                state: JobState::resolved(Err(JobError::Rejected { queue_depth: depth })),
            };
        }
        let state = JobState::new(Some(Arc::clone(inflight)));
        let job = Job {
            spec,
            engine,
            fuel,
            reply: ReplySlot::new(Arc::clone(&state)),
            deadline,
            submitted: Instant::now(),
        };
        let queue = &self.shared.queues[target];
        lock(&queue.deque).push_back(job);
        queue.ready.notify_one();
        JobHandle { state }
    }

    /// A coherent snapshot of the pool accounting — see the
    /// [consistency contract](PoolStats#consistency-contract) on
    /// [`PoolStats`]. Each worker republishes its counters after
    /// every job, so in-flight jobs are not yet counted.
    ///
    /// The snapshot holds every worker slot's lock at once for the
    /// read (deadlock-free: no worker-side path acquires a second
    /// pool lock while holding a slot or deque lock), so calling this
    /// stalls each worker's *accounting* publish for the duration of
    /// one copy per worker, never its serving.
    pub fn stats(&self) -> PoolStats {
        let slots: Vec<MutexGuard<'_, WorkerSlot>> = self.shared.slots.iter().map(lock).collect();
        let queue_depths: Vec<usize> = self
            .shared
            .queues
            .iter()
            .map(|q| lock(&q.deque).len())
            .collect();
        PoolStats {
            epoch: self.shared.epoch.epoch(),
            promotions: self.shared.promotions.load(Ordering::Relaxed),
            promotion_ns: self.shared.promotion_ns.load(Ordering::Relaxed),
            last_promotion_ns: self.shared.last_promotion_ns.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            workers: slots
                .iter()
                .zip(queue_depths)
                .enumerate()
                .map(|(worker, (slot, queue_depth))| WorkerStats {
                    worker,
                    jobs: slot.jobs,
                    steals: slot.steals,
                    panics: slot.panics,
                    slices: slot.slices,
                    preemptions: slot.preemptions,
                    deadline_misses: slot.deadline_misses,
                    cancellations: slot.cancellations,
                    parked_depth: slot.parked_depth,
                    dead: slot.dead,
                    queue_depth,
                    session: slot.stats,
                    retired: slot.retired,
                })
                .collect(),
        }
    }

    /// Renders the pool's metrics as a Prometheus-style text
    /// exposition: `bc_jobs_total{outcome="…"}`, the
    /// `bc_job_latency_ns` and `bc_job_queue_wait_ns` histograms, the
    /// scheduler counters (`bc_slices_total`, `bc_preemptions_total`,
    /// `bc_steals_total`, `bc_promotions_total`, `bc_respawns_total`,
    /// `bc_sessions_retired_total`, `bc_audit_dropped_total`), and the
    /// polled gauges (`bc_epoch`, `bc_workers`, per-worker
    /// `bc_queue_depth` / `bc_parked_depth`, and the cumulative
    /// `bc_coercion_base_hit_rate` / `bc_compose_base_hit_rate`).
    /// Gauges are refreshed from one coherent [`SessionPool::stats`]
    /// snapshot at render time; counters and histograms read their
    /// live cells.
    ///
    /// With [`SessionPoolBuilder::no_observability`] the exposition
    /// is a single comment line.
    pub fn metrics_text(&self) -> String {
        match &self.shared.obs {
            Some(obs) => obs.render(&self.stats()),
            None => "# observability disabled (SessionPoolBuilder::no_observability)\n".to_owned(),
        }
    }

    /// Drains the audit stream: every buffered [`AuditRecord`]
    /// (oldest first), leaving the ring empty. Records evicted
    /// between drains are counted by [`SessionPool::audit_dropped`],
    /// never silently lost. Empty when observability is off.
    pub fn audit_records(&self) -> Vec<AuditRecord> {
        self.shared
            .obs
            .as_ref()
            .map_or_else(Vec::new, |obs| obs.sink().drain())
    }

    /// Audit records evicted from the ring without being drained
    /// (exact — the overload accounting is deterministic: emitted =
    /// drained + buffered + dropped).
    pub fn audit_dropped(&self) -> u64 {
        self.shared
            .obs
            .as_ref()
            .map_or(0, |obs| obs.sink().dropped())
    }

    /// Drains the audit stream into `out` as JSON lines, returning
    /// how many records were written (0, without touching `out`, when
    /// observability is off).
    ///
    /// # Errors
    ///
    /// Propagates the writer's error (see
    /// [`AuditSink::drain_to`](bc_obs::AuditSink::drain_to)).
    pub fn drain_audit_to(&self, out: &mut dyn std::io::Write) -> std::io::Result<usize> {
        self.shared
            .obs
            .as_ref()
            .map_or(Ok(0), |obs| obs.sink().drain_to(out))
    }

    /// Graceful shutdown: closes intake, lets the workers drain every
    /// already-submitted job (stealing covers queues whose owner
    /// died), joins them, and returns the final accounting.
    ///
    /// # Panics
    ///
    /// Propagates a worker thread's panic (job-level panics are
    /// caught and typed as [`JobError::WorkerPanicked`]; a panic that
    /// escapes the worker loop itself is an internal bug).
    pub fn shutdown(self) -> PoolStats {
        if let Some(panic) = self.close_and_join() {
            std::panic::resume_unwind(panic);
        }
        self.stats()
    }

    /// Closes intake and joins every worker thread — looping, because
    /// a worker dying mid-drain may have installed a replacement
    /// handle while we were joining. Returns the first join panic.
    fn close_and_join(&self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        self.shared.open.store(false, Ordering::Release);
        for queue in &self.shared.queues {
            queue.ready.notify_all();
        }
        let mut first_panic = None;
        loop {
            let batch: Vec<JoinHandle<()>> = lock(&self.shared.handles)
                .iter_mut()
                .filter_map(Option::take)
                .collect();
            if batch.is_empty() {
                return first_panic;
            }
            for handle in batch {
                if let Err(panic) = handle.join() {
                    first_panic.get_or_insert(panic);
                }
            }
        }
    }
}

impl Drop for SessionPool {
    /// Dropping the pool shuts it down gracefully too (close intake,
    /// drain, join the workers), minus the final stats; worker panics
    /// are swallowed here — use [`SessionPool::shutdown`] to surface
    /// them.
    fn drop(&mut self) {
        let _ = self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source whose ascription tower grows with `depth`, so each
    /// deeper compile interns strictly more type and coercion nodes.
    fn tower(depth: usize) -> String {
        let mut ty = String::from("Int");
        for _ in 0..depth {
            ty = format!("Int -> ({ty})");
        }
        format!("let f = ((fun x => x) : ?) in let g = (f : {ty}) in 1")
    }

    /// The torn-base unit test: concurrent readers doing epoch-cached
    /// `refresh` loops against a publisher hot-swapping bases must
    /// only ever see (epoch, base) pairs that belong together, with
    /// epochs observed in monotone order.
    #[test]
    fn epoch_reads_are_never_torn() {
        // One growing session, frozen after each tower: base i+1
        // strictly extends base i, and node counts identify epochs.
        let session = Session::builder().build();
        let mut bases = Vec::new();
        for depth in 1..=6 {
            session.compile(&tower(depth)).expect("tower compiles");
            bases.push(session.freeze());
        }
        // expected[e] = the node counts of the base published as
        // epoch e (epoch 1 = bases[0]).
        let expected: Vec<(usize, usize)> = bases
            .iter()
            .map(|b| (b.coercion_nodes(), b.type_nodes()))
            .collect();

        let cell = Arc::new(EpochBase::new(Arc::clone(&bases[0])));
        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let done = Arc::clone(&done);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let (mut seen, mut base) = cell.load();
                    let mut observed = 1usize;
                    while !done.load(Ordering::Acquire) {
                        if let Some((epoch, next)) = cell.refresh(seen) {
                            assert!(epoch > seen, "epochs must advance monotonically");
                            seen = epoch;
                            base = next;
                            observed += 1;
                        }
                        // The pair must always belong together — a
                        // torn read would pair a new epoch number
                        // with an old snapshot (or vice versa).
                        assert_eq!(
                            (base.coercion_nodes(), base.type_nodes()),
                            expected[(seen - 1) as usize],
                            "epoch {seen} paired with the wrong base"
                        );
                    }
                    observed
                })
            })
            .collect();
        for next in &bases[1..] {
            std::thread::sleep(Duration::from_millis(2));
            cell.publish(Arc::clone(next));
        }
        // Let the readers observe the final epoch before stopping.
        std::thread::sleep(Duration::from_millis(5));
        done.store(true, Ordering::Release);
        for reader in readers {
            let observed = reader.join().expect("reader panics are test failures");
            assert!(observed >= 1);
        }
        assert_eq!(cell.epoch(), bases.len() as u64);
    }

    #[test]
    fn refresh_is_a_no_op_on_the_current_epoch() {
        let session = Session::builder().build();
        session.compile(&tower(1)).expect("compiles");
        let cell = EpochBase::new(session.freeze());
        let (epoch, _) = cell.load();
        assert_eq!(epoch, 1);
        assert!(cell.refresh(epoch).is_none());
        session.compile(&tower(2)).expect("compiles");
        let published = cell.publish(session.freeze());
        assert_eq!(published, 2);
        let (epoch, base) = cell.refresh(1).expect("epoch moved");
        assert_eq!(epoch, 2);
        assert!(base.type_nodes() > 0);
    }
}
