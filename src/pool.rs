//! Parallel serving: a multi-threaded [`SessionPool`] over a shared
//! [`FrozenBase`].
//!
//! Everything below the session layer is deliberately
//! single-threaded — `Rc` trees, `RefCell` arenas, `&mut` caches —
//! because one request's hot path must not pay for synchronisation it
//! does not need. This module is where the parallelism lives instead:
//! a [`SessionPool`] serves compile+run requests across N OS threads
//! by combining
//!
//! * the **frozen base tier** ([`Session::freeze`] →
//!   `Arc<FrozenBase>`): an immutable snapshot of a warm session's
//!   arenas — every type node, coercion node, relational verdict, and
//!   composition pair the warmup traffic touched — shared read-only
//!   by all workers (it is `Send + Sync`; nothing in it ever mutates);
//! * **per-worker overlay sessions** ([`SessionBuilder::base`]): each
//!   worker thread owns a private, completely unsynchronised
//!   [`Session`] layered over the base. Lookups consult the base
//!   first; only genuinely new nodes are interned locally, with ids
//!   offset past the base.
//!
//! The measured warm working set is tiny (report E22: ≤ 16 type
//! nodes, ≤ 10 compose pairs at ≥ 0.999 hit rates), so the base tier
//! captures nearly everything structurally-similar traffic needs:
//! a warmed pool's workers intern **zero** local nodes on such
//! workloads (asserted by test), and every worker starts as warm as
//! the session that served the warmup.
//!
//! # When to freeze
//!
//! Freeze once, after warmup, before spawning workers —
//! [`SessionPoolBuilder::warmup`] does exactly this (compile each
//! warmup source, run it on the λS machine to warm the compose pairs,
//! then freeze). Re-freezing is how the base *evolves*: build a new
//! pool over `Session::freeze` of a session warmed on yesterday's
//! traffic. The base never mutates while workers hold it.
//!
//! # Id-offset contract
//!
//! Ids below the base lengths ([`FrozenBase::coercion_nodes`],
//! [`FrozenBase::type_nodes`]) denote frozen nodes and mean the same
//! thing in every worker. Ids at or past them are worker-local:
//! two workers may mint the same numeric id for different nodes, so
//! local ids must never travel between workers — which the API
//! enforces by keeping [`Program`](crate::Program) handles inside the
//! worker that compiled them and returning only `Send` observations.
//!
//! # Compiled jobs
//!
//! The one payload that *may* travel is a [`CompiledProgram`]: the
//! warmup's interned λB term plus its type id, compiled **before**
//! the freeze, so every id it references is below the base watermarks
//! and denotes the same node in every worker. [`SessionPool::submit`]
//! upgrades any submission whose source text exactly matches a warmup
//! source to this path automatically ([`SessionPool::submit_compiled`]
//! is the explicit form); the serving worker
//! [`Session::load_compiled`]s the term — no lexing, no parsing, no
//! elaboration — and caches the lowered program locally, so repeats
//! are pure lookups.
//!
//! # Example
//!
//! ```
//! use blame_coercion::{Engine, SessionPool};
//!
//! let pool = SessionPool::builder()
//!     .workers(2)
//!     .warmup(["let inc = fun x => x + 1 in (inc 41 : Int)"])
//!     .build()
//!     .expect("warmup compiles");
//! let handles = pool.submit_batch(
//!     (0..8).map(|n| format!("let inc = fun x => x + {n} in (inc 1 : Int)")),
//!     Engine::MachineS,
//! );
//! for handle in handles {
//!     handle.wait().expect("runs");
//! }
//! let stats = pool.shutdown();
//! assert_eq!(stats.jobs(), 8);
//! // The warmup covered the workload's shapes: no worker interned
//! // a single coercion or type past the shared base.
//! assert_eq!(stats.local_coercion_nodes(), 0);
//! assert_eq!(stats.local_type_nodes(), 0);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bc_gtlc::Diagnostic;
use bc_lambda_b::BTerm;
use bc_machine::metrics::Metrics;
use bc_syntax::TypeId;
use bc_translate::bisim::Observation;

use crate::session::{Engine, FrozenBase, RunError, Session, SessionBuilder, SessionStats};

/// What a completed pool job returns: the observation plus the run
/// accounting, all `Send` (no arena ids, no term trees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// What the program evaluated to.
    pub observation: Observation,
    /// Steps taken (reduction steps or machine transitions).
    pub steps: u64,
    /// Machine space metrics (machine engines only).
    pub metrics: Option<Metrics>,
    /// Index of the worker that served the job (for observability;
    /// jobs are claimed from a shared queue, so the assignment is
    /// load-dependent).
    pub worker: usize,
    /// Whether the job travelled as a compiled program (the warmup's
    /// interned λB term) rather than source text — `true` means the
    /// serving worker never touched the parser or the elaborator.
    pub compiled: bool,
}

/// A program compiled once at warmup and shipped to workers by id:
/// the interned λB term plus its type id, with every id below the
/// pool base's frozen watermarks (the warmup compiles *before* the
/// freeze), so any worker session built over the base adopts it with
/// no lexing, no parsing, no elaboration, and no λB re-check — the
/// worker only re-lowers λB → λC → λS, which on a warm base is pure
/// arena and memo hits. (The lowered λS form itself deliberately does
/// not travel: its `Rc` spine is `!Send` because atomic refcounts
/// would tax every machine step; see `bc_core::sterm`.) `Send + Sync`
/// by construction: the λB spine is `Arc`, the ids plain integers.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    source: String,
    term: BTerm,
    ty: TypeId,
}

impl CompiledProgram {
    /// The source text this program was compiled from (the key
    /// [`SessionPool::submit`] uses to upgrade matching submissions).
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// Why a pool job produced no [`JobOutput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The source failed to lex, parse, or gradually type check.
    Compile(Diagnostic),
    /// The program compiled but the run errored (fuel exhaustion or a
    /// loaded term's type lie) — same payload as [`Session::run`].
    Run(RunError),
    /// The pool shut down (or a worker died) before answering; the
    /// job may or may not have executed.
    Lost,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Compile(d) => write!(f, "compile error: {}", d.message),
            JobError::Run(e) => write!(f, "run error: {e}"),
            JobError::Lost => f.write_str("job lost: the pool shut down before answering"),
        }
    }
}

impl std::error::Error for JobError {}

/// A handle to a submitted job; [`JobHandle::wait`] blocks until the
/// serving worker replies.
#[derive(Debug)]
pub struct JobHandle {
    rx: mpsc::Receiver<Result<JobOutput, JobError>>,
}

impl JobHandle {
    /// Blocks until the job completes, returning its output (or the
    /// typed error). Returns [`JobError::Lost`] if the pool shut down
    /// without answering.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        self.rx.recv().unwrap_or(Err(JobError::Lost))
    }

    /// Non-blocking probe: `Some` once the job has completed (or been
    /// lost to a shutdown — pollers see [`JobError::Lost`] exactly
    /// like [`JobHandle::wait`] callers, rather than spinning on
    /// `None` forever).
    pub fn try_wait(&self) -> Option<Result<JobOutput, JobError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(JobError::Lost)),
        }
    }
}

/// What a job asks a worker to execute: source text (parsed and
/// elaborated by the worker) or an already-compiled program (loaded
/// straight into the worker's session — the no-re-parse path).
enum JobSpec {
    /// Source text; the worker compiles it (consulting its local
    /// program cache first, so a repeated source parses once per
    /// worker).
    Source(String),
    /// A warmup-compiled program shipped by reference; the worker
    /// loads the interned term without ever seeing the source.
    Compiled(Arc<CompiledProgram>),
}

impl JobSpec {
    /// The cache key: compiled jobs and their source-text twins hash
    /// to the same worker-local program.
    fn key(&self) -> &str {
        match self {
            JobSpec::Source(s) => s,
            JobSpec::Compiled(p) => &p.source,
        }
    }
}

/// A unit of work travelling the queue: the spec plus run options,
/// with the reply channel riding along.
struct Job {
    spec: JobSpec,
    engine: Engine,
    fuel: Option<u64>,
    reply: mpsc::Sender<Result<JobOutput, JobError>>,
}

/// One worker's published counters (refreshed after every job).
#[derive(Debug, Clone, Copy, Default)]
struct WorkerSlot {
    jobs: u64,
    stats: Option<SessionStats>,
}

/// A snapshot of one worker's accounting.
#[derive(Debug, Clone, Copy)]
pub struct WorkerStats {
    /// The worker's index (stable for the pool's lifetime).
    pub worker: usize,
    /// Jobs this worker has completed.
    pub jobs: u64,
    /// The worker session's consolidated stats — including
    /// [`SessionStats::tier`], which proves (or disproves) base-tier
    /// sharing per worker. `None` until the worker serves its first
    /// job.
    pub session: Option<SessionStats>,
}

/// Aggregated pool accounting: per-worker stats plus the sharing
/// roll-ups the acceptance tests assert on.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Per-worker snapshots, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total jobs completed across all workers.
    pub fn jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Coercion nodes interned *past the base*, summed over workers.
    /// Zero means the frozen base absorbed every coercion the whole
    /// pool ever needed.
    pub fn local_coercion_nodes(&self) -> usize {
        self.sessions().map(|s| s.tier.local_coercion_nodes).sum()
    }

    /// Type nodes interned past the base, summed over workers.
    pub fn local_type_nodes(&self) -> usize {
        self.sessions().map(|s| s.tier.local_type_nodes).sum()
    }

    /// Fraction of coercion-intern probes answered by the frozen base
    /// index, across all workers (1.0 = every probe hit the base).
    pub fn coercion_base_hit_rate(&self) -> f64 {
        let base: u64 = self.sessions().map(|s| s.coercions.base_hits).sum();
        let total: u64 = self
            .sessions()
            .map(|s| s.coercions.node_hits + s.coercions.node_misses)
            .sum();
        base as f64 / total.max(1) as f64
    }

    /// Fraction of compositions answered by the frozen pair table,
    /// across all workers.
    pub fn compose_base_hit_rate(&self) -> f64 {
        let base: u64 = self.sessions().map(|s| s.compose.base_hits).sum();
        let total: u64 = self
            .sessions()
            .map(|s| s.compose.hits + s.compose.misses)
            .sum();
        base as f64 / total.max(1) as f64
    }

    fn sessions(&self) -> impl Iterator<Item = &SessionStats> {
        self.workers.iter().filter_map(|w| w.session.as_ref())
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} jobs across {} workers; {} local coercion nodes, {} local type nodes; \
             base hit rates: {:.3} interning / {:.3} compose",
            self.jobs(),
            self.workers.len(),
            self.local_coercion_nodes(),
            self.local_type_nodes(),
            self.coercion_base_hit_rate(),
            self.compose_base_hit_rate(),
        )?;
        for w in &self.workers {
            match &w.session {
                Some(s) => writeln!(
                    f,
                    "  worker {}: {} jobs, {} local coercions, {} local types, \
                     {} base intern hits",
                    w.worker,
                    w.jobs,
                    s.tier.local_coercion_nodes,
                    s.tier.local_type_nodes,
                    s.tier.coercion_base_hits + s.tier.type_base_hits,
                )?,
                None => writeln!(f, "  worker {}: idle", w.worker)?,
            }
        }
        Ok(())
    }
}

/// Configures and builds a [`SessionPool`].
#[derive(Debug, Clone)]
pub struct SessionPoolBuilder {
    workers: usize,
    compose_cache_capacity: usize,
    type_memo_capacity: usize,
    default_fuel: u64,
    warmup: Vec<String>,
    base: Option<Arc<FrozenBase>>,
}

impl Default for SessionPoolBuilder {
    fn default() -> SessionPoolBuilder {
        SessionPoolBuilder {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            compose_cache_capacity: SessionBuilder::DEFAULT_COMPOSE_CACHE_CAPACITY,
            type_memo_capacity: SessionBuilder::DEFAULT_TYPE_MEMO_CAPACITY,
            default_fuel: SessionBuilder::DEFAULT_FUEL,
            warmup: Vec::new(),
            base: None,
        }
    }
}

impl SessionPoolBuilder {
    /// Number of worker threads (default: the machine's available
    /// parallelism).
    ///
    /// # Panics
    ///
    /// [`SessionPoolBuilder::build`] panics if the count is zero.
    pub fn workers(mut self, workers: usize) -> SessionPoolBuilder {
        self.workers = workers;
        self
    }

    /// Per-worker compose-cache pair cap (see
    /// [`SessionBuilder::compose_cache_capacity`]); the frozen base's
    /// pair table is not counted against it.
    pub fn compose_cache_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.compose_cache_capacity = capacity;
        self
    }

    /// Per-worker verdict-table cap (see
    /// [`SessionBuilder::type_memo_capacity`]).
    pub fn type_memo_capacity(mut self, capacity: usize) -> SessionPoolBuilder {
        self.type_memo_capacity = capacity;
        self
    }

    /// The step bound applied to jobs submitted without an explicit
    /// fuel (see [`SessionPool::submit_with_fuel`]).
    pub fn default_fuel(mut self, fuel: u64) -> SessionPoolBuilder {
        self.default_fuel = fuel;
        self
    }

    /// Sources compiled — and run on the λS machine, to warm the
    /// composition pairs — into the warmup session whose frozen state
    /// becomes the workers' shared base. Pick representatives of the
    /// traffic the pool will serve: shapes the warmup covered cost
    /// the workers zero local interning.
    pub fn warmup<I, S>(mut self, sources: I) -> SessionPoolBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.warmup.extend(sources.into_iter().map(Into::into));
        self
    }

    /// Starts the warmup session from an existing frozen base instead
    /// of empty (the warmup sources, if any, are layered on top and
    /// the combination re-frozen) — how a pool inherits yesterday's
    /// warm state.
    pub fn base(mut self, base: Arc<FrozenBase>) -> SessionPoolBuilder {
        self.base = Some(base);
        self
    }

    /// Builds the base (compiling and running the warmup sources) and
    /// spawns the workers.
    ///
    /// # Errors
    ///
    /// Returns the first warmup source's [`Diagnostic`] if one fails
    /// to compile. Warmup *runs* are best-effort: a warmup program
    /// exhausting its fuel still warmed the caches, so it is not an
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if the worker count is zero or a worker thread cannot
    /// be spawned.
    pub fn build(self) -> Result<SessionPool, Diagnostic> {
        assert!(self.workers > 0, "SessionPool needs at least 1 worker");
        let mut warm = Session::builder()
            .compose_cache_capacity(self.compose_cache_capacity)
            .type_memo_capacity(self.type_memo_capacity)
            .default_fuel(self.default_fuel);
        if let Some(base) = self.base {
            warm = warm.base(base);
        }
        let warm = warm.build();
        let mut compiled = HashMap::new();
        // Warmup runs exist to seed the compose cache, and a
        // space-efficient loop reaches its steady-state coercion
        // working set within its first iterations — so the bound is
        // small and *independent* of the pool's job fuel: a divergent
        // warmup source must not burn `default_fuel` at build time.
        const WARMUP_RUN_FUEL: u64 = 64;
        for source in &self.warmup {
            let program = warm.compile(source)?;
            // Warm the compose pairs; outcome (including fuel
            // exhaustion) is irrelevant here. Every warmup source runs:
            // even one whose compile interned nothing new can reach
            // compose *pairs* no earlier program composed (same nodes,
            // different dynamic order), and a redundant run is pure
            // cache hits — microseconds at this fuel bound.
            let _ = warm.run_with_fuel(
                &program,
                Engine::MachineS,
                WARMUP_RUN_FUEL.min(self.default_fuel),
            );
            // Keep the compiled form: every id it references is about
            // to be frozen into the base, so workers can load it
            // without re-parsing (`SessionPool::submit_compiled`).
            compiled.insert(
                source.clone(),
                Arc::new(CompiledProgram {
                    source: source.clone(),
                    term: program.lambda_b_compiled().clone(),
                    ty: program.ty_id(),
                }),
            );
        }
        let base = warm.freeze();

        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let slots: Arc<Vec<Mutex<WorkerSlot>>> = Arc::new(
            (0..self.workers)
                .map(|_| Mutex::new(WorkerSlot::default()))
                .collect(),
        );
        let handles = (0..self.workers)
            .map(|index| {
                let rx = Arc::clone(&rx);
                let slots = Arc::clone(&slots);
                let base = Arc::clone(&base);
                let (compose, memo, fuel) = (
                    self.compose_cache_capacity,
                    self.type_memo_capacity,
                    self.default_fuel,
                );
                std::thread::Builder::new()
                    .name(format!("bc-pool-worker-{index}"))
                    .spawn(move || worker_loop(index, rx, slots, base, compose, memo, fuel))
                    .expect("spawn pool worker")
            })
            .collect();
        Ok(SessionPool {
            tx: Some(tx),
            handles,
            slots,
            base,
            compiled,
            default_fuel: self.default_fuel,
        })
    }
}

/// One worker: a private overlay [`Session`] over the shared base,
/// draining the common queue until the pool closes it.
fn worker_loop(
    index: usize,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    slots: Arc<Vec<Mutex<WorkerSlot>>>,
    base: Arc<FrozenBase>,
    compose_cache_capacity: usize,
    type_memo_capacity: usize,
    default_fuel: u64,
) {
    let session = Session::builder()
        .base(base)
        .compose_cache_capacity(compose_cache_capacity)
        .type_memo_capacity(type_memo_capacity)
        .default_fuel(default_fuel)
        .build();
    // The worker-local program cache: one lowered Program per distinct
    // job key. Programs hold session-bound ids, so the cache lives and
    // dies with this worker; it is what makes a repeated job (compiled
    // or source) a pure lookup — zero parsing, zero lowering.
    let mut programs: HashMap<String, crate::session::Program> = HashMap::new();
    loop {
        // Hold the queue lock only for the claim, never during a job.
        let job = {
            let queue = rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            match queue.recv() {
                Ok(job) => job,
                // Channel closed and drained: graceful shutdown.
                Err(mpsc::RecvError) => break,
            }
        };
        let result = serve(&session, &mut programs, index, &job);
        // Publish the slot *before* replying: a caller that observes
        // a job as complete via its handle must find it counted in
        // `SessionPool::stats` too.
        {
            let mut slot = slots[index]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot.jobs += 1;
            slot.stats = Some(session.stats());
        }
        // The submitter may have dropped its handle; that is not an
        // error for the pool.
        let _ = job.reply.send(result);
    }
}

/// Bound on the worker-local program cache; beyond it the cache is
/// dropped wholesale (recompiling is always safe — the arenas stay
/// warm, so a re-lower interns nothing).
const WORKER_PROGRAM_CACHE_CAP: usize = 1024;

/// Serves one job in the worker's session: resolve the program
/// (worker cache → compiled payload → source compile), run, observe.
fn serve(
    session: &Session,
    programs: &mut HashMap<String, crate::session::Program>,
    worker: usize,
    job: &Job,
) -> Result<JobOutput, JobError> {
    let compiled = matches!(job.spec, JobSpec::Compiled(_));
    let key = job.spec.key();
    if !programs.contains_key(key) {
        let program = match &job.spec {
            // Pool-made `CompiledProgram`s were elaborated and checked
            // by warmup itself before the freeze, so the worker skips
            // the λB re-check and goes straight to lowering — every
            // intern, normalisation, and compose a base-covered term
            // needs is already frozen, so this is memo lookups only.
            JobSpec::Compiled(p) => session.load_compiled_trusted(p.term.clone(), p.ty),
            JobSpec::Source(source) => session.compile(source).map_err(JobError::Compile)?,
        };
        if programs.len() >= WORKER_PROGRAM_CACHE_CAP {
            programs.clear();
        }
        programs.insert(key.to_owned(), program);
    }
    let program = &programs[key];
    let fuel = job.fuel.unwrap_or_else(|| session.default_fuel());
    let report = session
        .run_with_fuel(program, job.engine, fuel)
        .map_err(JobError::Run)?;
    Ok(JobOutput {
        observation: report.observation,
        steps: report.steps,
        metrics: report.metrics,
        worker,
        compiled,
    })
}

/// A multi-threaded serving pool: N worker threads, each with a
/// private overlay [`Session`] over one shared [`FrozenBase`],
/// draining a common job queue.
///
/// See the [module docs](self) for the sharing model and an example.
#[derive(Debug)]
pub struct SessionPool {
    /// The job queue's sending half; dropped to initiate shutdown.
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    slots: Arc<Vec<Mutex<WorkerSlot>>>,
    base: Arc<FrozenBase>,
    /// The warmup's compiled programs, keyed by their source text:
    /// the payloads [`SessionPool::submit_compiled`] ships and
    /// [`SessionPool::submit`] upgrades matching submissions to.
    compiled: HashMap<String, Arc<CompiledProgram>>,
    default_fuel: u64,
}

impl SessionPool {
    /// Starts configuring a pool.
    pub fn builder() -> SessionPoolBuilder {
        SessionPoolBuilder::default()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The frozen base all workers share.
    pub fn base(&self) -> &Arc<FrozenBase> {
        &self.base
    }

    /// The step bound applied to jobs submitted without explicit
    /// fuel.
    pub fn default_fuel(&self) -> u64 {
        self.default_fuel
    }

    /// Submits one compile+run job; any idle worker claims it.
    ///
    /// If `source` is byte-for-byte one of the warmup sources, the job
    /// is upgraded to the compiled path automatically: the worker
    /// receives the warmup's interned λB term and never re-parses.
    pub fn submit(&self, source: impl Into<String>, engine: Engine) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, None)
    }

    /// [`SessionPool::submit`] with an explicit step bound.
    pub fn submit_with_fuel(
        &self,
        source: impl Into<String>,
        engine: Engine,
        fuel: u64,
    ) -> JobHandle {
        self.submit_job(self.spec_for(source.into()), engine, Some(fuel))
    }

    /// Submits a batch of jobs, returning one handle per source (in
    /// submission order; completion order is up to the workers). Each
    /// source gets the same compiled-path upgrade as
    /// [`SessionPool::submit`].
    pub fn submit_batch<I, S>(&self, sources: I, engine: Engine) -> Vec<JobHandle>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        sources
            .into_iter()
            .map(|s| self.submit_job(self.spec_for(s.into()), engine, None))
            .collect()
    }

    /// Submits a warmup source by name as a compiled job — the
    /// explicit form of the upgrade [`SessionPool::submit`] applies:
    /// the worker loads the warmup's interned λB term
    /// ([`Session::load_compiled`]) instead of parsing. Returns `None`
    /// if `source` was not among the pool's warmup sources (nothing
    /// compiled exists to ship — use [`SessionPool::submit`], which
    /// compiles on the worker).
    pub fn submit_compiled(&self, source: &str, engine: Engine) -> Option<JobHandle> {
        let program = self.compiled.get(source)?;
        Some(self.submit_job(JobSpec::Compiled(Arc::clone(program)), engine, None))
    }

    /// [`SessionPool::submit_compiled`] with an explicit step bound.
    pub fn submit_compiled_with_fuel(
        &self,
        source: &str,
        engine: Engine,
        fuel: u64,
    ) -> Option<JobHandle> {
        let program = self.compiled.get(source)?;
        Some(self.submit_job(JobSpec::Compiled(Arc::clone(program)), engine, Some(fuel)))
    }

    /// The warmup sources with a compiled program ready to ship
    /// (the keys [`SessionPool::submit_compiled`] accepts).
    pub fn compiled_sources(&self) -> impl Iterator<Item = &str> {
        self.compiled.keys().map(String::as_str)
    }

    /// Upgrades a source submission to the compiled path when the
    /// warmup compiled exactly this text.
    fn spec_for(&self, source: String) -> JobSpec {
        match self.compiled.get(&source) {
            Some(program) => JobSpec::Compiled(Arc::clone(program)),
            None => JobSpec::Source(source),
        }
    }

    fn submit_job(&self, spec: JobSpec, engine: Engine, fuel: Option<u64>) -> JobHandle {
        let (reply, rx) = mpsc::channel();
        let job = Job {
            spec,
            engine,
            fuel,
            reply,
        };
        if let Some(tx) = &self.tx {
            // A send only fails if every worker died; the handle then
            // reports Lost, which is the honest answer.
            let _ = tx.send(job);
        }
        JobHandle { rx }
    }

    /// A live snapshot of the per-worker accounting (each worker
    /// republishes after every job, so in-flight jobs are not yet
    /// counted).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .slots
                .iter()
                .enumerate()
                .map(|(worker, slot)| {
                    let slot = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    WorkerStats {
                        worker,
                        jobs: slot.jobs,
                        session: slot.stats,
                    }
                })
                .collect(),
        }
    }

    /// Graceful shutdown: closes the queue, lets the workers drain
    /// every already-submitted job, joins them, and returns the final
    /// accounting.
    ///
    /// # Panics
    ///
    /// Propagates a worker thread's panic (a worker only panics on
    /// internal bugs; job-level failures are typed [`JobError`]s).
    pub fn shutdown(mut self) -> PoolStats {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        self.stats()
    }
}

impl Drop for SessionPool {
    /// Dropping the pool shuts it down gracefully too (close the
    /// queue, join the workers), minus the final stats; worker panics
    /// are swallowed here — use [`SessionPool::shutdown`] to surface
    /// them.
    fn drop(&mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
