//! **blame-coercion** — a complete Rust implementation of Siek,
//! Thiemann, and Wadler, *Blame and Coercion: Together Again for the
//! First Time* (PLDI 2015).
//!
//! The workspace implements the paper's three calculi and everything
//! around them:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`syntax`] | types, ground types, blame labels, operators, the four subtyping relations (Fig. 2), pointed types and meets; the hash-consing `TypeArena` — interned `TypeId` handles with O(1) equality and memoized compatibility/subtyping |
//! | [`lambda_b`] | the blame calculus λB (Fig. 1): typing, reduction, blame safety, the embedding `⌈·⌉` |
//! | [`lambda_c`] | the coercion calculus λC (Fig. 3) |
//! | [`core`] | **λS**, the space-efficient coercion calculus (Fig. 5): the composition operator `s # t`, the hash-consing [`core::arena`] — interned `CoercionId` handles with O(1) equality and a memoizing, second-chance-evicting `ComposeCache` — and the compiled term IR [`core::sterm`] whose `Coerce` nodes are `Copy` ids |
//! | [`translate`] | the translations `\|·\|BC`, `\|·\|CB`, `\|·\|CS` (Figs. 4, 6) — with arena-threading `*_in` variants — executable bisimulations, the Fundamental Property of Casts |
//! | [`gtlc`] | a gradually-typed surface language: parser, gradual type checker, cast insertion |
//! | [`machine`] | CEK machines for all three calculi; the λS machine executes the compiled IR — frames hold interned coercions, merges go through the compose cache, and boundary crossings intern nothing (reported per run by `Metrics::reuse`) — running boundary-crossing tail calls in constant space |
//! | [`baselines`] | Siek–Wadler 2010 threesomes and Garcia 2013 supercoercions (with interned-coercion erasure) |
//!
//! Two auxiliary crates round out the workspace: `bc-testkit` (seeded
//! generators of well-typed workloads) and `bc-bench` (the criterion
//! suite and the EXPERIMENTS.md report binary).
//!
//! The [`pipeline`] module ties them together: source text → λB → λC →
//! λS → any of six execution engines. Each compiled program owns its
//! coercion arena, type arena, and compiled term IR, so repeated
//! λS-machine runs re-intern nothing and answer every coercion merge
//! from the memo table.
//!
//! # Quickstart
//!
//! ```
//! use blame_coercion::pipeline::{Compiled, Engine};
//!
//! let program = Compiled::compile(
//!     "let inc = fun x => x + 1 in  -- `x` is dynamically typed
//!      (inc 41 : Int)",
//! ).expect("type checks gradually");
//!
//! let report = program.run(Engine::MachineS, 10_000);
//! assert_eq!(report.observation.to_string(), "42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bc_baselines as baselines;
pub use bc_core as core;
pub use bc_gtlc as gtlc;
pub use bc_lambda_b as lambda_b;
pub use bc_lambda_c as lambda_c;
pub use bc_machine as machine;
pub use bc_syntax as syntax;
pub use bc_translate as translate;

pub mod pipeline;

pub use pipeline::{Compiled, Engine, RunReport};
