//! **blame-coercion** — a complete Rust implementation of Siek,
//! Thiemann, and Wadler, *Blame and Coercion: Together Again for the
//! First Time* (PLDI 2015).
//!
//! The workspace implements the paper's three calculi and everything
//! around them:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`syntax`] | types, ground types, blame labels, operators, the four subtyping relations (Fig. 2), pointed types and meets; the hash-consing `TypeArena` — interned `TypeId` handles with O(1) equality and memoized compatibility/subtyping |
//! | [`lambda_b`] | the blame calculus λB (Fig. 1): typing, reduction, blame safety, the embedding `⌈·⌉` |
//! | [`lambda_c`] | the coercion calculus λC (Fig. 3) |
//! | [`core`] | **λS**, the space-efficient coercion calculus (Fig. 5): the composition operator `s # t`, the hash-consing [`core::arena`] — interned `CoercionId` handles with O(1) equality and a memoizing, second-chance-evicting `ComposeCache` — and the compiled term IR [`core::sterm`] whose `Coerce` nodes are `Copy` ids |
//! | [`translate`] | the translations `\|·\|BC`, `\|·\|CB`, `\|·\|CS` (Figs. 4, 6) — with arena-threading `*_in` variants — executable bisimulations, the Fundamental Property of Casts |
//! | [`gtlc`] | a gradually-typed surface language: parser, gradual type checker, cast insertion — with an interned fast path (`elaborate_in`) that infers, checks consistency, and joins on `TypeId`s against a shared `TypeArena` |
//! | [`machine`] | CEK machines for all three calculi; the λS machine executes the compiled IR — frames hold interned coercions, merges go through the compose cache, and boundary crossings intern nothing (reported per run by `Metrics::reuse`) — running boundary-crossing tail calls in constant space |
//! | [`baselines`] | Siek–Wadler 2010 threesomes and Garcia 2013 supercoercions (with interned-coercion erasure) |
//!
//! Two auxiliary crates round out the workspace: `bc-testkit` (seeded
//! generators of well-typed workloads) and `bc-bench` (the criterion
//! suite and the EXPERIMENTS.md report binary).
//!
//! The [`session`] module ties them together: a [`Session`] owns the
//! coercion arena, compose cache, and type arena, and compiles source
//! text (source → λB → λC → λS → compiled term IR) into lightweight
//! [`Program`] handles that *share* them — N programs compiled into
//! one session intern each distinct coercion, memoize each
//! composition, and answer each subtyping question exactly once
//! between them. Any of six execution engines runs a program;
//! the run path returns `Result<RunReport, RunError>`, so fuel
//! exhaustion and ill-typedness are typed errors, never panics or
//! sentinel observations.
//!
//! # Quickstart
//!
//! ```
//! use blame_coercion::{Engine, Session};
//!
//! let session = Session::new();
//! let program = session.compile(
//!     "let inc = fun x => x + 1 in  -- `x` is dynamically typed
//!      (inc 41 : Int)",
//! ).expect("type checks gradually");
//!
//! let report = session.run(&program, Engine::MachineS).expect("terminates");
//! assert_eq!(report.observation.to_string(), "42");
//!
//! // A second, structurally similar program compiled into the same
//! // session interns (near) nothing new — the point of sharing.
//! let nodes_before = session.stats().coercions.nodes;
//! let again = session.compile("let inc = fun x => x + 1 in (inc 1 : Int)")
//!     .expect("type checks gradually");
//! assert_eq!(session.stats().coercions.nodes, nodes_before);
//! assert_eq!(session.run(&again, Engine::MachineS).unwrap().observation.to_string(), "2");
//! ```
//!
//! Sessions are configurable via [`Session::builder`] (compose-cache
//! capacity, type-verdict-table capacity, default fuel), and
//! [`Session::stats`] returns one consolidated [`SessionStats`]
//! snapshot. (The pre-session `Compiled` shim is gone — its one
//! deprecation release has passed; the migration recipe lives in
//! CHANGES.md.)
//!
//! The whole pipeline is **allocation-free once warm**: the parser
//! interns annotations as it reads them, elaboration and both
//! lowerings run on interned ids, and [`Program`] handles keep only
//! the compiled λB/λS forms — the term *trees* are built lazily, and
//! only if something asks for one ([`SessionStats::tree_builds`]).
//! The [`pool`] module scales this across threads: a [`SessionPool`]
//! freezes a warm session into a shared base, and jobs matching a
//! warmup source travel as [`CompiledProgram`]s — interned λB plus the
//! lowered λS, both `Arc`-spined with ids below the frozen
//! watermarks — so workers adopt them without parsing, elaborating,
//! or re-lowering anything. The [`sched`] module makes the serving
//! preemptive: every machine is resumable, so workers run jobs in
//! deterministic step-counted slices ([`SliceBudget`]) with
//! round-robin fairness, wall-clock [`Deadline`]s, cooperative
//! cancellation, and bounded-queue backpressure — a divergent job
//! costs its neighbours one slice of latency, never a whole worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bc_baselines as baselines;
pub use bc_core as core;
pub use bc_gtlc as gtlc;
pub use bc_lambda_b as lambda_b;
pub use bc_lambda_c as lambda_c;
pub use bc_machine as machine;
pub use bc_syntax as syntax;
pub use bc_translate as translate;

mod obs;
pub mod pool;
pub mod sched;
pub mod session;

pub use bc_obs::{
    shape_key, AuditOutcome, AuditRecord, BlameAnalytics, BlameReport, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry,
};
pub use pool::{
    CompiledProgram, JobError, JobHandle, JobOutput, PoolStats, PromotionPolicy, SessionPool,
    SessionPoolBuilder, WorkerStats,
};
pub use sched::{Deadline, SliceBudget};
pub use session::{
    AdoptError, Engine, FrozenBase, PausedRun, Program, RunError, RunReport, Session,
    SessionBuilder, SessionStats, SliceOutcome, TierStats,
};
