//! Blame tracking: "well-typed programs can't be blamed".
//!
//! A statically-typed library is used by a dynamically-typed client
//! (and vice versa). When a contract at the boundary is violated,
//! blame falls on the *less precisely typed* side — and the pipeline
//! maps the blamed label back to the source location of the boundary.
//!
//! ```sh
//! cargo run --example blame_tracking
//! ```

use blame_coercion::translate::bisim::Observation;
use blame_coercion::{Engine, Session};

fn run_and_explain(session: &Session, title: &str, source: &str) {
    println!("── {title}");
    println!("{}", source.trim());
    let program = match session.compile(source) {
        Ok(p) => p,
        Err(e) => {
            println!("  (static) {}", e.render(source));
            println!();
            return;
        }
    };
    let report = match session.run(&program, Engine::MachineS) {
        Ok(r) => r,
        Err(e) => {
            println!("  => {e}");
            println!();
            return;
        }
    };
    match report.observation {
        Observation::Blame(p) => {
            let side = if p.is_positive() {
                "positive: the value crossing the boundary is at fault"
            } else {
                "negative: the context using the boundary is at fault"
            };
            println!("  => blame {p} ({side})");
            if let Some(msg) = program.explain_blame(p) {
                for line in msg.lines() {
                    println!("  {line}");
                }
            }
        }
        other => println!("  => {other}"),
    }
    println!();
}

fn main() {
    // One warm session serves all four scenarios (they share every
    // interned boundary coercion).
    let session = Session::builder().default_fuel(100_000).build();

    // 1. The dynamically-typed client passes a Bool where the typed
    //    library expects an Int: the projection at the boundary blames
    //    the dynamic side.
    run_and_explain(
        &session,
        "dynamic client misuses a typed library",
        "let lib = fun (n : Int) => n * 2 in
         let client = fun f => f true in    -- f : ?, applied to a Bool
         (client (lib : ?) : Int)",
    );

    // 2. A typed client uses a dynamically-typed library that returns
    //    the wrong type: again the *dynamic* side is blamed.
    run_and_explain(
        &session,
        "typed client, misbehaving dynamic library",
        "let lib = ((fun x => true) : ?) in -- fully dynamic, returns Bool
         let use = fun (f : Int -> Int) => f 1 + 1 in
         use (lib : Int -> Int)",
    );

    // 3. The same library used honestly: no blame at all.
    run_and_explain(
        &session,
        "the happy path",
        "let lib = fun x => x + 1 in
         let use = fun (f : Int -> Int) => f 1 + 1 in
         use (lib : Int -> Int)",
    );

    // 4. A fully static violation is rejected at compile time, before
    //    any blame can exist.
    run_and_explain(
        &session,
        "static misuse is a compile-time error",
        "1 + true",
    );
}
