//! Coercion playground: watch casts become coercions, coercions
//! normalise to canonical (space-efficient) forms, compositions stay
//! height-bounded, and the threesome correspondence in action.
//!
//! ```sh
//! cargo run --example coercion_playground
//! ```

use bc_baselines::threesome;
use bc_core::compose::compose;
use bc_syntax::{Label, Type};
use bc_translate::{b_to_s::cast_to_space, cast_to_coercion};

fn main() {
    let p = Label::new(0);
    let q = Label::new(1);
    let ii = Type::fun(Type::INT, Type::INT);

    println!("── casts to coercions (|·|BC, Figure 4)");
    for (a, b) in [
        (Type::INT, Type::DYN),
        (Type::DYN, Type::INT),
        (ii.clone(), Type::DYN),
        (Type::DYN, ii.clone()),
    ] {
        println!("  |{a} ⇒p {b}|  =  {}", cast_to_coercion(&a, p, &b));
    }
    println!();

    println!("── normalisation to canonical form (|·|CS, Figure 6)");
    let up = cast_to_space(&ii, p, &Type::DYN);
    let down = cast_to_space(&Type::DYN, q, &ii);
    println!("  s = |Int→Int ⇒p ?|CS   =  {up}");
    println!("  t = |? ⇒q Int→Int|CS   =  {down}");
    println!();

    println!("── composition s # t (Figure 5)");
    let round_trip = compose(&up, &down);
    println!("  s # t  =  {round_trip}");
    println!(
        "  heights: ‖s‖ = {}, ‖t‖ = {}, ‖s # t‖ = {}  (Prop. 14: never grows)",
        up.height(),
        down.height(),
        round_trip.height()
    );
    let mismatch = compose(&up, &cast_to_space(&Type::DYN, q, &Type::BOOL));
    println!("  s # |? ⇒q Bool|CS  =  {mismatch}   (a failure, blaming q)");
    println!();

    println!("── the threesome correspondence (§6.1)");
    println!(
        "  erased to labeled types:  map(s) = {},  map(t) = {}",
        threesome::from_space(&up),
        threesome::from_space(&down)
    );
    println!(
        "  Q ∘ P = {}   equals   map(s # t) = {}",
        threesome::compose_labeled(&threesome::from_space(&down), &threesome::from_space(&up)),
        threesome::from_space(&round_trip)
    );
    println!();

    println!("── iterated composition stays bounded");
    let mut acc = cast_to_space(&Type::DYN, p, &Type::DYN);
    for i in 0..1000u32 {
        let label = Label::new(i % 60 + 2);
        let step = compose(
            &cast_to_space(&Type::DYN, label, &ii),
            &cast_to_space(&ii, label, &Type::DYN),
        );
        acc = compose(&acc, &step);
    }
    println!(
        "  after 1000 round-trip compositions: size = {}, height = {}",
        acc.size(),
        acc.height()
    );
}
