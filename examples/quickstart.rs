//! Quickstart: compile gradually-typed programs into one session,
//! inspect the intermediate representations, run on every engine, and
//! watch the second program reuse the first one's interned state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blame_coercion::{Engine, Session};

fn main() {
    // A gradually-typed program: `inc` is dynamically typed (its
    // parameter has type `?`), the rest is statically typed. The
    // elaborator inserts casts where precision changes.
    let source = "let inc = fun x => x + 1 in  -- x : ? (unannotated)
                  letrec sum (n : Int) : Int =
                      if n = 0 then 0 else (inc (n - 1) : Int) + sum (n - 1)
                  in sum 5";

    // One session owns the coercion arena, compose cache, and type
    // arena; every program compiled into it shares them.
    let session = Session::builder().default_fuel(1_000_000).build();
    let program = session.compile(source).expect("gradually well typed");

    println!("source:\n  {}", source.trim());
    println!();
    println!("type:      {}", program.ty);
    println!("λB term:   {}", session.lambda_b(&program));
    println!("λC term:   {}", session.lambda_c(&program));
    println!("λS term:   {}", session.lambda_s(&program));
    println!();

    // All six engines implement the same semantics; the run path
    // returns Result, so fuel exhaustion would be a typed error, not
    // a panic or a sentinel.
    for engine in Engine::ALL {
        let report = session.run(&program, engine).expect("terminates");
        println!(
            "{engine:<20} => {} ({} steps)",
            report.observation, report.steps
        );
    }

    // A structurally similar program compiled into the same session
    // interns nothing new — the warm-session win, made observable.
    // Since PR 4 the *front end* runs on interned types too, so the
    // claim covers compile time: typechecking and elaborating the
    // second program adds zero type nodes and computes zero new
    // subtyping verdicts.
    let before = session.stats();
    let again = session
        .compile(
            "let inc = fun x => x + 1 in
             letrec sum (n : Int) : Int =
                 if n = 0 then 0 else (inc (n - 1) : Int) + sum (n - 1)
             in sum 9",
        )
        .expect("gradually well typed");
    let compiled = session.stats();
    println!();
    println!(
        "second program, compile-side reuse (warm session): \
         {} new coercion nodes, {} new type nodes, \
         {} verdict hits / {} new verdicts computed",
        compiled.coercions.nodes - before.coercions.nodes,
        compiled.type_nodes - before.type_nodes,
        compiled.type_queries.hits - before.type_queries.hits,
        compiled.type_queries.misses - before.type_queries.misses,
    );
    let report = session.run(&again, Engine::MachineS).expect("terminates");
    println!("second program (warm session) => {}", report.observation);
    println!("session: {}", session.stats());
}
