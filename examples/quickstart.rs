//! Quickstart: compile a gradually-typed program, inspect the three
//! intermediate representations, and run it on every engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use blame_coercion::{Compiled, Engine};

fn main() {
    // A gradually-typed program: `inc` is dynamically typed (its
    // parameter has type `?`), the rest is statically typed. The
    // elaborator inserts casts where precision changes.
    let source = "let inc = fun x => x + 1 in  -- x : ? (unannotated)
                  letrec sum (n : Int) : Int =
                      if n = 0 then 0 else (inc (n - 1) : Int) + sum (n - 1)
                  in sum 5";

    let program = Compiled::compile(source).expect("gradually well typed");

    println!("source:\n  {}", source.trim());
    println!();
    println!("type:      {}", program.ty);
    println!("λB term:   {}", program.lambda_b);
    println!("λC term:   {}", program.lambda_c);
    println!("λS term:   {}", program.lambda_s);
    println!();

    // All six engines implement the same semantics.
    for engine in Engine::ALL {
        let report = program.run(engine, 1_000_000);
        println!(
            "{engine:<20} => {} ({} steps)",
            report.observation, report.steps
        );
    }
}
