//! The paper's motivating experiment (§1): mutually recursive
//! even/odd where `even` is typed and `odd` is dynamically typed, all
//! calls in tail position. Casts pile up in λB/λC but merge in λS.
//!
//! This example regenerates the space table of EXPERIMENTS.md (E15):
//! peak cast/coercion frames on the machine continuation as the
//! iteration count grows.
//!
//! ```sh
//! cargo run --release --example space_efficiency
//! ```

use bc_lambda_b::programs;
use bc_machine::{cek_b, cek_c, cek_s};
use bc_translate::{term_b_to_c, term_c_to_s};

fn main() {
    println!("Peak cast/coercion frames on the machine continuation");
    println!("(workload: even/odd across a typed/untyped boundary, tail calls)");
    println!();
    println!(
        "{:>8} | {:>10} | {:>10} | {:>10} | {:>14}",
        "n", "λB frames", "λC frames", "λS frames", "λS coercion sz"
    );
    println!("{}", "-".repeat(66));

    for n in [4i64, 16, 64, 256, 1024] {
        let b = programs::even_odd_mixed(n);
        let c = term_b_to_c(&b);
        let s = term_c_to_s(&c);
        let fuel = 100_000_000;

        let rb = cek_b::run(&b, fuel);
        let rc = cek_c::run(&c, fuel);
        let rs = cek_s::run(&s, fuel);

        assert_eq!(
            rb.outcome.to_observation(),
            rs.outcome.to_observation(),
            "engines must agree"
        );

        println!(
            "{:>8} | {:>10} | {:>10} | {:>10} | {:>14}",
            n,
            rb.metrics.peak_cast_frames,
            rc.metrics.peak_cast_frames,
            rs.metrics.peak_cast_frames,
            rs.metrics.peak_cast_size,
        );
    }

    println!();
    println!("λB and λC grow linearly with n — the space leak that breaks");
    println!("tail calls. λS stays constant: adjacent coercions merge via");
    println!("`s # t`, whose height (and hence size) never grows (Prop. 14).");
}
