//! The paper's motivating experiment (§1): mutually recursive
//! even/odd where `even` is typed and `odd` is dynamically typed, all
//! calls in tail position. Casts pile up in λB/λC but merge in λS.
//!
//! This example regenerates the space table of EXPERIMENTS.md (E15):
//! peak cast/coercion frames on the machine continuation as the
//! iteration count grows. The λS column runs on the compiled term IR
//! (`bc_core::sterm`) — the fast path the pipeline serves — and checks
//! on every row that evaluation re-interned nothing.
//!
//! ```sh
//! cargo run --release --example space_efficiency
//! ```

use bc_core::CompileCtx;
use bc_lambda_b::programs;
use bc_machine::{cek_b, cek_c, cek_s};
use bc_translate::{term_b_to_c, term_c_to_s_compiled_in};

fn main() {
    println!("Peak cast/coercion frames on the machine continuation");
    println!("(workload: even/odd across a typed/untyped boundary, tail calls;");
    println!(" λS runs on the compiled term IR — coercions interned once,");
    println!(" boundary crossings are id loads + cached merges)");
    println!();
    println!(
        "{:>8} | {:>10} | {:>10} | {:>10} | {:>14} | {:>9}",
        "n", "λB frames", "λC frames", "λS frames", "λS coercion sz", "reintern"
    );
    println!("{}", "-".repeat(78));

    // One arena/cache/type-interner for the whole sweep: the loop
    // sizes share every coercion, so later rows reuse the earlier
    // rows' interned nodes and memoized merges.
    let mut ctx = CompileCtx::new();

    for n in [4i64, 16, 64, 256, 1024] {
        let b = programs::even_odd_mixed(n);
        let c = term_b_to_c(&b);
        // One pass, id-emitting: λC straight to the machine-ready IR,
        // no intermediate λS tree.
        let compiled = term_c_to_s_compiled_in(&mut ctx, &c);
        let fuel = 100_000_000;

        let rb = cek_b::run(&b, fuel);
        let rc = cek_c::run(&c, fuel);
        let rs = cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, fuel);

        assert_eq!(
            rb.outcome.to_observation(),
            rs.outcome.to_observation(),
            "engines must agree"
        );
        // The compiled fast path's defining property, checked live:
        // no coercion tree is ever re-interned during evaluation.
        assert_eq!(rs.metrics.reuse.tree_interns, 0, "compiled path interned");

        println!(
            "{:>8} | {:>10} | {:>10} | {:>10} | {:>14} | {:>9}",
            n,
            rb.metrics.peak_cast_frames,
            rc.metrics.peak_cast_frames,
            rs.metrics.peak_cast_frames,
            rs.metrics.peak_cast_size,
            rs.metrics.reuse.tree_interns,
        );
    }

    println!();
    println!("λB and λC grow linearly with n — the space leak that breaks");
    println!("tail calls. λS stays constant: adjacent coercions merge via");
    println!("`s # t`, whose height (and hence size) never grows (Prop. 14).");
    println!();
    let arena = ctx.arena.stats();
    let cache = ctx.cache.stats();
    println!(
        "shared arena after the sweep: {} coercion nodes, {} type nodes,",
        arena.nodes,
        ctx.types.len()
    );
    println!(
        "compose cache: {} hits / {} misses / {} evictions",
        cache.hits, cache.misses, cache.evictions
    );
}
