//! A worker-pool serving demo: N threads, one shared frozen base,
//! preemptive timeslicing.
//!
//! Act 1 builds a [`SessionPool`] warmed on one representative per
//! program shape, serves a 128-program mixed workload across the
//! workers, and prints what the epoch lifecycle's serve phase bought:
//! every worker's arenas stay at **zero** locally interned nodes —
//! the whole warm working set lives in the `Arc`-shared read-only
//! base — while outcomes (values, blame, fuel exhaustion) are exactly
//! what a single-threaded session would produce.
//!
//! Act 2 drives the scheduler's job lifecycle (submit → slice → park
//! → resume → resolve) on the same pool: million-step spinners are
//! submitted *ahead* of convergent jobs, yet the convergent jobs all
//! beat their wall-clock deadlines because each spinner is preempted
//! every `SliceBudget` steps; one spinner is canceled mid-flight and
//! the rest burn their fuel in round-robin slices.
//!
//! ```sh
//! cargo run --example server --release -- [workers]
//! ```

use std::time::{Duration, Instant};

use bc_testkit::sources;
use blame_coercion::{Deadline, Engine, JobError, RunError, SessionPool};

const SPINNER: &str = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let batch = sources::mixed(2026, 128);

    let t0 = Instant::now();
    let pool = SessionPool::builder()
        .workers(workers)
        .default_fuel(100_000)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let base = pool.base();
    println!(
        "pool up in {:?}: {} workers over a frozen base of {} coercion nodes, \
         {} type nodes, {} compose pairs, {} verdicts",
        t0.elapsed(),
        pool.workers(),
        base.coercion_nodes(),
        base.type_nodes(),
        base.compose_pairs(),
        base.verdicts(),
    );

    let t1 = Instant::now();
    let handles = pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    let (mut values, mut blamed, mut exhausted) = (0usize, 0usize, 0usize);
    for handle in handles {
        match handle.wait() {
            Ok(out) => {
                if out.observation.to_string().starts_with("blame") {
                    blamed += 1;
                } else {
                    values += 1;
                }
            }
            Err(JobError::Run(RunError::FuelExhausted { .. })) => exhausted += 1,
            Err(e) => panic!("generated workload must compile and run: {e}"),
        }
    }
    let served = t1.elapsed();
    println!(
        "served {} jobs in {:?} ({:.0} jobs/s): {values} values, {blamed} blamed, \
         {exhausted} fuel-exhausted",
        batch.len(),
        served,
        batch.len() as f64 / served.as_secs_f64(),
    );

    // Act 2: preemptive scheduling. Spinners go in *first* — without
    // timeslicing they would pin their workers for a million steps
    // each, and every job behind them would inherit that latency.
    let t2 = Instant::now();
    let spinners: Vec<_> = (0..workers + 1)
        .map(|_| pool.submit_with_fuel(SPINNER, Engine::MachineS, 1_000_000))
        .collect();
    let canceled = pool.submit_with_fuel(SPINNER, Engine::MachineS, u64::MAX);
    let convergent: Vec<_> = batch
        .iter()
        .filter(|s| !s.contains("letrec spin"))
        .take(32)
        .map(|s| {
            pool.submit_with_deadline(
                s.as_str(),
                Engine::MachineS,
                Deadline::after(Duration::from_secs(30)),
            )
        })
        .collect();
    let mut met = 0usize;
    for handle in convergent {
        match handle.wait() {
            Ok(_) | Err(JobError::Run(RunError::FuelExhausted { .. })) => met += 1,
            Err(e) => panic!("convergent jobs must beat a 30 s deadline beside spinners: {e}"),
        }
    }
    canceled.cancel();
    assert!(matches!(canceled.wait(), Err(JobError::Canceled)));
    for spinner in spinners {
        assert!(matches!(
            spinner.wait(),
            Err(JobError::Run(RunError::FuelExhausted { .. }))
        ));
    }
    println!(
        "sliced serving: {met} convergent jobs met their deadlines beside {} \
         million-step spinners (one canceled mid-flight) in {:?}",
        workers + 1,
        t2.elapsed(),
    );

    // What a scrape endpoint would serve: the full text exposition —
    // outcome counters, latency/queue-wait histograms, scheduler and
    // promotion counters, polled gauges — one coherent snapshot.
    println!();
    println!("{}", pool.metrics_text());
    let stats = pool.shutdown();
    assert_eq!(stats.local_coercion_nodes(), 0);
    assert_eq!(stats.local_type_nodes(), 0);
    // Covered traffic never trips the promoter: the pool serves its
    // warmup epoch for its whole life.
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.promotions, 0);
    // The spinners were preempted, not served whole: each one burned
    // its fuel across ~244 slices of the default budget.
    assert!(stats.preemptions() >= 244 * (workers as u64 + 1));
    assert_eq!(stats.cancellations(), 1);
    println!(
        "zero nodes interned past the base by any worker — the warm working set \
         is shared, not copied — and the scheduler preempted divergent jobs {} \
         times instead of letting any of them pin a worker.",
        stats.preemptions(),
    );
}
