//! A worker-pool serving demo: N threads, one shared frozen base.
//!
//! Builds a [`SessionPool`] warmed on one representative per program
//! shape, serves a 128-program mixed workload across the workers, and
//! prints what the epoch lifecycle's serve phase bought: every
//! worker's arenas stay at **zero** locally interned nodes — the
//! whole warm working set lives in the `Arc`-shared read-only base,
//! and the base never needs to move past its warmup epoch — while
//! outcomes (values, blame, fuel exhaustion) are exactly what a
//! single-threaded session would produce.
//!
//! ```sh
//! cargo run --example server --release -- [workers]
//! ```

use std::time::Instant;

use bc_testkit::sources;
use blame_coercion::{Engine, JobError, RunError, SessionPool};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let batch = sources::mixed(2026, 128);

    let t0 = Instant::now();
    let pool = SessionPool::builder()
        .workers(workers)
        .default_fuel(100_000)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let base = pool.base();
    println!(
        "pool up in {:?}: {} workers over a frozen base of {} coercion nodes, \
         {} type nodes, {} compose pairs, {} verdicts",
        t0.elapsed(),
        pool.workers(),
        base.coercion_nodes(),
        base.type_nodes(),
        base.compose_pairs(),
        base.verdicts(),
    );

    let t1 = Instant::now();
    let handles = pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    let (mut values, mut blamed, mut exhausted) = (0usize, 0usize, 0usize);
    for handle in handles {
        match handle.wait() {
            Ok(out) => {
                if out.observation.to_string().starts_with("blame") {
                    blamed += 1;
                } else {
                    values += 1;
                }
            }
            Err(JobError::Run(RunError::FuelExhausted { .. })) => exhausted += 1,
            Err(e) => panic!("generated workload must compile and run: {e}"),
        }
    }
    let served = t1.elapsed();
    println!(
        "served {} jobs in {:?} ({:.0} jobs/s): {values} values, {blamed} blamed, \
         {exhausted} fuel-exhausted",
        batch.len(),
        served,
        batch.len() as f64 / served.as_secs_f64(),
    );

    let stats = pool.shutdown();
    println!();
    println!("{stats}");
    assert_eq!(stats.local_coercion_nodes(), 0);
    assert_eq!(stats.local_type_nodes(), 0);
    // Covered traffic never trips the promoter: the pool serves its
    // warmup epoch for its whole life.
    assert_eq!(stats.epoch, 1);
    assert_eq!(stats.promotions, 0);
    println!(
        "zero nodes interned past the base by any worker — the warm working set \
         is shared, not copied — and the base never left epoch 1."
    );
}
