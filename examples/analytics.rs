//! Blame analytics over a 10 000-job audit stream.
//!
//! A warmed [`SessionPool`] serves the full `bc_testkit::sources`
//! mix — terminating cast loops, runtime-blame shapes, divergent
//! spinners — with the audit ring sized to keep every record. The
//! drained stream is folded through [`BlameAnalytics`] into a
//! [`BlameReport`](blame_coercion::BlameReport): outcomes, the
//! hottest blame labels with their cast sites, fuel exhaustion by
//! source shape, and peak-cast-frame distributions per (shape,
//! engine).
//!
//! The fold is then checked against ground truth: a fresh
//! single-threaded [`Session`] runs the identical corpus and counts
//! blame observations per label directly. The two tallies must agree
//! *exactly* — the observability layer reports what actually
//! happened, across workers, steals, preemptions, and epochs.
//!
//! ```sh
//! cargo run --release --example analytics
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use bc_testkit::sources;
use blame_coercion::translate::bisim::Observation;
use blame_coercion::{BlameAnalytics, Engine, JobError, Session, SessionPool};

const JOBS: usize = 10_000;
const FUEL: u64 = 2_000;

fn main() {
    let corpus = sources::mixed(2026, JOBS);

    // Serve the corpus through the pool, auditing every job.
    let pool = SessionPool::builder()
        .workers(4)
        .warmup(sources::shapes())
        .default_fuel(FUEL)
        .audit_capacity(JOBS + 64)
        .build()
        .expect("warmup compiles");
    let start = Instant::now();
    let handles: Vec<_> = corpus
        .iter()
        .map(|src| pool.submit(src.as_str(), Engine::MachineS))
        .collect();
    for handle in handles {
        match handle.wait() {
            Ok(_) | Err(JobError::Run(_)) => {}
            Err(e) => panic!("the mix resolves to values, blame, or exhaustion: {e}"),
        }
    }
    let served = start.elapsed();

    let records = pool.audit_records();
    assert_eq!(records.len(), JOBS, "the ring was sized to keep everything");
    assert_eq!(pool.audit_dropped(), 0);

    let mut analytics = BlameAnalytics::new();
    analytics.observe_all(&records);
    println!("{}", analytics.report(5));
    println!(
        "served {JOBS} jobs in {served:.2?} ({:.0} jobs/s) on {} workers",
        JOBS as f64 / served.as_secs_f64(),
        pool.workers(),
    );

    // Ground truth: replay the corpus sequentially and tally blame
    // per label straight off the observations.
    let start = Instant::now();
    let session = Session::new();
    let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
    for src in &corpus {
        let program = session.compile(src).expect("corpus compiles");
        match session.run_with_fuel(&program, Engine::MachineS, FUEL) {
            Ok(report) => {
                if let Observation::Blame(label) = report.observation {
                    *oracle.entry(label.to_string()).or_insert(0) += 1;
                }
            }
            Err(e) => assert!(
                matches!(e, blame_coercion::RunError::FuelExhausted { .. }),
                "only the spinners exhaust fuel: {e}"
            ),
        }
    }
    assert_eq!(
        analytics.blame_counts(),
        oracle,
        "the audited blame tally must match the sequential replay exactly"
    );
    println!(
        "oracle replay agrees exactly: {} blamed labels, {} blamed runs (replayed in {:.2?})",
        oracle.len(),
        oracle.values().sum::<u64>(),
        start.elapsed(),
    );
}
