//! A command-line interpreter for the gradually-typed language.
//!
//! ```sh
//! cargo run --example interp -- --engine machine-s 'let f = fun x => x + 1 in f 41'
//! cargo run --example interp -- --trace '(1 : ?) + 2'
//! cargo run --example interp -- path/to/program.gtlc
//! ```
//!
//! Flags:
//! * `--engine {b|c|s|machine-b|machine-c|machine-s}` — execution
//!   engine (default `machine-s`);
//! * `--trace` — print every λS reduction step;
//! * `--fuel N` — step bound (default 1,000,000).

use std::process::ExitCode;

use blame_coercion::translate::bisim::Observation;
use blame_coercion::{Engine, RunError, Session};

fn parse_engine(name: &str) -> Option<Engine> {
    match name {
        "b" => Some(Engine::LambdaB),
        "c" => Some(Engine::LambdaC),
        "s" => Some(Engine::LambdaS),
        "machine-b" => Some(Engine::MachineB),
        "machine-c" => Some(Engine::MachineC),
        "machine-s" => Some(Engine::MachineS),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut engine = Engine::MachineS;
    let mut trace = false;
    let mut fuel: u64 = 1_000_000;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => match args.next().as_deref().and_then(parse_engine) {
                Some(e) => engine = e,
                None => {
                    eprintln!("usage: --engine {{b|c|s|machine-b|machine-c|machine-s}}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => trace = true,
            "--fuel" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => fuel = n,
                None => {
                    eprintln!("usage: --fuel N");
                    return ExitCode::FAILURE;
                }
            },
            other => input = Some(other.to_owned()),
        }
    }

    let Some(input) = input else {
        eprintln!("usage: interp [--engine E] [--trace] [--fuel N] <program or file.gtlc>");
        return ExitCode::FAILURE;
    };

    // A file path or inline source text.
    let source = if input.ends_with(".gtlc") {
        match std::fs::read_to_string(&input) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        input
    };

    let session = Session::builder().default_fuel(fuel).build();
    let program = match session.compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", e.render(&source));
            return ExitCode::FAILURE;
        }
    };
    println!("type: {}", program.ty);

    if trace {
        // Step-by-step λS trace, with one merge context for the whole
        // run so repeated coercion merges hit the compose cache.
        let mut ctx = blame_coercion::core::MergeCtx::new();
        let ty = program.ty.clone();
        // The λS tree is decompiled lazily; the trace loop is the one
        // consumer that genuinely needs it.
        let mut cur = session.lambda_s(&program);
        let mut step_no = 0u64;
        println!("{step_no:>4}  {cur}");
        loop {
            match blame_coercion::core::eval::step_in(&mut ctx, &cur, &ty) {
                blame_coercion::core::eval::Step::Next(n) => {
                    step_no += 1;
                    println!("{step_no:>4}  {n}");
                    cur = n;
                    if step_no >= fuel {
                        println!("(fuel exhausted)");
                        break;
                    }
                }
                blame_coercion::core::eval::Step::Value => break,
                blame_coercion::core::eval::Step::Blame(p) => {
                    println!("      blame {p}");
                    break;
                }
            }
        }
    }

    let report = match session.run(&program, engine) {
        Ok(r) => r,
        Err(RunError::FuelExhausted { steps, .. }) => {
            eprintln!("fuel exhausted after {steps} steps (raise with --fuel N)");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("result ({engine}): {}", report.observation);
    println!("steps: {}", report.steps);
    if let Some(metrics) = &report.metrics {
        println!(
            "space: peak frames {}, peak coercion frames {}, peak coercion size {}",
            metrics.peak_frames, metrics.peak_cast_frames, metrics.peak_cast_size
        );
        if engine == Engine::MachineS {
            // The compiled fast path: the pipeline stores the lowered
            // term IR, so runs intern nothing and answer repeated
            // merges from the compose cache.
            let r = &metrics.reuse;
            println!(
                "reuse: {} tree interns, {} compose hits / {} misses, {} arena nodes",
                r.tree_interns, r.compose_hits, r.compose_misses, r.arena_nodes
            );
        }
    }
    if let Observation::Blame(p) = report.observation {
        if let Some(msg) = program.explain_blame(p) {
            eprintln!("{msg}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
