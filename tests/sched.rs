//! Integration tests for the preemptive scheduling front end.
//!
//! Two layers under test:
//!
//! * **Resumable runs** (`Session::start_run`/`resume_slice`): sliced
//!   execution must be *identical* to unsliced execution — same
//!   observation, same step count, same fuel-exhaustion accounting,
//!   same machine space metrics — for every engine and every slice
//!   size. Slicing is a scheduling concern; semantics may not notice.
//! * **The timeslicing pool**: round-robin fairness under divergent
//!   spinners, wall-clock deadlines, cooperative cancellation,
//!   bounded-queue backpressure, `wait_timeout`, and the monotone
//!   scheduler counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bc_testkit::sources;
use blame_coercion::{
    Deadline, Engine, JobError, PoolStats, RunError, RunReport, Session, SessionPool, SliceOutcome,
};

const FUEL: u64 = 300;

/// The semantic fingerprint of a run result: observation, steps, and
/// the full machine metrics (space peaks, reuse accounting) or the
/// typed error with its step count — everything slicing must
/// preserve. `RunReport::elapsed` is deliberately excluded: it is a
/// wall-clock measurement, the one field two otherwise-identical runs
/// never agree on.
fn result_fingerprint(result: &Result<RunReport, RunError>) -> String {
    match result {
        Ok(r) => format!("{:?} / {} steps / {:?}", r.observation, r.steps, r.metrics),
        Err(e) => format!("{e:?}"),
    }
}

/// A divergent λ-term: always exhausts whatever fuel it is given.
const SPINNER: &str = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";

/// Runs `source` on `engine` in a fresh session, driven in `slice`-
/// step turns through the resumable API, asserting parked runs
/// advance monotonically and stay below the fuel line.
fn sliced_fingerprint(source: &str, engine: Engine, slice: u64) -> String {
    let session = Session::new();
    let program = session.compile(source).expect("testkit sources compile");
    let mut paused = match session.start_run(&program, engine, FUEL) {
        Ok(p) => p,
        Err(e) => return format!("{e:?}"),
    };
    let mut last_steps = paused.steps();
    let mut turns = 0u64;
    let result = loop {
        match session.resume_slice(paused, slice) {
            SliceOutcome::Done(result) => break result,
            SliceOutcome::Parked(next) => {
                assert!(
                    next.steps() >= last_steps && next.steps() <= FUEL,
                    "parked runs advance and never pass the fuel bound"
                );
                last_steps = next.steps();
                turns += 1;
                assert!(
                    turns <= FUEL + 2,
                    "a {slice}-step slice loop must terminate within the fuel bound"
                );
                paused = next;
            }
        }
    };
    result_fingerprint(&result)
}

/// Reference: the ordinary unsliced run in its own fresh session
/// (fresh because a run warms the compose cache, and the reuse
/// metrics of a *second* run over the same session would differ).
fn unsliced_fingerprint(source: &str, engine: Engine) -> String {
    let session = Session::new();
    let program = session.compile(source).expect("testkit sources compile");
    result_fingerprint(&session.run_with_fuel(&program, engine, FUEL))
}

/// The tentpole property: sliced ≡ unsliced, for every engine, over
/// generated programs covering every shape (boundary loops, cast-free
/// loops, dynamic reuse, runtime blame, divergent spinners), at slice
/// sizes from pathological (1) through typical to degenerate (the
/// whole fuel bound).
#[test]
fn sliced_runs_are_identical_to_unsliced_runs_on_every_engine() {
    let programs = sources::mixed(11, 9);
    for source in &programs {
        for engine in Engine::ALL {
            let reference = unsliced_fingerprint(source, engine);
            for slice in [1, 7, 64, FUEL] {
                assert_eq!(
                    sliced_fingerprint(source, engine, slice),
                    reference,
                    "engine {engine:?}, slice {slice} diverged on:\n{source}"
                );
            }
        }
    }
}

/// The fairness acceptance criterion: a 64-job single-worker batch
/// with 4 divergent spinners completes *every* convergent job before
/// *any* spinner exhausts its fuel — round-robin slicing gives a
/// spinner one slice per rotation, never the whole worker.
#[test]
fn convergent_jobs_outrun_spinners_on_a_single_worker() {
    let pool = SessionPool::builder()
        .workers(1)
        .build()
        .expect("no warmup to fail");
    let shapes = sources::mixed(23, 64);
    let spinner_at = |i: usize| i % 16 == 0; // jobs 0, 16, 32, 48
    let order = Arc::new(AtomicU64::new(0));
    let mut completions = Vec::new();
    let handles: Vec<_> = (0..64)
        .map(|i| {
            // Convergent jobs come from the generated mix, skipping
            // its own spinner shape (shape 5 of 6).
            let source = if spinner_at(i) {
                SPINNER.to_owned()
            } else {
                shapes[if i % 6 == 5 { i + 1 } else { i }].clone()
            };
            let handle = pool.submit_with_fuel(source, Engine::MachineS, 1_000_000);
            let seq = Arc::new(AtomicU64::new(u64::MAX));
            let (order, slot) = (Arc::clone(&order), Arc::clone(&seq));
            handle.on_ready(move |_| {
                slot.store(order.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            });
            completions.push(seq);
            handle
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let result = handle.wait();
        if spinner_at(i) {
            assert!(
                matches!(
                    result,
                    Err(JobError::Run(RunError::FuelExhausted {
                        steps: 1_000_000,
                        ..
                    }))
                ),
                "spinner {i} must exhaust exactly its fuel, got {result:?}"
            );
        } else {
            assert!(result.is_ok(), "convergent job {i} failed: {result:?}");
        }
    }
    let last_convergent = (0..64)
        .filter(|&i| !spinner_at(i))
        .map(|i| completions[i].load(Ordering::SeqCst))
        .max()
        .expect("there are convergent jobs");
    let first_spinner = (0..64)
        .filter(|&i| spinner_at(i))
        .map(|i| completions[i].load(Ordering::SeqCst))
        .min()
        .expect("there are spinners");
    assert!(
        last_convergent < first_spinner,
        "every convergent job must complete (order {last_convergent}) before any \
         spinner exhausts its fuel (order {first_spinner})"
    );
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 64);
    assert!(
        stats.preemptions() >= 4,
        "four million-step spinners must park many times, saw {}",
        stats.preemptions()
    );
    assert!(stats.slices() > stats.preemptions());
}

/// `wait_timeout` returns `None` on timeout *without losing the job*:
/// the same handle later collects the real result.
#[test]
fn wait_timeout_expires_without_losing_the_job() {
    let pool = SessionPool::builder()
        .workers(1)
        .build()
        .expect("no warmup to fail");
    // 2M steps keeps the spinner busy well past the poll below, in
    // debug and release alike.
    let slow = pool.submit_with_fuel(SPINNER, Engine::MachineS, 2_000_000);
    assert!(
        slow.wait_timeout(Duration::from_millis(1)).is_none(),
        "a 2M-step spinner cannot finish in a millisecond"
    );
    assert!(slow.try_wait().is_none(), "timing out resolved nothing");
    // The job is still live: the next wait collects its real result.
    match slow.wait() {
        Err(JobError::Run(RunError::FuelExhausted { steps, .. })) => {
            assert_eq!(steps, 2_000_000);
        }
        other => panic!("expected fuel exhaustion, got {other:?}"),
    }
    // And a completed job answers a timed wait immediately.
    let quick = pool.submit("1 + 1", Engine::MachineS);
    match quick.wait_timeout(Duration::from_secs(30)) {
        Some(Ok(out)) => assert_eq!(out.observation.to_string(), "2"),
        other => panic!("expected completion, got {other:?}"),
    }
}

/// Cancellation resolves the handle immediately and the worker
/// discards its side at the next scheduling boundary — the pool
/// serves the next job instead of burning the spinner's fuel.
#[test]
fn cancel_stops_a_running_spinner_at_a_slice_boundary() {
    let pool = SessionPool::builder()
        .workers(1)
        .build()
        .expect("no warmup to fail");
    let doomed = pool.submit_with_fuel(SPINNER, Engine::MachineS, u64::MAX);
    // Give the worker a moment to start slicing it, then cancel.
    std::thread::sleep(Duration::from_millis(5));
    doomed.cancel();
    assert_eq!(doomed.wait(), Err(JobError::Canceled));
    // The worker is free again: an unbounded spinner would otherwise
    // pin it forever (and this wait would hang).
    let after = pool.submit("1 + 1", Engine::MachineS).wait();
    assert!(after.is_ok(), "worker still pinned: {after:?}");
    let stats = pool.shutdown();
    assert_eq!(stats.cancellations(), 1);
    // Canceling an already-resolved job is a no-op: covered above by
    // `doomed.wait()` returning Canceled exactly once.
}

/// Deadlines are enforced at slice boundaries with the real step and
/// wall-clock accounting in the error.
#[test]
fn deadlines_resolve_to_typed_misses_with_accounting() {
    let pool = SessionPool::builder()
        .workers(1)
        .build()
        .expect("no warmup to fail");
    let deadline = Duration::from_millis(20);
    let handle = pool.submit_with_options(
        SPINNER,
        Engine::MachineS,
        Some(u64::MAX),
        Some(Deadline::after(deadline)),
    );
    match handle.wait() {
        Err(JobError::DeadlineExceeded { steps, elapsed }) => {
            assert!(steps > 0, "the spinner ran before missing its deadline");
            assert!(
                elapsed >= deadline,
                "elapsed {elapsed:?} must cover the deadline {deadline:?}"
            );
        }
        other => panic!("expected a deadline miss, got {other:?}"),
    }
    // A deadline a finished job never reaches is invisible.
    let easy = pool.submit_with_options(
        "1 + 1",
        Engine::MachineS,
        None,
        Some(Deadline::after(Duration::from_secs(60))),
    );
    assert!(easy.wait().is_ok());
    let stats = pool.shutdown();
    assert_eq!(stats.deadline_misses(), 1);
}

/// Bounded backpressure: submissions past the per-worker in-flight
/// capacity reject immediately and typed; resolving a job (here by
/// cancellation) frees its slot.
#[test]
fn bounded_queues_reject_typed_and_recover_on_resolution() {
    let pool = SessionPool::builder()
        .workers(1)
        .queue_capacity(2)
        .build()
        .expect("no warmup to fail");
    let first = pool.submit_with_fuel(SPINNER, Engine::MachineS, u64::MAX);
    let second = pool.submit_with_fuel(SPINNER, Engine::MachineS, u64::MAX);
    // Two unbounded spinners fill the capacity; the third submission
    // must reject deterministically — the spinners can never resolve
    // on their own.
    let rejected = pool.submit("1 + 1", Engine::MachineS);
    assert_eq!(
        rejected.try_wait(),
        Some(Err(JobError::Rejected { queue_depth: 2 })),
        "a rejected submission resolves before it returns"
    );
    // Resolution — any resolution — frees the slot.
    first.cancel();
    second.cancel();
    let accepted = pool.submit("1 + 1", Engine::MachineS);
    let result = accepted.wait();
    assert!(result.is_ok(), "slot did not free after cancel: {result:?}");
    assert_eq!(first.wait(), Err(JobError::Canceled));
    assert_eq!(second.wait(), Err(JobError::Canceled));
    pool.shutdown();
}

fn monotone(label: &str, before: u64, after: u64) {
    assert!(
        after >= before,
        "{label} went backwards: {before} -> {after}"
    );
}

fn scheduler_counters(stats: &PoolStats) -> (u64, u64, u64, u64, u64) {
    (
        stats.jobs(),
        stats.slices(),
        stats.preemptions(),
        stats.deadline_misses(),
        stats.cancellations(),
    )
}

/// The scheduler counters are slot-level, so they survive epoch
/// rebuilds exactly like the PR-7 cumulative tier counters: a
/// drifting workload that forces promotions (session retirements on
/// every worker) must never see `slices`, `preemptions`,
/// `deadline_misses`, or `cancellations` move backwards.
#[test]
fn scheduler_counters_stay_monotone_across_epoch_rebuilds() {
    let pool = SessionPool::builder()
        .workers(2)
        .warmup(sources::shapes())
        .promotion(blame_coercion::PromotionPolicy {
            min_local_nodes: 1,
            min_miss_rate: 0.0,
            min_interval_jobs: 1,
        })
        .build()
        .expect("warmup compiles");
    let mut last = scheduler_counters(&pool.stats());
    let mut canceled = 0u64;
    for wave in 0..4 {
        let batch = sources::drifting(wave, 24, 8);
        let handles: Vec<_> = batch
            .iter()
            .map(|s| pool.submit_with_fuel(s.as_str(), Engine::MachineS, 50_000))
            .collect();
        // Sprinkle a cancellation in, so that counter moves too.
        let doomed = pool.submit_with_fuel(SPINNER, Engine::MachineS, u64::MAX);
        doomed.cancel();
        canceled += 1;
        for handle in handles {
            let result = handle.wait();
            assert!(
                !matches!(&result, Err(JobError::WorkerPanicked | JobError::Lost)),
                "drift wave {wave} lost a job: {result:?}"
            );
        }
        let stats = pool.stats();
        let now = scheduler_counters(&stats);
        monotone("jobs", last.0, now.0);
        monotone("slices", last.1, now.1);
        monotone("preemptions", last.2, now.2);
        monotone("deadline_misses", last.3, now.3);
        monotone("cancellations", last.4, now.4);
        assert!(
            stats.parked_depths().len() == 2,
            "one parked-depth gauge per worker"
        );
        last = now;
    }
    let stats = pool.shutdown();
    assert!(
        stats.promotions >= 1,
        "the drifting workload must force at least one promotion"
    );
    assert!(stats.epoch > 1);
    assert!(stats.slices() >= stats.jobs() - stats.cancellations());
    assert_eq!(stats.cancellations(), canceled);
}
