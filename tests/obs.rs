//! Observability acceptance tests: the Prometheus-style exposition
//! reflects the pool's actual traffic, counters are exact under
//! concurrency and monotone across promotions and respawns, and the
//! audit ring's overload accounting is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bc_testkit::sources;
use blame_coercion::translate::bisim::Observation;
use blame_coercion::{
    AuditOutcome, BlameAnalytics, Counter, Engine, Histogram, JobError, PromotionPolicy,
    SessionPool,
};

/// Every sample line (`name{labels} value`) in an exposition, keyed
/// by the full series string (metric name + label block).
fn samples(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (series, value) = l.rsplit_once(' ').expect("sample line has a value");
            (
                series.to_owned(),
                value.parse().expect("sample value is numeric"),
            )
        })
        .collect()
}

fn value(text: &str, series: &str) -> f64 {
    *samples(text)
        .get(series)
        .unwrap_or_else(|| panic!("series {series} missing from exposition:\n{text}"))
}

#[test]
fn warmed_pool_exposition_reflects_the_batch() {
    const JOBS: usize = 64;
    let pool = SessionPool::builder()
        .workers(2)
        .warmup(sources::shapes())
        .default_fuel(20_000)
        .build()
        .expect("warmup compiles");
    let batch = sources::mixed(7, JOBS);
    let handles = pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    let (mut values, mut blamed, mut exhausted) = (0u64, 0u64, 0u64);
    for handle in handles {
        match handle.wait() {
            Ok(out) => {
                // The elapsed satellite: every output reports its
                // end-to-end wall-clock time.
                assert!(out.elapsed > Duration::ZERO);
                if matches!(out.observation, Observation::Blame(_)) {
                    blamed += 1;
                } else {
                    values += 1;
                }
            }
            Err(JobError::Run(_)) => exhausted += 1,
            Err(e) => panic!("mixed workload resolves cleanly: {e}"),
        }
    }
    assert_eq!(values + blamed + exhausted, JOBS as u64);
    assert!(blamed > 0, "the mix includes runtime-blame shapes");
    assert!(exhausted > 0, "the mix includes divergent spinners");

    let text = pool.metrics_text();
    // Every instrument renders.
    for name in [
        "# TYPE bc_jobs_total counter",
        "# TYPE bc_job_latency_ns histogram",
        "# TYPE bc_job_queue_wait_ns histogram",
        "# TYPE bc_slices_total counter",
        "# TYPE bc_preemptions_total counter",
        "# TYPE bc_steals_total counter",
        "# TYPE bc_promotions_total counter",
        "# TYPE bc_respawns_total counter",
        "# TYPE bc_sessions_retired_total counter",
        "# TYPE bc_audit_dropped_total counter",
        "# TYPE bc_epoch gauge",
        "# TYPE bc_workers gauge",
        "# TYPE bc_coercion_base_hit_rate gauge",
        "# TYPE bc_compose_base_hit_rate gauge",
        "# TYPE bc_queue_depth gauge",
        "# TYPE bc_parked_depth gauge",
    ] {
        assert!(
            text.contains(name),
            "{name} missing from exposition:\n{text}"
        );
    }
    // The latency histogram saw every job exactly once.
    assert_eq!(value(&text, "bc_job_latency_ns_count"), JOBS as f64);
    assert_eq!(value(&text, "bc_job_queue_wait_ns_count"), JOBS as f64);
    // Outcome counters agree with what the handles reported.
    assert_eq!(
        value(&text, "bc_jobs_total{outcome=\"value\"}"),
        values as f64
    );
    assert_eq!(
        value(&text, "bc_jobs_total{outcome=\"blame\"}"),
        blamed as f64
    );
    assert_eq!(
        value(&text, "bc_jobs_total{outcome=\"fuel_exhausted\"}"),
        exhausted as f64
    );
    // A warmup that covers the traffic means (near-)perfect base
    // sharing and no epoch movement.
    assert!(value(&text, "bc_coercion_base_hit_rate") > 0.999);
    assert_eq!(value(&text, "bc_epoch"), 1.0);
    assert_eq!(value(&text, "bc_workers"), 2.0);
    assert_eq!(value(&text, "bc_audit_dropped_total"), 0.0);

    // The audit stream carries one record per job, consistent with
    // the exposition, and the analytics fold agrees with both.
    let records = pool.audit_records();
    assert_eq!(records.len(), JOBS);
    assert!(records.iter().all(|r| r.epoch == 1 && r.worker < 2));
    let mut fold = BlameAnalytics::new();
    fold.observe_all(&records);
    let report = fold.report(3);
    let outcome = |name: &str| {
        report
            .outcomes
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, v)| v)
    };
    assert_eq!(outcome("value"), values);
    assert_eq!(outcome("blame"), blamed);
    assert_eq!(outcome("fuel_exhausted"), exhausted);
    // Draining took everything; nothing was lost on the way.
    assert!(pool.audit_records().is_empty());
    assert_eq!(pool.audit_dropped(), 0);
}

#[test]
fn no_observability_pool_serves_with_empty_exposition() {
    let pool = SessionPool::builder()
        .workers(2)
        .warmup(sources::shapes())
        .no_observability()
        .build()
        .expect("warmup compiles");
    let handles = pool.submit_batch(
        sources::mixed(3, 16).iter().map(String::as_str),
        Engine::MachineS,
    );
    for handle in handles {
        let _ = handle.wait();
    }
    let text = pool.metrics_text();
    assert!(text.starts_with('#'), "exposition is a comment: {text}");
    assert!(samples(&text).is_empty());
    assert!(pool.audit_records().is_empty());
    assert_eq!(pool.audit_dropped(), 0);
    // The slot-counter accounting is unaffected by the switch.
    assert_eq!(pool.stats().jobs(), 16);
}

#[test]
fn concurrent_recorders_and_snapshot_reader_agree_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let counter = Arc::new(Counter::new());
    let histogram = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let counter = Arc::clone(&counter);
        let histogram = Arc::clone(&histogram);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let (mut last_count, mut last_sum, mut last_counter) = (0u64, 0u64, 0u64);
            let mut snapshots = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = histogram.snapshot();
                // Mid-flight snapshots are monotone, bucket-wise
                // valid views — never torn, never regressing.
                assert!(snap.count() >= last_count);
                assert!(snap.sum() >= last_sum);
                assert!(snap.count() <= THREADS * PER_THREAD);
                let c = counter.get();
                assert!(c >= last_counter);
                (last_count, last_sum, last_counter) = (snap.count(), snap.sum(), c);
                snapshots += 1;
            }
            snapshots
        })
    };
    let recorders: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let v = t * PER_THREAD + i;
                    histogram.record(v % 1024);
                    counter.add(2);
                }
            })
        })
        .collect();
    for r in recorders {
        r.join().expect("recorders do not panic");
    }
    done.store(true, Ordering::Release);
    assert!(reader.join().expect("reader does not panic") >= 1);

    // Quiesced: exact.
    let snap = histogram.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * PER_THREAD + i) % 1024))
        .sum();
    assert_eq!(snap.sum(), expected_sum);
    assert_eq!(counter.get(), 2 * THREADS * PER_THREAD);
}

#[test]
fn counters_stay_monotone_across_promotions_and_respawns() {
    const WAVES: u64 = 3;
    const WAVE_JOBS: usize = 24;
    let pool = SessionPool::builder()
        .workers(2)
        .warmup(sources::shapes())
        .default_fuel(5_000)
        .promotion(PromotionPolicy {
            min_local_nodes: 1,
            min_miss_rate: 0.0,
            min_interval_jobs: 1,
        })
        .build()
        .expect("warmup compiles");
    let mut prev_stats = pool.stats();
    let mut prev_samples = samples(&pool.metrics_text());
    for wave in 0..WAVES {
        // Drifting traffic (forces promotions under the tight policy)
        // plus one poison (forces a respawn and a session retirement).
        let batch = sources::drifting(11 + wave, WAVE_JOBS, 4);
        let handles = pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
        for handle in handles {
            handle.wait().expect("drifting sources compile and run");
        }
        assert!(matches!(
            pool.submit_poison().wait(),
            Err(JobError::WorkerPanicked)
        ));
        // The poison's reply resolves *inside* the dying serve; the
        // replacement worker (and the respawn counter) lands a moment
        // later. Wait for it so the snapshot below is post-recovery.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.stats().respawns < wave + 1 {
            assert!(std::time::Instant::now() < deadline, "respawn never landed");
            std::thread::yield_now();
        }

        let stats = pool.stats();
        // Slot-level accounting: monotone even though sessions were
        // retired (promotion adoptions + the poison respawn) between
        // the snapshots.
        assert!(stats.jobs() > prev_stats.jobs() + WAVE_JOBS as u64);
        assert!(stats.slices() >= prev_stats.slices());
        assert!(stats.preemptions() >= prev_stats.preemptions());
        assert!(stats.steals() >= prev_stats.steals());
        assert!(stats.promotions >= prev_stats.promotions);
        assert!(stats.respawns > prev_stats.respawns);
        assert!(stats.epoch >= prev_stats.epoch);
        let retired = |s: &blame_coercion::PoolStats| -> u64 {
            s.workers.iter().map(|w| w.sessions_retired()).sum()
        };
        assert!(retired(&stats) > retired(&prev_stats));

        // Instrument-level accounting: every counter-like series
        // (counters, histogram buckets/sums/counts) is monotone
        // across renders too.
        let now = samples(&pool.metrics_text());
        for (series, &v) in &now {
            let name = series.split('{').next().unwrap_or(series);
            if name.ends_with("_total")
                || name.ends_with("_count")
                || name.ends_with("_sum")
                || name.ends_with("_bucket")
            {
                if let Some(&before) = prev_samples.get(series) {
                    assert!(
                        v >= before,
                        "series {series} regressed across waves: {before} -> {v}"
                    );
                }
            }
        }
        prev_stats = stats;
        prev_samples = now;
    }
    let text = pool.metrics_text();
    assert!(value(&text, "bc_promotions_total") >= 1.0);
    assert_eq!(value(&text, "bc_respawns_total"), WAVES as f64);
    assert_eq!(
        value(&text, "bc_jobs_total{outcome=\"worker_panicked\"}"),
        WAVES as f64
    );
    // Every resolved job — including the panicked ones — landed in
    // the latency histogram exactly once.
    assert_eq!(
        value(&text, "bc_job_latency_ns_count"),
        (WAVES * (WAVE_JOBS as u64 + 1)) as f64
    );
    assert!(value(&text, "bc_sessions_retired_total") >= WAVES as f64);
}

#[test]
fn audit_ring_overflow_accounting_is_exact() {
    const JOBS: usize = 40;
    const CAPACITY: usize = 8;
    let pool = SessionPool::builder()
        .workers(1)
        .warmup(sources::shapes())
        .default_fuel(5_000)
        .audit_capacity(CAPACITY)
        .build()
        .expect("warmup compiles");
    let batch = sources::mixed(5, JOBS);
    let handles = pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    for handle in handles {
        let _ = handle.wait();
    }
    // Deterministic drop-oldest accounting: emitted = buffered +
    // dropped, exactly, and the live window is the newest records
    // with their original sequence numbers.
    let dropped = pool.audit_dropped();
    let records = pool.audit_records();
    assert_eq!(records.len(), CAPACITY);
    assert_eq!(dropped, (JOBS - CAPACITY) as u64);
    let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
    assert_eq!(
        seqs,
        ((JOBS - CAPACITY) as u64..JOBS as u64).collect::<Vec<_>>()
    );
    // Draining resets the window, not the loss accounting.
    assert!(pool.audit_records().is_empty());
    assert_eq!(pool.audit_dropped(), dropped);
}

#[test]
fn rejected_submissions_are_audited() {
    const SPINNER: &str = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";
    let pool = SessionPool::builder()
        .workers(1)
        .warmup([SPINNER])
        .queue_capacity(1)
        .build()
        .expect("warmup compiles");
    // The spinner occupies the worker's single in-flight slot from
    // submission to fuel exhaustion; everything submitted meanwhile
    // is refused at the door.
    let spinner = pool.submit_with_fuel(SPINNER, Engine::MachineS, 2_000_000);
    let mut rejected = 0u64;
    for _ in 0..5 {
        if let Some(Err(JobError::Rejected { .. })) =
            pool.submit("1 + 1", Engine::MachineS).try_wait()
        {
            rejected += 1;
        }
    }
    assert_eq!(rejected, 5, "capacity 1 refuses every submission");
    assert!(matches!(spinner.wait(), Err(JobError::Run(_))));
    let text = pool.metrics_text();
    assert_eq!(
        value(&text, "bc_jobs_total{outcome=\"rejected\"}"),
        rejected as f64
    );
    let records = pool.audit_records();
    let audited_rejects = records
        .iter()
        .filter(|r| r.outcome == AuditOutcome::Rejected)
        .count() as u64;
    assert_eq!(audited_rejects, rejected);
}
