//! Integration tests for the multi-threaded `SessionPool`: a pool
//! must be observationally identical to a single warm session run
//! sequentially (sharding is an optimisation, never a semantic
//! change), and a warmed pool must prove base-tier sharing — zero
//! local interning across all workers on structurally-covered
//! traffic.

use bc_testkit::sources;
use blame_coercion::{Engine, JobError, PromotionPolicy, RunError, Session, SessionPool};

const FUEL: u64 = 50_000;

/// A promotion policy with every gate floored: any worker holding any
/// overlay growth promotes at its next job boundary. Tests use it so
/// drift workloads exercise many epochs in few jobs; production uses
/// the measured [`PromotionPolicy::default`].
fn eager_promotion() -> PromotionPolicy {
    PromotionPolicy {
        min_local_nodes: 1,
        min_miss_rate: 0.0,
        min_interval_jobs: 1,
    }
}

/// The outcome fingerprint shared by pool jobs and sequential runs:
/// observation (including blame labels), step count, and typed
/// errors with their step counts. Worker assignment and cache/tier
/// metrics are deliberately excluded — sharing shows up there, the
/// semantics must not.
fn job_fingerprint(result: Result<blame_coercion::JobOutput, JobError>) -> String {
    match result {
        Ok(out) => format!("{} in {} steps", out.observation, out.steps),
        Err(JobError::Compile(d)) => format!("compile error: {}", d.message),
        Err(JobError::Run(RunError::FuelExhausted { steps, .. })) => {
            format!("fuel exhausted at {steps}")
        }
        Err(JobError::Run(RunError::IllTyped(d))) => format!("ill typed: {}", d.message),
        Err(JobError::WorkerPanicked) => "worker panicked".to_owned(),
        Err(JobError::DeadlineExceeded { steps, .. }) => format!("deadline missed at {steps}"),
        Err(JobError::Canceled) => "canceled".to_owned(),
        Err(JobError::Rejected { queue_depth }) => format!("rejected at depth {queue_depth}"),
        Err(JobError::Lost) => "lost".to_owned(),
    }
}

fn session_fingerprint(session: &Session, source: &str, engine: Engine) -> String {
    let program = match session.compile(source) {
        Ok(p) => p,
        Err(d) => return format!("compile error: {}", d.message),
    };
    match session.run_with_fuel(&program, engine, FUEL) {
        Ok(r) => format!("{} in {} steps", r.observation, r.steps),
        Err(RunError::FuelExhausted { steps, .. }) => format!("fuel exhausted at {steps}"),
        Err(RunError::IllTyped(d)) => format!("ill typed: {}", d.message),
    }
}

#[test]
fn four_worker_pool_matches_a_sequential_warm_session() {
    // Satellite acceptance: a 64-program generated batch through a
    // 4-worker pool is observationally identical — outcomes, blame
    // labels, fuel-exhaustion fingerprints — to a single warm
    // session running the batch sequentially.
    let batch = sources::mixed(0xB1A3E, 64);
    let pool = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let handles: Vec<_> = batch
        .iter()
        .map(|s| pool.submit_with_fuel(s.as_str(), Engine::MachineS, FUEL))
        .collect();
    let from_pool: Vec<String> = handles
        .into_iter()
        .map(|h| job_fingerprint(h.wait()))
        .collect();

    let sequential = Session::builder().default_fuel(FUEL).build();
    let from_session: Vec<String> = batch
        .iter()
        .map(|s| session_fingerprint(&sequential, s, Engine::MachineS))
        .collect();

    assert_eq!(from_pool, from_session);
    // The mix actually exercised the interesting outcomes.
    assert!(
        from_pool.iter().any(|f| f.contains("blame")),
        "{from_pool:?}"
    );
    assert!(from_pool.iter().any(|f| f.contains("fuel exhausted")));
    assert_eq!(pool.shutdown().jobs(), 64);
}

#[test]
fn warmed_pool_workers_intern_nothing_past_the_base() {
    // The tentpole acceptance criterion: after warmup on one
    // representative per shape, a 64-program structurally-similar
    // batch leaves every worker with zero locally interned coercion
    // and type nodes — the whole warm working set is served from the
    // shared frozen base.
    let pool = SessionPool::builder()
        .workers(4)
        .default_fuel(10_000)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let base = pool.base();
    assert!(base.coercion_nodes() > 0);
    assert!(base.compose_pairs() > 0);

    let handles = pool.submit_batch(sources::mixed(7, 64), Engine::MachineS);
    for handle in handles {
        // Run errors (the divergent shape's fuel exhaustion) are
        // legitimate outcomes; compile errors are not.
        if let Err(e) = handle.wait() {
            assert!(matches!(e, JobError::Run(_)), "unexpected job error: {e}");
        }
    }
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 64);
    assert_eq!(
        stats.local_coercion_nodes(),
        0,
        "a warmed pool must re-intern zero coercions: {stats}"
    );
    assert_eq!(
        stats.local_type_nodes(),
        0,
        "a warmed pool must re-intern zero types: {stats}"
    );
    // Per-worker: everyone who served traffic proves base-tier
    // sharing individually.
    let mut served = 0usize;
    for w in &stats.workers {
        if w.jobs == 0 {
            continue;
        }
        served += 1;
        let s = w.session.expect("served workers publish stats");
        assert_eq!(s.tier.base_coercion_nodes, base.coercion_nodes());
        assert_eq!(s.tier.local_coercion_nodes, 0, "worker {}", w.worker);
        assert_eq!(s.tier.local_type_nodes, 0, "worker {}", w.worker);
        assert!(s.tier.coercion_base_hits > 0, "worker {}", w.worker);
        assert!(s.tier.type_base_hits > 0, "worker {}", w.worker);
    }
    assert!(served >= 1);
    // Every intern probe across the pool was answered by the base.
    assert!(
        stats.coercion_base_hit_rate() > 0.999,
        "rate {}",
        stats.coercion_base_hit_rate()
    );
}

#[test]
fn warmed_jobs_travel_compiled_and_are_equivalent_to_source_jobs() {
    // The compiled-job satellite: a warmed pool ships warmup sources
    // as interned λB terms (`submit` auto-upgrades on exact source
    // match), the serving workers never parse, and the outcomes are
    // observationally identical to a cold pool compiling the same
    // text from scratch.
    let warmed = SessionPool::builder()
        .workers(3)
        .default_fuel(FUEL)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let cold = SessionPool::builder()
        .workers(3)
        .default_fuel(FUEL)
        .build()
        .expect("builds");
    assert_eq!(warmed.compiled_sources().count(), sources::SHAPES);
    assert_eq!(cold.compiled_sources().count(), 0);

    // A mixed batch of repeated warmup sources, alternating engines.
    let batch: Vec<(String, Engine)> = sources::shapes()
        .into_iter()
        .cycle()
        .take(24)
        .zip([Engine::MachineS, Engine::LambdaS].into_iter().cycle())
        .collect();
    let from_warmed: Vec<_> = batch
        .iter()
        .map(|(s, e)| warmed.submit_with_fuel(s.as_str(), *e, FUEL))
        .collect();
    let from_cold: Vec<_> = batch
        .iter()
        .map(|(s, e)| cold.submit_with_fuel(s.as_str(), *e, FUEL))
        .collect();
    for ((source, engine), (warm_handle, cold_handle)) in
        batch.iter().zip(from_warmed.into_iter().zip(from_cold))
    {
        let warm_out = warm_handle.wait();
        let cold_out = cold_handle.wait();
        if let Ok(out) = &warm_out {
            assert!(
                out.compiled,
                "warmed pool must serve {engine} compiled: {source}"
            );
        }
        if let Ok(out) = &cold_out {
            assert!(!out.compiled, "cold pool has nothing compiled to ship");
        }
        assert_eq!(
            job_fingerprint(warm_out),
            job_fingerprint(cold_out),
            "compiled and source paths diverged on {engine}: {source}"
        );
    }

    // The warmed pool's workers parsed nothing and lowered each
    // distinct program at most once: across 24 jobs over 6 shapes and
    // 3 workers, at most 18 programs exist pool-wide (the worker-local
    // cache served every repeat).
    let stats = warmed.shutdown();
    assert_eq!(stats.jobs(), 24);
    let lowered: usize = stats
        .workers
        .iter()
        .filter_map(|w| w.session.map(|s| s.programs))
        .sum();
    assert!(
        lowered <= sources::SHAPES * 3,
        "workers must cache programs across repeated jobs, lowered {lowered}"
    );
    cold.shutdown();

    // submit_compiled is the explicit form of the same upgrade — and
    // honestly refuses sources the warmup never compiled.
    let pool = SessionPool::builder()
        .workers(1)
        .default_fuel(FUEL)
        .warmup(["let inc = fun x => x + 1 in (inc 41 : Int)"])
        .build()
        .expect("warmup compiles");
    let out = pool
        .submit_compiled(
            "let inc = fun x => x + 1 in (inc 41 : Int)",
            Engine::MachineS,
        )
        .expect("was warmed")
        .wait()
        .expect("runs");
    assert!(out.compiled);
    assert_eq!(out.observation.to_string(), "42");
    assert!(
        pool.submit_compiled("1 + 1", Engine::MachineS).is_none(),
        "an unwarmed source has no compiled program to ship"
    );
}

#[test]
fn cold_pool_still_serves_correctly() {
    // Without warmup each worker interns its own working set — more
    // memory, same answers.
    let pool = SessionPool::builder()
        .workers(2)
        .default_fuel(FUEL)
        .build()
        .expect("no warmup to fail");
    assert!(pool.base().coercion_nodes() == 0);
    let out = pool
        .submit(
            "let inc = fun x => x + 1 in (inc 41 : Int)",
            Engine::MachineS,
        )
        .wait()
        .expect("runs");
    assert_eq!(out.observation.to_string(), "42");
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 1);
    assert!(stats.local_coercion_nodes() > 0, "cold pool pays locally");
}

#[test]
fn compile_errors_are_typed_job_errors() {
    let pool = SessionPool::builder().workers(2).build().expect("builds");
    match pool.submit("let x = in", Engine::MachineS).wait() {
        Err(JobError::Compile(d)) => assert!(!d.message.is_empty()),
        other => panic!("expected Compile error, got {other:?}"),
    }
    // An ill-typed (but parseable) program too.
    match pool.submit("1 true", Engine::MachineS).wait() {
        Err(JobError::Compile(_)) => {}
        other => panic!("expected Compile error, got {other:?}"),
    }
}

#[test]
fn fuel_exhaustion_reports_the_real_step_count_through_the_pool() {
    let pool = SessionPool::builder().workers(2).build().expect("builds");
    let spin = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";
    match pool.submit_with_fuel(spin, Engine::MachineS, 123).wait() {
        Err(JobError::Run(RunError::FuelExhausted { steps, metrics })) => {
            assert_eq!(steps, 123);
            assert!(metrics.is_some(), "machine engines carry metrics");
        }
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

#[test]
fn all_engines_agree_through_the_pool() {
    let pool = SessionPool::builder()
        .workers(3)
        .default_fuel(FUEL)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let source = "letrec even (n : Int) : Bool = \
                    if n = 0 then true else \
                    if n = 1 then false else even (n - 2) \
                  in even 10";
    let handles: Vec<_> = Engine::ALL
        .iter()
        .map(|&engine| pool.submit(source, engine))
        .collect();
    let outs: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("runs").observation.to_string())
        .collect();
    assert!(outs.iter().all(|o| o == "true"), "{outs:?}");
}

#[test]
fn shutdown_drains_already_submitted_jobs() {
    // Graceful shutdown: closing the queue lets the workers finish
    // every job already in it; every handle resolves.
    let pool = SessionPool::builder()
        .workers(2)
        .default_fuel(FUEL)
        .build()
        .expect("builds");
    let handles = pool.submit_batch(
        (0..16).map(|k| format!("let inc = fun x => x + {k} in (inc 1 : Int)")),
        Engine::MachineS,
    );
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 16);
    for (k, handle) in handles.into_iter().enumerate() {
        let out = handle.wait().expect("drained before shutdown");
        assert_eq!(out.observation.to_string(), (k as i64 + 1).to_string());
    }
}

#[test]
#[should_panic(expected = "at least 1 worker")]
fn zero_worker_pools_are_rejected() {
    let _ = SessionPool::builder().workers(0).build();
}

#[test]
fn promoting_pool_is_observationally_identical_under_drift() {
    // Promotion-determinism acceptance: a drifting 256-program batch
    // through a promoting pool is observationally identical to the
    // same batch through a non-promoting pool AND to a sequential
    // warm session. All jobs are in flight at once, so submits and
    // steals race the hot-swaps — a submit landing mid-promotion must
    // never observe a torn base (the epoch cell's unit tests check
    // the pair invariant directly; this checks it observationally).
    let batch = sources::drifting(0xD21F7, 256, 32);
    let promoting = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .promotion(eager_promotion())
        .build()
        .expect("builds");
    let frozen = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .no_promotion()
        .build()
        .expect("builds");

    let promoting_handles =
        promoting.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    let frozen_handles = frozen.submit_batch(batch.iter().map(String::as_str), Engine::MachineS);
    let from_promoting: Vec<String> = promoting_handles
        .into_iter()
        .map(|h| job_fingerprint(h.wait()))
        .collect();
    let from_frozen: Vec<String> = frozen_handles
        .into_iter()
        .map(|h| job_fingerprint(h.wait()))
        .collect();
    let sequential = Session::builder().default_fuel(FUEL).build();
    let from_session: Vec<String> = batch
        .iter()
        .map(|s| session_fingerprint(&sequential, s, Engine::MachineS))
        .collect();

    // The drifting generator must produce real programs, not parse
    // errors agreeing with themselves.
    assert!(
        from_session.iter().all(|f| !f.contains("compile error")),
        "drifting sources must compile: {from_session:?}"
    );
    assert_eq!(from_promoting, from_session);
    assert_eq!(from_frozen, from_session);

    let stats = promoting.shutdown();
    assert!(
        stats.promotions >= 1,
        "an eager policy under drift must promote: {stats}"
    );
    assert_eq!(stats.epoch, stats.promotions + 1);
    let frozen_stats = frozen.shutdown();
    assert_eq!(frozen_stats.epoch, 1);
    assert_eq!(frozen_stats.promotions, 0);
}

#[test]
fn promotion_recovers_the_base_hit_rate_and_cuts_overlay_interning() {
    // The drift acceptance criterion, on counters rather than timing:
    // after each rotation of a drifting workload, a promoting pool's
    // base-hit rate must return to >= 0.99 within the first half of
    // the phase (measured over the second half), and its cumulative
    // overlay interning must come out strictly below the same batch
    // through a non-promoting pool (which re-interns every drifted
    // node once per worker, forever). Jobs are submitted one at a
    // time so the phase boundaries in the counters are exact.
    const ROTATE: usize = 64;
    let batch = sources::drifting(0x5EED, 256, ROTATE);
    let promoting = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .promotion(eager_promotion())
        .build()
        .expect("builds");
    let frozen = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .no_promotion()
        .build()
        .expect("builds");

    // (cumulative base hits, cumulative probes, cumulative overlay
    // nodes) captured at every half-phase mark:
    // [phase 0 mid, phase 0 end, phase 1 mid, ...].
    let mut marks: Vec<(u64, u64, u64)> = Vec::new();
    for (i, source) in batch.iter().enumerate() {
        let result = promoting.submit(source.as_str(), Engine::MachineS).wait();
        assert!(
            !matches!(result, Err(JobError::Compile(_)) | Err(JobError::Lost)),
            "job {i} failed: {result:?}"
        );
        if (i + 1) % (ROTATE / 2) == 0 {
            let stats = promoting.stats();
            marks.push((
                stats.coercion_base_hits(),
                stats.coercion_probes(),
                stats.local_coercion_nodes() + stats.local_type_nodes(),
            ));
        }
    }
    for source in &batch {
        let _ = frozen.submit(source.as_str(), Engine::MachineS).wait();
    }

    let promoting_stats = promoting.shutdown();
    let frozen_stats = frozen.shutdown();
    assert!(promoting_stats.promotions >= 1, "{promoting_stats}");

    // Steady state after every rotation: by the second half of each
    // phase the rotated shapes live in the (freshly promoted) base,
    // so workers intern nothing past it — and any intern probes the
    // second half does issue are answered by the base. (A fully warm
    // second half may issue *zero* probes: coercion construction is
    // memoized per type pair, so repeat shapes never reach the arena.
    // Zero probes is the strongest form of "no misses".)
    for phase in 0..batch.len() / ROTATE {
        let (mid_hits, mid_probes, mid_local) = marks[2 * phase];
        let (end_hits, end_probes, end_local) = marks[2 * phase + 1];
        assert_eq!(
            end_local - mid_local,
            0,
            "phase {phase}: the second half interned past the promoted base\n{promoting_stats}"
        );
        let probes = end_probes - mid_probes;
        let rate = if probes == 0 {
            1.0
        } else {
            (end_hits - mid_hits) as f64 / probes as f64
        };
        assert!(
            rate >= 0.99,
            "phase {phase}: second-half base-hit rate {rate:.4} \
             (promotion did not catch the rotation)\n{promoting_stats}"
        );
    }

    // Promotion pays for itself in memory: the drifted nodes land in
    // the shared base once instead of in every worker's overlay, so
    // total overlay interning across the pool's lifetime is strictly
    // lower. (Cumulative counters: retired sessions are folded in,
    // not forgotten.)
    let promoted_overlay =
        promoting_stats.local_coercion_nodes() + promoting_stats.local_type_nodes();
    let frozen_overlay = frozen_stats.local_coercion_nodes() + frozen_stats.local_type_nodes();
    assert!(
        promoted_overlay < frozen_overlay,
        "promoting pool interned {promoted_overlay} overlay nodes, \
         non-promoting {frozen_overlay}"
    );
}

#[test]
fn a_panicking_job_is_typed_and_the_worker_respawns() {
    // Worker-failure satellite: a deliberately panicking job resolves
    // to JobError::WorkerPanicked, the pool survives, and — on a
    // ONE-worker pool, the hardest case — the respawned worker drains
    // every job queued behind the panic.
    let pool = SessionPool::builder()
        .workers(1)
        .default_fuel(FUEL)
        .build()
        .expect("builds");
    let before = pool.submit("1 + 1", Engine::MachineS);
    assert_eq!(before.wait().expect("runs").observation.to_string(), "2");

    let poison = pool.submit_poison();
    let after: Vec<_> = (0..8)
        .map(|k| {
            pool.submit(
                format!("let inc = fun x => x + {k} in (inc 1 : Int)"),
                Engine::MachineS,
            )
        })
        .collect();
    assert!(
        matches!(poison.wait(), Err(JobError::WorkerPanicked)),
        "poison must resolve to the typed panic error"
    );
    for (k, handle) in after.into_iter().enumerate() {
        let out = handle.wait().expect("the replacement serves queued jobs");
        assert_eq!(out.observation.to_string(), (k as i64 + 1).to_string());
    }
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 10, "panicked jobs count too: {stats}");
    assert_eq!(stats.respawns, 1);
    assert_eq!(stats.workers[0].panics, 1);
    assert!(
        !stats.workers[0].dead,
        "the replacement must clear the dead flag: {stats}"
    );
}

#[test]
fn idle_workers_steal_from_busy_queues() {
    // Work-stealing satellite: pin worker 0 behind a long spinner,
    // round-robin quick jobs into both queues, and the idle worker
    // must steal the quick jobs stranded behind the spinner. Also the
    // queue-depth accessors: zero when quiescent, one entry per
    // worker.
    let pool = SessionPool::builder()
        .workers(2)
        .default_fuel(FUEL)
        .build()
        .expect("builds");
    assert_eq!(pool.queue_depth(), 0);
    assert_eq!(pool.queue_depths(), vec![0, 0]);

    let spin = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";
    let long = pool.submit_with_fuel(spin, Engine::MachineS, 3_000_000);
    let quick: Vec<_> = (0..12)
        .map(|k| {
            pool.submit(
                format!("let inc = fun x => x + {k} in (inc 1 : Int)"),
                Engine::MachineS,
            )
        })
        .collect();
    for (k, handle) in quick.into_iter().enumerate() {
        let out = handle.wait().expect("quick jobs run");
        assert_eq!(out.observation.to_string(), (k as i64 + 1).to_string());
    }
    assert!(matches!(
        long.wait(),
        Err(JobError::Run(RunError::FuelExhausted { .. }))
    ));
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 13);
    assert!(
        stats.steals() >= 1,
        "the idle worker must steal jobs stranded behind the spinner: {stats}"
    );
    assert_eq!(stats.queue_depths(), vec![0, 0], "drained pool: {stats}");
}

/// Satellite regression guard for the `pool/lifecycle64` inversion:
/// with jobs travelling pre-compiled (λB *and* λS shipped from
/// warmup) and warmup runs bounded by their own small fuel, the
/// warmed lifecycle must not be slower than the cold one beyond
/// timing noise. The two medians are interleaved sample-by-sample so
/// machine-load drift hits both sides equally. The tolerance is wide
/// on purpose — this is a tripwire for the systematic regressions we
/// actually saw (warmup burning job fuel at build: +55%; workers
/// re-lowering every compiled job), not a microbenchmark; the tight
/// numbers live in BENCH_6.json behind `bench_diff`.
#[test]
fn warmed_lifecycle_is_not_slower_than_cold() {
    use std::time::Instant;

    const JOB_FUEL: u64 = 5_000;
    const REPS: usize = 9;

    let batch = sources::mixed(42, 256);
    let jobs: Vec<String> = batch.iter().take(64).cloned().collect();
    let mut warmup: Vec<String> = jobs.clone();
    warmup.sort();
    warmup.dedup();

    let lifecycle = |warmed: bool| {
        let mut builder = SessionPool::builder().workers(4).default_fuel(JOB_FUEL);
        if warmed {
            builder = builder.warmup(warmup.iter().cloned());
        }
        let pool = builder.build().expect("warmup compiles");
        for handle in pool.submit_batch(jobs.iter().map(String::as_str), Engine::MachineS) {
            // Fuel exhaustion (the divergent shape) is workload, not
            // failure; `Lost` would fail the fingerprint tests above.
            let _ = std::hint::black_box(handle.wait());
        }
    };

    let mut cold: Vec<u128> = Vec::with_capacity(REPS);
    let mut warmed: Vec<u128> = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        lifecycle(false);
        cold.push(t0.elapsed().as_nanos());
        let t0 = Instant::now();
        lifecycle(true);
        warmed.push(t0.elapsed().as_nanos());
    }
    cold.sort_unstable();
    warmed.sort_unstable();
    let (cold, warmed) = (cold[REPS / 2], warmed[REPS / 2]);

    // Debug builds skew the ratio (the warmup's extra interpreted
    // work is relatively pricier), so give them more headroom.
    let tolerance = if cfg!(debug_assertions) { 1.5 } else { 1.25 };
    assert!(
        (warmed as f64) <= (cold as f64) * tolerance,
        "warmed lifecycle regressed past cold: warmed {warmed} ns vs cold {cold} ns \
         (tolerance x{tolerance})"
    );
}
