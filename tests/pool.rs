//! Integration tests for the multi-threaded `SessionPool`: a pool
//! must be observationally identical to a single warm session run
//! sequentially (sharding is an optimisation, never a semantic
//! change), and a warmed pool must prove base-tier sharing — zero
//! local interning across all workers on structurally-covered
//! traffic.

use bc_testkit::sources;
use blame_coercion::{Engine, JobError, RunError, Session, SessionPool};

const FUEL: u64 = 50_000;

/// The outcome fingerprint shared by pool jobs and sequential runs:
/// observation (including blame labels), step count, and typed
/// errors with their step counts. Worker assignment and cache/tier
/// metrics are deliberately excluded — sharing shows up there, the
/// semantics must not.
fn job_fingerprint(result: Result<blame_coercion::JobOutput, JobError>) -> String {
    match result {
        Ok(out) => format!("{} in {} steps", out.observation, out.steps),
        Err(JobError::Compile(d)) => format!("compile error: {}", d.message),
        Err(JobError::Run(RunError::FuelExhausted { steps, .. })) => {
            format!("fuel exhausted at {steps}")
        }
        Err(JobError::Run(RunError::IllTyped(d))) => format!("ill typed: {}", d.message),
        Err(JobError::Lost) => "lost".to_owned(),
    }
}

fn session_fingerprint(session: &Session, source: &str, engine: Engine) -> String {
    let program = match session.compile(source) {
        Ok(p) => p,
        Err(d) => return format!("compile error: {}", d.message),
    };
    match session.run_with_fuel(&program, engine, FUEL) {
        Ok(r) => format!("{} in {} steps", r.observation, r.steps),
        Err(RunError::FuelExhausted { steps, .. }) => format!("fuel exhausted at {steps}"),
        Err(RunError::IllTyped(d)) => format!("ill typed: {}", d.message),
    }
}

#[test]
fn four_worker_pool_matches_a_sequential_warm_session() {
    // Satellite acceptance: a 64-program generated batch through a
    // 4-worker pool is observationally identical — outcomes, blame
    // labels, fuel-exhaustion fingerprints — to a single warm
    // session running the batch sequentially.
    let batch = sources::mixed(0xB1A3E, 64);
    let pool = SessionPool::builder()
        .workers(4)
        .default_fuel(FUEL)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let handles: Vec<_> = batch
        .iter()
        .map(|s| pool.submit_with_fuel(s.as_str(), Engine::MachineS, FUEL))
        .collect();
    let from_pool: Vec<String> = handles
        .into_iter()
        .map(|h| job_fingerprint(h.wait()))
        .collect();

    let sequential = Session::builder().default_fuel(FUEL).build();
    let from_session: Vec<String> = batch
        .iter()
        .map(|s| session_fingerprint(&sequential, s, Engine::MachineS))
        .collect();

    assert_eq!(from_pool, from_session);
    // The mix actually exercised the interesting outcomes.
    assert!(
        from_pool.iter().any(|f| f.contains("blame")),
        "{from_pool:?}"
    );
    assert!(from_pool.iter().any(|f| f.contains("fuel exhausted")));
    assert_eq!(pool.shutdown().jobs(), 64);
}

#[test]
fn warmed_pool_workers_intern_nothing_past_the_base() {
    // The tentpole acceptance criterion: after warmup on one
    // representative per shape, a 64-program structurally-similar
    // batch leaves every worker with zero locally interned coercion
    // and type nodes — the whole warm working set is served from the
    // shared frozen base.
    let pool = SessionPool::builder()
        .workers(4)
        .default_fuel(10_000)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let base = std::sync::Arc::clone(pool.base());
    assert!(base.coercion_nodes() > 0);
    assert!(base.compose_pairs() > 0);

    let handles = pool.submit_batch(sources::mixed(7, 64), Engine::MachineS);
    for handle in handles {
        // Run errors (the divergent shape's fuel exhaustion) are
        // legitimate outcomes; compile errors are not.
        if let Err(e) = handle.wait() {
            assert!(matches!(e, JobError::Run(_)), "unexpected job error: {e}");
        }
    }
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 64);
    assert_eq!(
        stats.local_coercion_nodes(),
        0,
        "a warmed pool must re-intern zero coercions: {stats}"
    );
    assert_eq!(
        stats.local_type_nodes(),
        0,
        "a warmed pool must re-intern zero types: {stats}"
    );
    // Per-worker: everyone who served traffic proves base-tier
    // sharing individually.
    let mut served = 0usize;
    for w in &stats.workers {
        if w.jobs == 0 {
            continue;
        }
        served += 1;
        let s = w.session.expect("served workers publish stats");
        assert_eq!(s.tier.base_coercion_nodes, base.coercion_nodes());
        assert_eq!(s.tier.local_coercion_nodes, 0, "worker {}", w.worker);
        assert_eq!(s.tier.local_type_nodes, 0, "worker {}", w.worker);
        assert!(s.tier.coercion_base_hits > 0, "worker {}", w.worker);
        assert!(s.tier.type_base_hits > 0, "worker {}", w.worker);
    }
    assert!(served >= 1);
    // Every intern probe across the pool was answered by the base.
    assert!(
        stats.coercion_base_hit_rate() > 0.999,
        "rate {}",
        stats.coercion_base_hit_rate()
    );
}

#[test]
fn cold_pool_still_serves_correctly() {
    // Without warmup each worker interns its own working set — more
    // memory, same answers.
    let pool = SessionPool::builder()
        .workers(2)
        .default_fuel(FUEL)
        .build()
        .expect("no warmup to fail");
    assert!(pool.base().coercion_nodes() == 0);
    let out = pool
        .submit(
            "let inc = fun x => x + 1 in (inc 41 : Int)",
            Engine::MachineS,
        )
        .wait()
        .expect("runs");
    assert_eq!(out.observation.to_string(), "42");
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 1);
    assert!(stats.local_coercion_nodes() > 0, "cold pool pays locally");
}

#[test]
fn compile_errors_are_typed_job_errors() {
    let pool = SessionPool::builder().workers(2).build().expect("builds");
    match pool.submit("let x = in", Engine::MachineS).wait() {
        Err(JobError::Compile(d)) => assert!(!d.message.is_empty()),
        other => panic!("expected Compile error, got {other:?}"),
    }
    // An ill-typed (but parseable) program too.
    match pool.submit("1 true", Engine::MachineS).wait() {
        Err(JobError::Compile(_)) => {}
        other => panic!("expected Compile error, got {other:?}"),
    }
}

#[test]
fn fuel_exhaustion_reports_the_real_step_count_through_the_pool() {
    let pool = SessionPool::builder().workers(2).build().expect("builds");
    let spin = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";
    match pool.submit_with_fuel(spin, Engine::MachineS, 123).wait() {
        Err(JobError::Run(RunError::FuelExhausted { steps, metrics })) => {
            assert_eq!(steps, 123);
            assert!(metrics.is_some(), "machine engines carry metrics");
        }
        other => panic!("expected FuelExhausted, got {other:?}"),
    }
}

#[test]
fn all_engines_agree_through_the_pool() {
    let pool = SessionPool::builder()
        .workers(3)
        .default_fuel(FUEL)
        .warmup(sources::shapes())
        .build()
        .expect("warmup compiles");
    let source = "letrec even (n : Int) : Bool = \
                    if n = 0 then true else \
                    if n = 1 then false else even (n - 2) \
                  in even 10";
    let handles: Vec<_> = Engine::ALL
        .iter()
        .map(|&engine| pool.submit(source, engine))
        .collect();
    let outs: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("runs").observation.to_string())
        .collect();
    assert!(outs.iter().all(|o| o == "true"), "{outs:?}");
}

#[test]
fn shutdown_drains_already_submitted_jobs() {
    // Graceful shutdown: closing the queue lets the workers finish
    // every job already in it; every handle resolves.
    let pool = SessionPool::builder()
        .workers(2)
        .default_fuel(FUEL)
        .build()
        .expect("builds");
    let handles = pool.submit_batch(
        (0..16).map(|k| format!("let inc = fun x => x + {k} in (inc 1 : Int)")),
        Engine::MachineS,
    );
    let stats = pool.shutdown();
    assert_eq!(stats.jobs(), 16);
    for (k, handle) in handles.into_iter().enumerate() {
        let out = handle.wait().expect("drained before shutdown");
        assert_eq!(out.observation.to_string(), (k as i64 + 1).to_string());
    }
}

#[test]
#[should_panic(expected = "at least 1 worker")]
fn zero_worker_pools_are_rejected() {
    let _ = SessionPool::builder().workers(0).build();
}
