//! Integration tests for the append-only slab base behind epoch
//! promotion: appending a session's overlay to its base's shared slab
//! ([`Session::freeze`]) must be observationally identical to
//! rebuilding the base from scratch ([`Session::freeze_detached`] —
//! the old clone-on-promote semantics), and readers pinned to an old
//! watermark must be undisturbed by a writer appending new epochs to
//! the same slab underneath them.

use std::sync::{Arc, Barrier};

use bc_testkit::sources;
use blame_coercion::{Engine, FrozenBase, RunError, Session};

const FUEL: u64 = 50_000;

/// Outcome fingerprint: observation (including blame labels), step
/// count, and typed errors with their step counts — the full
/// observable behaviour, none of the sharing metrics.
fn fingerprint(session: &Session, source: &str) -> String {
    let program = match session.compile(source) {
        Ok(p) => p,
        Err(d) => return format!("compile error: {}", d.message),
    };
    match session.run_with_fuel(&program, Engine::MachineS, FUEL) {
        Ok(r) => format!("{} in {} steps", r.observation, r.steps),
        Err(RunError::FuelExhausted { steps, .. }) => format!("fuel exhausted at {steps}"),
        Err(RunError::IllTyped(d)) => format!("ill typed: {}", d.message),
    }
}

fn session_over(base: Option<&Arc<FrozenBase>>) -> Session {
    let builder = Session::builder().default_fuel(FUEL);
    match base {
        Some(base) => builder.base(Arc::clone(base)).build(),
        None => builder.build(),
    }
}

#[test]
fn append_promotion_matches_refreeze_promotion() {
    // Equivalence acceptance: growing a base by appending each
    // phase's overlay to the shared slab must agree with rebuilding a
    // detached base at every step — same node/verdict/pair counts
    // (ids are dense, so equal counts over identical interning order
    // means identical ids) and byte-identical run outcomes — across
    // 4 append-promotions of a drifting workload.
    const ROTATE: usize = 48;
    let batch = sources::drifting(0xE9_0C47, 5 * ROTATE, ROTATE);
    let mut appended: Option<Arc<FrozenBase>> = None;
    let mut detached: Option<Arc<FrozenBase>> = None;
    for (phase, chunk) in batch.chunks(ROTATE).enumerate() {
        let via_append = session_over(appended.as_ref());
        let via_refreeze = session_over(detached.as_ref());
        let append_outcomes: Vec<String> =
            chunk.iter().map(|s| fingerprint(&via_append, s)).collect();
        let refreeze_outcomes: Vec<String> = chunk
            .iter()
            .map(|s| fingerprint(&via_refreeze, s))
            .collect();
        assert_eq!(
            append_outcomes, refreeze_outcomes,
            "phase {phase}: append and re-freeze lineages diverged"
        );
        assert!(
            append_outcomes.iter().all(|f| !f.contains("compile error")),
            "drifting sources must compile: {append_outcomes:?}"
        );

        // A program compiled *before* the freeze must adopt into a
        // session built over the appended epoch — the no-recheck
        // provenance path promotion relies on.
        let probe = via_append.compile(&chunk[0]).expect("compiles");
        let probe_outcome = via_append
            .run_with_fuel(&probe, Engine::MachineS, FUEL)
            .expect("probe runs")
            .observation
            .to_string();

        let next_appended = via_append.freeze();
        let next_detached = via_refreeze.freeze_detached();
        assert_eq!(next_appended.type_nodes(), next_detached.type_nodes());
        assert_eq!(
            next_appended.coercion_nodes(),
            next_detached.coercion_nodes()
        );
        assert_eq!(next_appended.verdicts(), next_detached.verdicts());
        assert_eq!(
            next_appended.compose_pairs(),
            next_detached.compose_pairs(),
            "phase {phase}: slab-append lost or duplicated compose pairs"
        );
        if let Some(prev) = &appended {
            assert!(
                next_appended.extends(prev),
                "an append-freeze must extend the base it grew over"
            );
            assert!(
                !next_detached.extends(prev),
                "a detached freeze roots a fresh id-space"
            );
        }

        let over_next = session_over(Some(&next_appended));
        let adopted = over_next
            .adopt(&probe)
            .expect("pre-freeze programs adopt into the appended epoch");
        assert_eq!(
            over_next
                .run_with_fuel(&adopted, Engine::MachineS, FUEL)
                .expect("adopted probe runs")
                .observation
                .to_string(),
            probe_outcome
        );

        appended = Some(next_appended);
        detached = Some(next_detached);
    }
}

#[test]
fn readers_over_a_pinned_epoch_are_undisturbed_by_appending_writers() {
    // Concurrency acceptance: 4 reader threads doing id lookups and
    // relational queries (every compile probes the frozen node index
    // and verdict table; every run resolves ids) against a pinned
    // epoch view, racing a writer that appends 4 new epochs to the
    // *same slab* underneath them. Readers are below their watermark
    // for the whole race, so every outcome must match the sequential
    // baseline byte for byte.
    const READERS: usize = 4;
    const REPS: usize = 3;
    let warm = session_over(None);
    for source in sources::shapes() {
        let program = warm.compile(&source).expect("warmup compiles");
        let _ = warm.run_with_fuel(&program, Engine::MachineS, FUEL);
    }
    let base = warm.freeze();
    let batch = sources::mixed(0x00C0_FFEE, 64);
    let baseline: Vec<String> = {
        let session = session_over(Some(&base));
        batch.iter().map(|s| fingerprint(&session, s)).collect()
    };

    let start = Arc::new(Barrier::new(READERS + 1));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let base = Arc::clone(&base);
            let batch = batch.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                // A fresh overlay session per rep: every rep re-probes
                // the shared slab's indices from scratch mid-append.
                let mut first: Option<Vec<String>> = None;
                for _ in 0..REPS {
                    let session = session_over(Some(&base));
                    let outcomes: Vec<String> =
                        batch.iter().map(|s| fingerprint(&session, s)).collect();
                    match &first {
                        None => first = Some(outcomes),
                        Some(f) => assert_eq!(&outcomes, f, "reader outcomes drifted mid-race"),
                    }
                }
                first.expect("at least one rep ran")
            })
        })
        .collect();

    // The writer: 4 append-promotions chained over the readers' base,
    // each appending a drifted overlay above the pinned watermark.
    start.wait();
    let drift = sources::drifting(0x5EED_5EED, 4 * 32, 32);
    let mut current = Arc::clone(&base);
    for chunk in drift.chunks(32) {
        let writer = session_over(Some(&current));
        for source in chunk {
            let program = writer.compile(source).expect("drift compiles");
            let _ = writer.run_with_fuel(&program, Engine::MachineS, FUEL);
        }
        let next = writer.freeze();
        assert!(next.extends(&current));
        assert!(next.extends(&base), "every epoch extends the pinned root");
        current = next;
    }
    assert!(
        current.coercion_nodes() > base.coercion_nodes(),
        "the writer must have appended real overlay nodes"
    );

    for reader in readers {
        let outcomes = reader.join().expect("reader thread");
        assert_eq!(outcomes, baseline);
    }
}
