//! End-to-end integration tests across all workspace crates:
//! GTLC source → λB → λC → λS → six execution engines (E20 of
//! DESIGN.md), through the session-centric API.

use bc_syntax::Constant;
use blame_coercion::translate::bisim::Observation;
use blame_coercion::{Engine, Session};

const FUEL: u64 = 5_000_000;

/// A corpus of gradually-typed programs with their expected results.
fn corpus() -> Vec<(&'static str, &'static str, Observation)> {
    use Observation::Constant as K;
    vec![
        ("arith", "1 + 2 * 3", K(Constant::Int(7))),
        (
            "static_parity",
            "letrec even (n : Int) : Bool = \
               if n = 0 then true else \
               if n = 1 then false else even (n - 2) \
             in even 100",
            K(Constant::Bool(true)),
        ),
        (
            "dynamic_parity",
            "letrec even (n : ?) : ? = \
               if (n : Int) = 0 then true else \
               if (n : Int) = 1 then false else even ((n : Int) - 2) \
             in (even 101 : Bool)",
            K(Constant::Bool(false)),
        ),
        (
            "higher_order",
            "let twice = fun (f : Int -> Int) => fun (x : Int) => f (f x) in \
             let inc = fun x => x + 1 in \
             twice (inc : Int -> Int) 40",
            K(Constant::Int(42)),
        ),
        (
            "boundary_crossing",
            "let dyn_add = fun a => fun b => a + b in \
             (dyn_add 20 22 : Int)",
            K(Constant::Int(42)),
        ),
        (
            "deep_wrapping",
            "let id = fun (x : Int) => x in \
             let wrap = fun (f : ?) => (f : Int -> Int) in \
             wrap (wrap (wrap (id : ?))) 42",
            K(Constant::Int(42)),
        ),
        (
            "ackermann_small",
            "letrec ack2 (n : Int) : Int = \
               if n = 0 then 1 else 2 * ack2 (n - 1) \
             in ack2 10",
            K(Constant::Int(1024)),
        ),
    ]
}

#[test]
fn all_engines_agree_on_the_corpus() {
    // The whole corpus shares one session — exactly the server shape
    // the Session API exists for.
    let session = Session::builder().default_fuel(FUEL).build();
    for (name, source, expected) in corpus() {
        let program = session
            .compile(source)
            .unwrap_or_else(|e| panic!("{name} failed to compile:\n{}", e.render(source)));
        for engine in Engine::ALL {
            let got = session
                .run(&program, engine)
                .unwrap_or_else(|e| panic!("{name} on {engine}: {e}"))
                .observation;
            assert_eq!(got, expected, "{name} on {engine}");
        }
    }
}

#[test]
fn blaming_programs_blame_the_same_label_everywhere() {
    let session = Session::builder().default_fuel(FUEL).build();
    let sources = [
        "let f = fun x => x + 1 in f true",
        "let f = ((fun x => true) : ?) in (f : Int -> Int) 1 + 1",
        "((1 : ?) : Bool)",
        "let apply = fun (f : ? -> ?) => f 1 in \
         (apply ((fun (b : Bool) => b) : ? -> ?) : Bool)",
    ];
    for source in sources {
        let program = session
            .compile(source)
            .unwrap_or_else(|e| panic!("failed to compile:\n{}", e.render(source)));
        let mut labels = Vec::new();
        for engine in Engine::ALL {
            match session
                .run(&program, engine)
                .expect("completes")
                .observation
            {
                Observation::Blame(p) => labels.push(p),
                other => panic!("expected blame on {engine} for {source:?}, got {other}"),
            }
        }
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "engines blamed different labels for {source:?}: {labels:?}"
        );
        // And every blamed label maps back to a source span.
        assert!(program.explain_blame(labels[0]).is_some());
    }
}

#[test]
fn lockstep_holds_for_compiled_programs() {
    let session = Session::builder().default_fuel(FUEL).build();
    for (name, source, _) in corpus() {
        let program = session.compile(source).expect(name);
        let b = session.run(&program, Engine::LambdaB).expect(name);
        let c = session.run(&program, Engine::LambdaC).expect(name);
        assert_eq!(b.steps, c.steps, "{name}: λB and λC must run in lockstep");
    }
}

#[test]
fn space_stays_bounded_end_to_end() {
    // Compile the boundary-crossing loop from source and check the λS
    // machine runs it in bounded space while λB leaks.
    let session = Session::builder().default_fuel(FUEL).build();
    let source = |n: i64| {
        format!(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop {n}"
        )
    };
    let small = session.compile(&source(8)).expect("compiles");
    let large = session.compile(&source(512)).expect("compiles");
    let s_small = session
        .run(&small, Engine::MachineS)
        .expect("runs")
        .metrics
        .unwrap();
    let s_large = session
        .run(&large, Engine::MachineS)
        .expect("runs")
        .metrics
        .unwrap();
    assert_eq!(
        s_small.peak_frames, s_large.peak_frames,
        "λS machine must run boundary-crossing tail calls in constant space"
    );
    let b_small = session
        .run(&small, Engine::MachineB)
        .expect("runs")
        .metrics
        .unwrap();
    let b_large = session
        .run(&large, Engine::MachineB)
        .expect("runs")
        .metrics
        .unwrap();
    assert!(
        b_large.peak_cast_frames > b_small.peak_cast_frames + 400,
        "λB machine must exhibit the leak ({} vs {})",
        b_small.peak_cast_frames,
        b_large.peak_cast_frames
    );
}

#[test]
fn compile_errors_carry_spans() {
    let session = Session::new();
    for bad in [
        "1 +",
        "fun (x : ) => x",
        "1 + true",
        "(x)",
        "if 1 then 2 else 3",
    ] {
        let err = session.compile(bad).expect_err(bad);
        let rendered = err.render(bad);
        assert!(
            rendered.contains('^'),
            "diagnostic lacks a caret:\n{rendered}"
        );
    }
}
