//! Property tests for the interned front end: on random programs —
//! well-typed *and* ill-typed — every interned checker agrees with its
//! tree oracle, verdict for verdict, type for type, error for error.
//!
//! * λB: `type_of_interned ≡ type_of`;
//! * λC: `type_of_interned ≡ type_of` (through coercion endpoint
//!   synthesis on ids);
//! * λS: `styping::type_of_interned(compile_term(M)) ≡ type_of(M)` —
//!   the machine-ready IR is checked directly, never decompiled;
//! * GTLC: `elaborate_in ≡ elaborate` — same λB term, same type, same
//!   blame spans, and byte-identical `Diagnostic`s on rejection.
//!
//! Each case runs its comparison twice against the same arena, so the
//! warm path (every verdict a memo hit, every annotation already
//! interned) is exercised as densely as the cold one.

use bc_gtlc::ast::{Expr, ExprKind};
use bc_gtlc::diagnostics::Span;
use bc_gtlc::{elaborate, elaborate_in};
use bc_syntax::{BaseType, Ground, Label, Op, Type, TypeArena};
use bc_testkit::Gen;
use proptest::prelude::*;

/// A deterministic chooser for structural decisions the testkit `Gen`
/// does not expose (mutation shape, surface-expression shape).
struct Chooser(u64);

impl Chooser {
    fn new(seed: u64) -> Chooser {
        Chooser(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() >> 33) as usize % n
    }

    fn flip(&mut self) -> bool {
        self.pick(2) == 0
    }
}

fn gi() -> Ground {
    Ground::Base(BaseType::Int)
}

fn gb() -> Ground {
    Ground::Base(BaseType::Bool)
}

// ---------------------------------------------------------------------
// λB
// ---------------------------------------------------------------------

/// A λB term that is ill-typed by construction (each shape trips a
/// different rule of the checker).
fn mangled_b(chooser: &mut Chooser, gen: &mut Gen) -> bc_lambda_b::Term {
    use bc_lambda_b::Term;
    let ty = gen.ty(1);
    let well = gen.term_b(&ty, 2);
    let p = Label::new(97);
    match chooser.pick(6) {
        // Applying a non-function.
        0 => Term::int(1).app(well),
        // Operator argument of the wrong base type.
        1 => Term::op2(Op::Add, Term::bool(true), well),
        // Non-boolean condition.
        2 => Term::ite(Term::int(0), well.clone(), well),
        // Cast whose source disagrees with the subject.
        3 => well.cast(Type::fun(Type::INT, Type::BOOL), p, Type::DYN),
        // Cast between incompatible types.
        4 => Term::int(1).cast(Type::INT, p, Type::BOOL),
        // Unbound variable under a binder.
        _ => Term::let_("x", well, Term::var("nowhere")),
    }
}

fn assert_b_equivalent(term: &bc_lambda_b::Term, types: &mut TypeArena) {
    let tree = bc_lambda_b::typing::type_of(term);
    let interned = bc_lambda_b::typing::type_of_interned(term, types);
    match (tree, interned) {
        (Ok(t), Ok(id)) => assert_eq!(types.resolve(id), t, "type of {term}"),
        (Err(a), Err(b)) => assert_eq!(a, b, "error on {term}"),
        (tree, interned) => {
            panic!("verdicts diverged on {term}: tree {tree:?}, interned {interned:?}")
        }
    }
}

// ---------------------------------------------------------------------
// λC
// ---------------------------------------------------------------------

/// A λC term that is ill-typed by construction (including the
/// `⊥`-coercion paths the synthesising checker cannot reach).
fn mangled_c(chooser: &mut Chooser, gen: &mut Gen) -> bc_lambda_c::Term {
    use bc_lambda_c::{Coercion, Term};
    let ty = gen.ty(1);
    let well_b = gen.term_b(&ty, 2);
    let well = bc_translate::term_b_to_c(&well_b);
    let p = Label::new(97);
    match chooser.pick(6) {
        0 => Term::int(1).app(well),
        1 => Term::op2(Op::Add, Term::bool(true), well),
        2 => Term::ite(Term::int(0), well.clone(), well),
        // Coercion whose source disagrees with the subject.
        3 => Term::bool(true).coerce(Coercion::inj(gi())),
        // A ⊥ coercion on an incompatible subject (exercises the
        // relational `check` and the BadCoercion error).
        4 => Term::bool(true).coerce(Coercion::fail(gi(), p, gb())),
        // A well-typed ⊥ composition (exercises the representative
        // target on the Ok path) applied to a bad argument.
        _ => Term::int(1).coerce(Coercion::fail(gi(), p, gb())).app(well),
    }
}

fn assert_c_equivalent(term: &bc_lambda_c::Term, types: &mut TypeArena) {
    let tree = bc_lambda_c::typing::type_of(term);
    let interned = bc_lambda_c::typing::type_of_interned(term, types);
    match (tree, interned) {
        (Ok(t), Ok(id)) => assert_eq!(types.resolve(id), t, "type of {term}"),
        (Err(a), Err(b)) => assert_eq!(a, b, "error on {term}"),
        (tree, interned) => {
            panic!("verdicts diverged on {term}: tree {tree:?}, interned {interned:?}")
        }
    }
}

// ---------------------------------------------------------------------
// λS (compiled IR)
// ---------------------------------------------------------------------

/// A λS term that is ill-typed by construction.
fn mangled_s(chooser: &mut Chooser, gen: &mut Gen) -> bc_core::Term {
    use bc_core::{SpaceCoercion, Term};
    let ty = gen.ty(1);
    let well = gen.term_s(&ty, 2);
    let p = Label::new(97);
    match chooser.pick(5) {
        0 => Term::int(1).app(well),
        1 => Term::op2(Op::Add, Term::bool(true), well),
        2 => Term::ite(Term::int(0), well.clone(), well),
        3 => Term::bool(true).coerce(SpaceCoercion::inj(
            bc_core::GroundCoercion::IdBase(BaseType::Int),
            gi(),
        )),
        _ => Term::bool(true).coerce(SpaceCoercion::fail(gi(), p, gb())),
    }
}

fn assert_s_equivalent(term: &bc_core::Term, ctx: &mut bc_core::CompileCtx) {
    let compiled = ctx.compile(term);
    let tree = bc_core::typing::type_of(term);
    let interned = bc_core::styping::type_of_interned(&compiled, &ctx.arena, &mut ctx.types);
    match (tree, interned) {
        (Ok(t), Ok(id)) => assert_eq!(ctx.types.resolve(id), t, "type of {term}"),
        (Err(a), Err(b)) => assert_eq!(a, b, "error on {term}"),
        (tree, interned) => {
            panic!("verdicts diverged on {term}: tree {tree:?}, interned {interned:?}")
        }
    }
}

// ---------------------------------------------------------------------
// GTLC surface expressions
// ---------------------------------------------------------------------

/// A random surface expression — deliberately *not* restricted to
/// well-typed shapes: unbound variables, inconsistent ascriptions,
/// non-function applications, and bad operator arguments all occur, so
/// the diagnostic paths are compared as densely as the success paths.
struct ExprGen {
    chooser: Chooser,
    offset: usize,
}

impl ExprGen {
    fn new(seed: u64) -> ExprGen {
        ExprGen {
            chooser: Chooser::new(seed),
            offset: 0,
        }
    }

    /// Every node gets a distinct span, so diagnostics are traceable
    /// to the node that raised them (and span equality is meaningful).
    fn span(&mut self) -> Span {
        let at = self.offset;
        self.offset += 2;
        Span::new(at, at + 1)
    }

    fn ty(&mut self, depth: usize) -> Type {
        match self.chooser.pick(if depth == 0 { 3 } else { 4 }) {
            0 => Type::INT,
            1 => Type::BOOL,
            2 => Type::DYN,
            _ => Type::fun(self.ty(depth - 1), self.ty(depth - 1)),
        }
    }

    fn expr(&mut self, vars: &mut Vec<String>, depth: usize) -> Expr {
        let span = self.span();
        if depth == 0 {
            let kind = match self.chooser.pick(4) {
                0 => ExprKind::Int(self.chooser.pick(9) as i64 - 4),
                1 => ExprKind::Bool(self.chooser.flip()),
                // A variable in scope when one exists…
                2 if !vars.is_empty() => ExprKind::Var(vars[self.chooser.pick(vars.len())].clone()),
                // …and occasionally one that is not.
                _ => ExprKind::Var("free".to_owned()),
            };
            return Expr::new(kind, span);
        }
        let kind = match self.chooser.pick(9) {
            0 => {
                let param = format!("v{}", vars.len());
                let ty = self.ty(1);
                vars.push(param.clone());
                let body = self.expr(vars, depth - 1);
                vars.pop();
                ExprKind::Lam {
                    param,
                    ty,
                    body: body.into(),
                }
            }
            1 => ExprKind::App(
                self.expr(vars, depth - 1).into(),
                self.expr(vars, depth - 1).into(),
            ),
            2 => {
                let op = [Op::Add, Op::Sub, Op::Eq, Op::Lt][self.chooser.pick(4)];
                let args = (0..op.signature().0.len())
                    .map(|_| self.expr(vars, depth - 1))
                    .collect();
                ExprKind::Prim(op, args)
            }
            3 => ExprKind::If(
                self.expr(vars, depth - 1).into(),
                self.expr(vars, depth - 1).into(),
                self.expr(vars, depth - 1).into(),
            ),
            4 | 5 => {
                let name = format!("v{}", vars.len());
                let ty = self.chooser.flip().then(|| self.ty(1));
                let bound = self.expr(vars, depth - 1);
                vars.push(name.clone());
                let body = self.expr(vars, depth - 1);
                vars.pop();
                ExprKind::Let {
                    name,
                    ty,
                    bound: bound.into(),
                    body: body.into(),
                }
            }
            6 => {
                let name = format!("f{}", vars.len());
                let param = format!("v{}", vars.len() + 1);
                let param_ty = self.ty(1);
                let result_ty = self.ty(1);
                vars.push(name.clone());
                vars.push(param.clone());
                let fun_body = self.expr(vars, depth - 1);
                vars.pop();
                let body = self.expr(vars, depth - 1);
                vars.pop();
                ExprKind::Letrec {
                    name,
                    param,
                    param_ty,
                    result_ty,
                    fun_body: fun_body.into(),
                    body: body.into(),
                }
            }
            _ => {
                let inner = self.expr(vars, depth - 1);
                let ty = self.ty(1);
                ExprKind::Ascribe(inner.into(), ty)
            }
        };
        Expr::new(kind, span)
    }
}

fn assert_elaborations_equivalent(expr: &Expr, types: &mut TypeArena) {
    let tree = elaborate(expr);
    let interned = elaborate_in(expr, types);
    match (tree, interned) {
        (Ok(p), Ok(pi)) => {
            assert_eq!(pi.term, p.term, "elaborated terms diverged");
            assert_eq!(types.resolve(pi.ty), p.ty, "program types diverged");
            assert_eq!(pi.blame_spans, p.blame_spans, "blame spans diverged");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "diagnostics diverged"),
        (tree, interned) => {
            panic!("verdicts diverged: tree {tree:?}, interned {interned:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// λB: interned checker ≡ tree checker on generated well-typed
    /// terms, cold and warm.
    #[test]
    fn lambda_b_interned_checker_agrees(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(2);
        let term = gen.term_b(&ty, 4);
        let mut types = TypeArena::new();
        assert_b_equivalent(&term, &mut types);
        assert_b_equivalent(&term, &mut types); // warm: memo hits only
    }

    /// λB: interned checker ≡ tree checker on ill-typed terms — same
    /// `TypeError`, payload for payload.
    #[test]
    fn lambda_b_interned_checker_agrees_on_ill_typed(seed in any::<u64>()) {
        let mut chooser = Chooser::new(seed);
        let mut gen = Gen::new(seed ^ 0x9e3779b97f4a7c15);
        let term = mangled_b(&mut chooser, &mut gen);
        let mut types = TypeArena::new();
        assert_b_equivalent(&term, &mut types);
        assert_b_equivalent(&term, &mut types);
    }

    /// λC: interned checker ≡ tree checker on translated well-typed
    /// programs.
    #[test]
    fn lambda_c_interned_checker_agrees(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(2);
        let term = bc_translate::term_b_to_c(&gen.term_b(&ty, 4));
        let mut types = TypeArena::new();
        assert_c_equivalent(&term, &mut types);
        assert_c_equivalent(&term, &mut types);
    }

    /// λC: interned checker ≡ tree checker on ill-typed terms,
    /// including the `⊥`-coercion paths.
    #[test]
    fn lambda_c_interned_checker_agrees_on_ill_typed(seed in any::<u64>()) {
        let mut chooser = Chooser::new(seed);
        let mut gen = Gen::new(seed ^ 0x9e3779b97f4a7c15);
        let term = mangled_c(&mut chooser, &mut gen);
        let mut types = TypeArena::new();
        assert_c_equivalent(&term, &mut types);
        assert_c_equivalent(&term, &mut types);
    }

    /// λS: checking the compiled IR directly ≡ checking the tree term,
    /// on well-typed programs (canonical coercions by construction).
    #[test]
    fn lambda_s_compiled_checker_agrees(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(2);
        let term = gen.term_s(&ty, 4);
        let mut ctx = bc_core::CompileCtx::new();
        assert_s_equivalent(&term, &mut ctx);
        assert_s_equivalent(&term, &mut ctx);
    }

    /// λS: the compiled checker rejects ill-typed IR with the tree
    /// checker's exact error.
    #[test]
    fn lambda_s_compiled_checker_agrees_on_ill_typed(seed in any::<u64>()) {
        let mut chooser = Chooser::new(seed);
        let mut gen = Gen::new(seed ^ 0x9e3779b97f4a7c15);
        let term = mangled_s(&mut chooser, &mut gen);
        let mut ctx = bc_core::CompileCtx::new();
        assert_s_equivalent(&term, &mut ctx);
        assert_s_equivalent(&term, &mut ctx);
    }

    /// GTLC: `elaborate_in ≡ elaborate` on random surface expressions
    /// (well- and ill-typed alike), warm and cold.
    #[test]
    fn elaborations_agree(seed in any::<u64>()) {
        let mut vars = Vec::new();
        let expr = ExprGen::new(seed).expr(&mut vars, 4);
        let mut types = TypeArena::new();
        assert_elaborations_equivalent(&expr, &mut types);
        assert_elaborations_equivalent(&expr, &mut types);
    }
}

/// The corpus of concrete sources the integration tests compile —
/// `compile_in` must agree with `compile` on every one, including the
/// rejects.
#[test]
fn compile_in_agrees_with_compile_on_the_corpus() {
    let sources = [
        "1 + 2 * 3",
        "let f = fun x => x + 1 in f 41",
        "let f = fun x => x + 1 in f true",
        "letrec even (n : Int) : Bool = \
           if n = 0 then true else \
           if n = 1 then false else even (n - 2) \
         in even 10",
        "if true then 1 else (2 : ?)",
        "(fun (x : Int) => x) ((true : ?) : Int)",
        // Rejects:
        "1 + true",
        "(fun (x : Int) => x) true",
        "if 1 then 2 else 3",
        "(true : Int)",
        "x",
        "1 2",
    ];
    let mut types = TypeArena::new();
    for source in sources {
        let tree = bc_gtlc::compile(source);
        let interned = bc_gtlc::compile_in(source, &mut types);
        match (tree, interned) {
            (Ok(p), Ok(pi)) => {
                assert_eq!(pi.term, p.term, "{source}");
                assert_eq!(types.resolve(pi.ty), p.ty, "{source}");
                assert_eq!(pi.blame_spans, p.blame_spans, "{source}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{source}"),
            (tree, interned) => {
                panic!("verdicts diverged on {source}: {tree:?} vs {interned:?}")
            }
        }
    }
}
