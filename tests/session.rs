//! Integration tests for the session-centric runtime: sharing one
//! `Session` across many programs must be observationally invisible
//! (same results as per-program fresh sessions), measurably cheaper
//! (a warm session interns near-zero new state for structurally
//! similar programs), and panic-free on the run path (typed
//! `RunError` on all six engines).

use bc_testkit::Gen;
use blame_coercion::translate::bisim::Observation;
use blame_coercion::{Engine, Program, RunError, Session};

const FUEL: u64 = 50_000;

/// The observation-or-error fingerprint used to compare runs across
/// sessions. Fuel exhaustion fingerprints by its step count (so the
/// truncation point must agree too); cache/arena *metrics* are
/// deliberately excluded — a warm shared session legitimately shows
/// different reuse counters than a fresh one.
fn fingerprint(
    session: &Session,
    program: &Program,
    engine: Engine,
) -> Result<Observation, String> {
    session
        .run_with_fuel(program, engine, FUEL)
        .map(|r| r.observation)
        .map_err(|e| match e {
            RunError::FuelExhausted { steps, .. } => format!("fuel exhausted at {steps}"),
            RunError::IllTyped(d) => format!("ill typed: {}", d.message),
        })
}

#[test]
fn shared_session_runs_agree_with_fresh_sessions() {
    // The correctness half of the tentpole: a batch of generated
    // programs run in one shared session produces observations
    // identical to running each program in its own fresh session —
    // arena sharing is an optimisation, never a semantic change.
    let shared = Session::new();
    let mut checked = 0usize;
    for seed in 0..64u64 {
        let mut g = Gen::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xB1A3E));
        let ty = g.ty(1);
        let term = g.term_b(&ty, 3);
        let in_shared = match shared.load_lambda_b(term.clone(), ty.clone()) {
            Ok(p) => p,
            Err(e) => panic!("generated term must be well typed: {e}"),
        };
        let fresh = Session::new();
        let in_fresh = fresh
            .load_lambda_b(term, ty)
            .expect("generated term is well typed");
        for engine in [Engine::LambdaS, Engine::MachineS, Engine::MachineB] {
            assert_eq!(
                fingerprint(&shared, &in_shared, engine),
                fingerprint(&fresh, &in_fresh, engine),
                "shared vs fresh session diverged on {engine} (seed {seed})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 150, "property exercised only {checked} runs");
    // The shared session actually shared: across 64 generated
    // programs, repeated coercions are answered either by the |·|CS
    // normalisation memo (before they ever reach the space arena) or
    // by the hash-consing index — together they must answer more
    // probes than there are distinct nodes.
    let stats = shared.stats();
    assert_eq!(stats.programs, 64);
    assert!(
        stats.normalizer.hits + stats.coercions.node_hits > stats.coercions.nodes as u64,
        "sharing left no trace in the stats: {stats:?}"
    );
}

#[test]
fn second_similar_program_interns_near_zero_new_state() {
    // The performance half of the tentpole, end to end: compile one
    // boundary-heavy program into a session, then a structurally
    // similar one (different constants); the warm compile must add
    // zero coercion nodes and zero type nodes, where a fresh session
    // pays the full interning bill again.
    let source = |n: i64| {
        format!(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop {n}"
        )
    };
    let session = Session::new();
    session.compile(&source(64)).expect("compiles");
    let warm = session.stats();
    assert!(warm.coercions.nodes > 0, "the loop interns coercions");

    session.compile(&source(96)).expect("compiles");
    let after = session.stats();
    assert_eq!(
        after.coercions.nodes, warm.coercions.nodes,
        "warm compile interned new coercions"
    );
    assert_eq!(
        after.type_nodes, warm.type_nodes,
        "warm compile interned new types"
    );

    // A fresh session re-pays what the warm session skipped.
    let cold = Session::new();
    cold.compile(&source(96)).expect("compiles");
    let cold_stats = cold.stats();
    assert_eq!(cold_stats.coercions.nodes, warm.coercions.nodes);
    assert!(
        cold_stats.coercions.node_misses > 0,
        "the cold session must intern from scratch"
    );
}

#[test]
fn warm_recompile_and_run_is_allocation_free_end_to_end() {
    // The allocation-free-pipeline acceptance criterion: in a warm
    // session, recompiling and re-running a structurally similar
    // program performs zero tree allocations end to end — zero type
    // interns, zero coercion interns (tree or node), zero λC coercion
    // interns, zero |·|CS normalisations, and zero Rc term trees
    // built — all asserted by counters.
    let source = |n: i64| {
        format!(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop {n}"
        )
    };
    let session = Session::builder().default_fuel(10_000_000).build();
    // Cold: the first compile+run pays the interning bill once.
    let p = session.compile(&source(17)).expect("compiles");
    session.run(&p, Engine::MachineS).expect("runs");
    session.run(&p, Engine::LambdaS).expect("runs");
    let warm = session.stats();
    assert!(warm.coercions.nodes > 0 && warm.lambda_c_nodes > 0);
    assert_eq!(
        warm.tree_builds, 0,
        "even the cold compiled path must build no term tree"
    );
    assert_eq!(
        warm.coercions.tree_interns, 0,
        "the compiled pipeline must never intern a coercion tree"
    );

    // Warm: a structurally similar recompile+run adds nothing.
    let q = session.compile(&source(23)).expect("compiles");
    session.run(&q, Engine::MachineS).expect("runs");
    session.run(&q, Engine::LambdaS).expect("runs");
    let after = session.stats();
    assert_eq!(after.type_nodes, warm.type_nodes, "type interns");
    assert_eq!(after.coercions.nodes, warm.coercions.nodes, "coercions");
    assert_eq!(after.lambda_c_nodes, warm.lambda_c_nodes, "λC coercions");
    assert_eq!(
        after.normalizer.misses, warm.normalizer.misses,
        "warm |·|CS must be answered entirely from the memo"
    );
    assert!(after.normalizer.hits > warm.normalizer.hits);
    assert_eq!(
        after.type_queries.misses, warm.type_queries.misses,
        "warm front end must compute no new relational verdicts"
    );
    assert_eq!(after.coercions.tree_interns, 0);
    assert_eq!(after.tree_builds, 0, "no Rc term tree was ever built");
    assert!(
        !q.lambda_b_materialized() && !q.lambda_c_materialized() && !q.lambda_s_materialized(),
        "the handle must hold compiled IRs only"
    );
    // The trees are still *available* — materialising one is a
    // deliberate, counted act, not a hidden cost of the hot path.
    let _ = session.lambda_b(&q);
    assert_eq!(session.stats().tree_builds, 1);
}

#[test]
fn no_engine_panics_on_fuel_exhaustion() {
    // Acceptance criterion: a fuel-starved run returns
    // RunError::FuelExhausted with the real step count on all six
    // engines — no panic, no sentinel observation.
    let session = Session::new();
    let program = session
        .compile(
            "letrec loop (n : Int) : Bool = \
               if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
             in loop 1000",
        )
        .expect("compiles");
    for engine in Engine::ALL {
        for fuel in [0u64, 1, 13, 97] {
            match session.run_with_fuel(&program, engine, fuel) {
                Err(RunError::FuelExhausted { steps, .. }) => {
                    assert_eq!(
                        steps, fuel,
                        "{engine} at fuel {fuel} must report the steps it actually took"
                    );
                }
                other => panic!("{engine} at fuel {fuel}: expected FuelExhausted, got {other:?}"),
            }
        }
    }
    // A fuel-bounded *machine* run keeps its space metrics — the leak
    // stays measurable on a program that never finishes: λB piles up
    // cast frames where λS stays flat, observable at the cutoff.
    let leak = match session.run_with_fuel(&program, Engine::MachineB, 2_000) {
        Err(RunError::FuelExhausted {
            metrics: Some(m), ..
        }) => m.peak_cast_frames,
        other => panic!("expected machine FuelExhausted with metrics, got {other:?}"),
    };
    let flat = match session.run_with_fuel(&program, Engine::MachineS, 2_000) {
        Err(RunError::FuelExhausted {
            metrics: Some(m), ..
        }) => m.peak_cast_frames,
        other => panic!("expected machine FuelExhausted with metrics, got {other:?}"),
    };
    assert!(
        leak > 10 * flat.max(1),
        "λB must visibly leak at the cutoff ({leak} vs λS {flat})"
    );
    // And with enough fuel the very same program completes.
    let report = session
        .run_with_fuel(&program, Engine::MachineS, 10_000_000)
        .expect("completes");
    assert_eq!(report.observation.to_string(), "true");
}

#[test]
fn capped_session_still_answers_correctly_under_pressure() {
    // Tiny caches force evictions on both the compose cache and the
    // type-verdict tables; results must be unchanged (eviction is
    // recompute-safe by construction).
    let tight = Session::builder()
        .compose_cache_capacity(4)
        .type_memo_capacity(4)
        .default_fuel(10_000_000)
        .build();
    let roomy = Session::builder().default_fuel(10_000_000).build();
    let source = "letrec loop (n : Int) : Bool = \
                    if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
                  in loop 256";
    let p_tight = tight.compile(source).expect("compiles");
    let p_roomy = roomy.compile(source).expect("compiles");
    for engine in [Engine::LambdaS, Engine::MachineS] {
        assert_eq!(
            tight.run(&p_tight, engine).expect("runs").observation,
            roomy.run(&p_roomy, engine).expect("runs").observation,
            "{engine}"
        );
    }
    assert!(tight.stats().compose_pairs <= 4);
}
