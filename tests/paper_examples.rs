//! Worked examples taken directly from the paper's text, as
//! integration tests across the crates.

use bc_core::compose::compose;
use bc_lambda_b::eval::Outcome;
use bc_lambda_b::Term;
use bc_syntax::{
    meet, naive_subtype, pointed::pointed_naive_subtype, Ground, Label, PointedType, Type,
};
use bc_translate::b_to_s::cast_to_space;
use bc_translate::bisim::{lockstep_bc, Observation};

fn p(n: u32) -> Label {
    Label::new(n)
}

/// §2, Lemma 2 (Failure):
/// `V : A ⇒p1 G ⇒p2 ? ⇒p3 H ⇒p4 B ⟶* blame p3`.
#[test]
fn lemma2_failure() {
    let v = Term::lam("x", Type::INT, Term::var("x"));
    let a = Type::fun(Type::INT, Type::INT);
    let g = Ground::Fun.ty();
    let h = Type::BOOL;
    let m = v
        .cast(a, p(1), g.clone())
        .cast(g, p(2), Type::DYN)
        .cast(Type::DYN, p(3), h.clone())
        .cast(h, p(4), Type::BOOL);
    match bc_lambda_b::eval::run(&m, 1000).unwrap().outcome {
        Outcome::Blame(l) => assert_eq!(l, p(3)),
        other => panic!("expected blame p3, got {other:?}"),
    }
}

/// §1: "given a cast between a less-precise and a more-precise type,
/// blame always allocates to the less-precisely typed side" — the
/// slogan "well-typed programs can't be blamed".
#[test]
fn well_typed_programs_cant_be_blamed() {
    // M : A ⇒p B with A <:n B (A more precise): whatever happens,
    // blame falls on p̄ — the less precisely typed (B) side — never p.
    let a = Type::fun(Type::INT, Type::INT);
    let b = Type::dyn_fun();
    assert!(naive_subtype(&a, &b));
    let f = Term::lam("x", Type::INT, Term::var("x"));
    // Cast up, then abuse the function from the dynamic side.
    let m = f
        .cast(a, p(0), b)
        .app(Term::bool(true).cast(Type::BOOL, p(9), Type::DYN));
    match bc_lambda_b::eval::run(&m, 1000).unwrap().outcome {
        Outcome::Blame(l) => {
            assert_eq!(l, p(0).complement(), "blame must fall on the dynamic side");
        }
        other => panic!("expected blame, got {other:?}"),
    }
}

/// §5.2: the meet used by the Fundamental Property, on the paper's
/// pointed types.
#[test]
fn pointed_meet_examples() {
    // Int & ? = Int; ⊥ <:n T for all T.
    assert_eq!(meet(&Type::INT, &Type::DYN).to_type(), Some(Type::INT));
    for t in [Type::INT, Type::dyn_fun(), Type::DYN] {
        assert!(pointed_naive_subtype(
            &PointedType::Bottom,
            &PointedType::from(&t)
        ));
    }
}

/// §5.2, Lemma 20 on a concrete triple, through the `|·|BS`
/// translation and `#`.
#[test]
fn lemma20_concrete() {
    let a = Type::fun(Type::INT, Type::DYN);
    let b = Type::dyn_fun();
    let c = Type::fun(Type::DYN, Type::DYN); // = ? → ?, above A & B
    let direct = cast_to_space(&a, p(1), &b);
    let via = compose(&cast_to_space(&a, p(1), &c), &cast_to_space(&c, p(1), &b));
    assert_eq!(direct, via);
}

/// §3.1: the lockstep bisimulation on the paper's flagship workload.
#[test]
fn lockstep_on_even_odd() {
    let m = bc_lambda_b::programs::even_odd_mixed(7);
    let report = lockstep_bc(&m, 1_000_000).expect("lockstep");
    assert_eq!(
        report.observation,
        Observation::Constant(bc_syntax::Constant::Bool(false))
    );
}

/// §4: the reduction sequence (a)–(e) of the paper — two stacked
/// function coercions applied to a value — runs to the same result in
/// λC (two wrapper steps) and λS (one merged wrapper step).
#[test]
fn section4_wrapper_example() {
    use bc_lambda_c::coercion::Coercion;
    use bc_lambda_c::Term as C;
    use bc_syntax::BaseType;
    let gi = Ground::Base(BaseType::Int);
    // c1→d1 = Int?p → Int!, c2→d2 = Int! → Int?q... build the λC term
    // (V⟨c1→d1⟩⟨c2→d2⟩) W from the paper, with W = 1⟨Int!⟩.
    let c1 = Coercion::proj(gi, p(0));
    let d1 = Coercion::inj(gi);
    let c2 = Coercion::inj(gi);
    let d2 = Coercion::proj(gi, p(1));
    let v = C::lam("x", Type::INT, C::var("x"));
    let m = v
        .coerce(Coercion::fun(c1, d1))
        .coerce(Coercion::fun(c2, d2))
        .app(C::int(1));
    let rc = bc_lambda_c::eval::run(&m, 100).unwrap();
    let ms = bc_translate::term_c_to_s(&m);
    let rs = bc_core::eval::run(&ms, 100).unwrap();
    // Both converge to the bare constant 1.
    assert!(matches!(rc.outcome, bc_lambda_c::eval::Outcome::Value(ref t) if *t == C::int(1)));
    assert!(
        matches!(rs.outcome, bc_core::eval::Outcome::Value(ref t) if *t == bc_core::Term::int(1))
    );
    // And λS needed fewer β/wrapper steps than λC.
    assert!(rs.steps <= rc.steps);
}

/// §6.1: the composition the paper calls puzzling, validated through
/// the λS translation (see also `bc-baselines`).
#[test]
fn puzzling_threesome_composition() {
    use bc_baselines::threesome::{compose_labeled, from_space, LabeledType};
    use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use bc_syntax::BaseType;
    let gi = Ground::Base(BaseType::Int);
    let gb = Ground::Base(BaseType::Bool);
    let s = SpaceCoercion::proj(
        gi,
        p(7),
        Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi),
    );
    let t = SpaceCoercion::proj(gb, p(8), Intermediate::Fail(gb, p(9), Ground::Fun));
    let lhs = from_space(&compose(&s, &t));
    let rhs = compose_labeled(&from_space(&t), &from_space(&s));
    assert_eq!(lhs, rhs);
    assert_eq!(
        lhs,
        LabeledType::Fail {
            blame: p(8),
            ground: gi,
            proj: Some(p(7))
        }
    );
}
