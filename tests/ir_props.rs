//! Property tests for the compiled term IRs that carry the
//! allocation-free pipeline:
//!
//! * **λS engine equivalence** — [`bc_core::eval::run_compiled`] (the
//!   production engine, driven entirely on interned ids) agrees with
//!   the tree small-step [`bc_core::eval::run`] (the oracle) on
//!   random well-typed programs: same observation, same step count,
//!   same space peaks, and the same fuel-exhaustion fingerprint when
//!   the bound cuts a run short. Checked cold (fresh arenas per
//!   program) and warm (one shared [`CompileCtx`] across the whole
//!   run, where every intern and compose is a cache hit).
//! * **`decompile ∘ compile = id`** for the interned λB term IR
//!   ([`bc_lambda_b::bterm`]) and the interned λC term IR
//!   ([`bc_lambda_c::cterm`]), again cold and warm — the `Program`
//!   handles of the session API hold only the compiled forms and
//!   rebuild trees lazily through exactly these decompilers, so the
//!   round trip is what keeps the lazy tree views honest.

use bc_core::eval::{run, run_compiled, RunError};
use bc_core::CompileCtx;
use bc_lambda_b::bterm;
use bc_lambda_c::cterm;
use bc_lambda_c::CArena;
use bc_syntax::TypeArena;
use bc_testkit::Gen;
use bc_translate::bisim::{observe_s, observe_s_compiled};
use bc_translate::term_b_to_c;
use proptest::prelude::*;

/// Enough fuel that most generated programs converge, small enough
/// that the divergent ones exercise the fuel-exhaustion arm cheaply.
const FUEL: u64 = 512;

/// Runs one generated λS program through both engines against the
/// given context and asserts the full fingerprint matches: outcome
/// observation, step count, and both space peaks — or, when fuel runs
/// out, the identical cutoff accounting on both sides.
fn assert_engines_agree(gen: &mut Gen, ctx: &mut CompileCtx) {
    let ty = gen.ty(2);
    let (tree, compiled) = gen.compiled_s(ctx, &ty, 4);
    let oracle = run(&tree, FUEL);
    let subject = run_compiled(
        &compiled,
        FUEL,
        &mut ctx.arena,
        &mut ctx.cache,
        &mut ctx.types,
    );
    match (oracle, subject) {
        (Ok(t), Ok(c)) => {
            assert_eq!(
                observe_s(&t.outcome),
                observe_s_compiled(&c.outcome, &ctx.arena),
                "engines disagree on the outcome of {tree}"
            );
            assert_eq!(t.steps, c.steps, "step counts diverge on {tree}");
            assert_eq!(t.peak_size, c.peak_size, "peak sizes diverge on {tree}");
            assert_eq!(
                t.peak_coercion_size, c.peak_coercion_size,
                "peak coercion sizes diverge on {tree}"
            );
        }
        (
            Err(RunError::FuelExhausted {
                steps: ts,
                peak_size: tp,
                peak_coercion_size: tc,
            }),
            Err(RunError::FuelExhausted {
                steps: cs,
                peak_size: cp,
                peak_coercion_size: cc,
            }),
        ) => {
            assert_eq!(
                (ts, tp, tc),
                (cs, cp, cc),
                "cutoff accounting diverges on {tree}"
            );
        }
        (oracle, subject) => panic!(
            "engines disagree on termination of {tree}: tree {oracle:?} vs compiled {subject:?}"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Compiled λS evaluation ≡ tree small-step, cold: every program
    /// gets fresh arenas, so each intern and compose happens for the
    /// first time.
    #[test]
    fn compiled_eval_matches_tree_oracle_cold(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let mut ctx = CompileCtx::new();
        assert_engines_agree(&mut gen, &mut ctx);
    }

    /// Compiled λS evaluation ≡ tree small-step, warm: eight programs
    /// share one context, so later ones run almost entirely on memo
    /// hits — the steady state a warm `Session` (and every pool
    /// worker over a frozen base) lives in.
    #[test]
    fn compiled_eval_matches_tree_oracle_warm(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let mut ctx = CompileCtx::new();
        for _ in 0..8 {
            assert_engines_agree(&mut gen, &mut ctx);
        }
    }

    /// λB: `decompile ∘ compile = id`, cold and warm. The second
    /// compile of the same term must also intern nothing new — the
    /// arena watermark is the session layer's id-offset contract.
    #[test]
    fn bterm_compile_round_trips(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let mut types = TypeArena::new();
        for _ in 0..4 {
            let ty = gen.ty(2);
            let term = gen.term_b(&ty, 4);
            let cold = bterm::compile(&term, &mut types);
            prop_assert_eq!(&bterm::decompile(&cold, &types), &term);
            let watermark = types.len();
            let warm = bterm::compile(&term, &mut types);
            prop_assert_eq!(&bterm::decompile(&warm, &types), &term);
            prop_assert_eq!(types.len(), watermark, "warm recompile interned a type");
        }
    }

    /// λC: `decompile ∘ compile = id` on translated λB terms, cold
    /// and warm, with the warm recompile interning nothing into
    /// either the λC coercion arena or the type arena.
    #[test]
    fn cterm_compile_round_trips(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let mut arena = CArena::new();
        let mut types = TypeArena::new();
        for _ in 0..4 {
            let ty = gen.ty(2);
            let term = term_b_to_c(&gen.term_b(&ty, 4));
            let cold = cterm::compile(&term, &mut arena, &mut types);
            prop_assert_eq!(&cterm::decompile(&cold, &arena, &types), &term);
            let (cmark, tmark) = (arena.len(), types.len());
            let warm = cterm::compile(&term, &mut arena, &mut types);
            prop_assert_eq!(&cterm::decompile(&warm, &arena, &types), &term);
            prop_assert_eq!(arena.len(), cmark, "warm recompile interned a coercion");
            prop_assert_eq!(types.len(), tmark, "warm recompile interned a type");
        }
    }
}
