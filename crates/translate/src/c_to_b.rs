//! The reverse translation `|·|CB` from λC to λB (Figure 4) — novel in
//! the paper.
//!
//! A single coercion may contain many blame labels but a cast carries
//! only one, so a coercion translates to a *sequence* of casts `Z`:
//!
//! ```text
//! |id_A|  = []
//! |G!|    = [G ⇒• ?]
//! |G?p|   = [? ⇒p G]
//! |c → d| = (rev-compl(|c|) → B) ++ (A' → |d|)   where c→d : A→B ⇒ A'→B'
//! |c ; d| = |c| ++ |d|
//! |⊥GpH : A ⇒ B| = [A ⇒• G, G ⇒• ?, ? ⇒p H, H ⇒• B]
//! ```
//!
//! `rev-compl(Z)` reverses the sequence and complements every label;
//! `Z → B` (resp. `A → Z`) maps each cast over the function-type
//! constructor on the right (resp. left). `•` is the bullet label for
//! casts that can never allocate blame.
//!
//! Because `⊥GpH : A ⇒ B` leaves `B` unconstrained, nested failures
//! can demand a final cast `H ⇒• B` with `H ≁ B`; we then route
//! through `?` (`H ⇒• ? ⇒• B`), which is dead code behind the blaming
//! projection `? ⇒p H` and keeps the sequence well-typed (DESIGN.md
//! §3).

use bc_lambda_b as lb;
use bc_lambda_b::term::Cast;
use bc_lambda_c as lc;
use bc_lambda_c::coercion::Coercion;
use bc_syntax::{Label, Type};

/// Translates a coercion used at type `A ⇒ B` into the equivalent
/// sequence of casts, first to last.
///
/// The endpoints must be supplied because coercions containing `⊥` do
/// not determine them (the paper's informal `⊥GpH_{A⇒B}` annotation).
///
/// # Panics
///
/// Panics if `c` does not check at `A ⇒ B`.
pub fn coercion_to_casts(c: &Coercion, source: &Type, target: &Type) -> Vec<Cast> {
    assert!(
        c.check(source, target),
        "coercion {c} does not coerce {source} ⇒ {target}"
    );
    translate(c, source, target)
}

fn translate(c: &Coercion, source: &Type, target: &Type) -> Vec<Cast> {
    let bullet = Label::bullet();
    match c {
        Coercion::Id(_) => Vec::new(),
        Coercion::Inj(_) => vec![Cast::new(source.clone(), bullet, Type::Dyn)],
        Coercion::Proj(g, p) => vec![Cast::new(Type::Dyn, *p, g.ty())],
        Coercion::Fun(cd, cc) => {
            // c→d : A1→B1 ⇒ A2→B2 with cd : A2 ⇒ A1 and cc : B1 ⇒ B2.
            let (a1, b1) = match source {
                Type::Fun(a, b) => ((**a).clone(), (**b).clone()),
                other => unreachable!("function coercion at non-function source {other}"),
            };
            let (a2, b2) = match target {
                Type::Fun(a, b) => ((**a).clone(), (**b).clone()),
                other => unreachable!("function coercion at non-function target {other}"),
            };
            let zc = translate(cd, &a2, &a1);
            let zd = translate(cc, &b1, &b2);
            let mut out: Vec<Cast> = rev_compl(zc)
                .into_iter()
                .map(|k| arrow_right(k, &b1))
                .collect();
            out.extend(zd.into_iter().map(|k| arrow_left(&a2, k)));
            out
        }
        Coercion::Seq(c1, c2) => {
            let middle = middle_type(c1, c2, source, target);
            let mut out = translate(c1, source, &middle);
            out.extend(translate(c2, &middle, target));
            out
        }
        Coercion::Fail(g, p, h) => {
            let mut out = vec![
                Cast::new(source.clone(), bullet, g.ty()),
                Cast::new(g.ty(), bullet, Type::Dyn),
                Cast::new(Type::Dyn, *p, h.ty()),
            ];
            if h.ty().compatible(target) {
                out.push(Cast::new(h.ty(), bullet, target.clone()));
            } else {
                // Dead code behind the blaming projection; route
                // through ? to stay well-typed.
                out.push(Cast::new(h.ty(), bullet, Type::Dyn));
                out.push(Cast::new(Type::Dyn, bullet, target.clone()));
            }
            out
        }
    }
}

/// Reverses a cast sequence and complements every label (the `Z̄`
/// operation of Figure 4).
fn rev_compl(z: Vec<Cast>) -> Vec<Cast> {
    z.into_iter()
        .rev()
        .map(|k| Cast::new(k.target, k.label.complement(), k.source))
        .collect()
}

/// `Z → B`: maps a cast `Ai ⇒p Aj` to `(Ai→B) ⇒p (Aj→B)`.
fn arrow_right(k: Cast, b: &Type) -> Cast {
    Cast::new(
        Type::fun(k.source, b.clone()),
        k.label,
        Type::fun(k.target, b.clone()),
    )
}

/// `A → Z`: maps a cast `Bi ⇒p Bj` to `(A→Bi) ⇒p (A→Bj)`.
fn arrow_left(a: &Type, k: Cast) -> Cast {
    Cast::new(
        Type::fun(a.clone(), k.source),
        k.label,
        Type::fun(a.clone(), k.target),
    )
}

/// Picks the middle type of a composition `c ; d : A ⇒ C`.
fn middle_type(c: &Coercion, d: &Coercion, source: &Type, target: &Type) -> Type {
    if let Some((_, m)) = c.synthesize() {
        return m;
    }
    if let Some((m, _)) = d.synthesize() {
        return m;
    }
    let _ = (source, target);
    // Both sides contain ⊥: any type satisfying d's source constraint
    // works; use its hint.
    source_hint(d)
}

/// A type satisfying a coercion's source constraints (used only when
/// synthesis fails, i.e. in the presence of `⊥`).
fn source_hint(c: &Coercion) -> Type {
    match c {
        Coercion::Id(a) => a.clone(),
        Coercion::Inj(g) | Coercion::Fail(g, _, _) => g.ty(),
        Coercion::Proj(_, _) => Type::Dyn,
        Coercion::Seq(c1, _) => source_hint(c1),
        Coercion::Fun(cd, cc) => Type::fun(target_hint(cd), source_hint(cc)),
    }
}

/// A type satisfying a coercion's target constraints.
fn target_hint(c: &Coercion) -> Type {
    match c {
        Coercion::Id(a) => a.clone(),
        Coercion::Inj(_) => Type::Dyn,
        Coercion::Proj(g, _) => g.ty(),
        Coercion::Fail(_, _, h) => h.ty(),
        Coercion::Seq(_, c2) => target_hint(c2),
        Coercion::Fun(cd, cc) => Type::fun(source_hint(cd), target_hint(cc)),
    }
}

/// Translates a λC term to a λB term, replacing each coercion
/// application by the corresponding sequence of casts.
///
/// # Errors
///
/// Returns a λC [`lc::typing::TypeError`] if the input is ill-typed
/// (endpoint types are needed to expand coercions).
pub fn term_c_to_b(term: &lc::Term) -> Result<lb::Term, lc::typing::TypeError> {
    go(&mut Vec::new(), term)
}

fn go(
    env: &mut Vec<(bc_syntax::Name, Type)>,
    term: &lc::Term,
) -> Result<lb::Term, lc::typing::TypeError> {
    Ok(match term {
        lc::Term::Const(k) => lb::Term::Const(*k),
        lc::Term::Op(op, args) => lb::Term::Op(
            *op,
            args.iter()
                .map(|a| go(env, a))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        lc::Term::Var(x) => lb::Term::Var(x.clone()),
        lc::Term::Lam(x, ty, b) => {
            env.push((x.clone(), ty.clone()));
            let b2 = go(env, b);
            env.pop();
            lb::Term::Lam(x.clone(), ty.clone(), b2?.into())
        }
        lc::Term::App(a, b) => lb::Term::App(go(env, a)?.into(), go(env, b)?.into()),
        lc::Term::Coerce(m, c) => {
            let src = lc::typing::type_of_in(env, m)?;
            let tgt = lc::typing::type_of_in(env, term)?;
            let casts = coercion_to_casts(c, &src, &tgt);
            let mut out = go(env, m)?;
            for k in casts {
                out = lb::Term::Cast(out.into(), k);
            }
            out
        }
        lc::Term::Blame(p, ty) => lb::Term::Blame(*p, ty.clone()),
        lc::Term::If(c, t, e) => {
            lb::Term::If(go(env, c)?.into(), go(env, t)?.into(), go(env, e)?.into())
        }
        lc::Term::Let(x, m, n) => {
            let m2 = go(env, m)?;
            let mt = lc::typing::type_of_in(env, m)?;
            env.push((x.clone(), mt));
            let n2 = go(env, n);
            env.pop();
            lb::Term::Let(x.clone(), m2.into(), n2?.into())
        }
        lc::Term::Fix(f, x, dom, cod, b) => {
            env.push((f.clone(), Type::fun(dom.clone(), cod.clone())));
            env.push((x.clone(), dom.clone()));
            let b2 = go(env, b);
            env.pop();
            env.pop();
            lb::Term::Fix(f.clone(), x.clone(), dom.clone(), cod.clone(), b2?.into())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::b_to_c::cast_to_coercion;
    use crate::c_to_s::coercion_to_space;
    use bc_syntax::{BaseType, Ground};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    /// Executable Lemma 8 on coercions: translating a coercion to a
    /// cast sequence and each cast back to a coercion yields a
    /// composite with the same canonical form.
    fn round_trips(c: &Coercion, src: &Type, tgt: &Type) {
        let casts = coercion_to_casts(c, src, tgt);
        let back = casts
            .iter()
            .map(|k| cast_to_coercion(&k.source, k.label, &k.target))
            .reduce(|acc, next| acc.seq(next))
            .unwrap_or_else(|| Coercion::id(src.clone()));
        assert_eq!(
            coercion_to_space(&back),
            coercion_to_space(c),
            "round trip of {c} at {src} ⇒ {tgt} gave {back}"
        );
    }

    #[test]
    fn identity_is_the_empty_sequence() {
        assert_eq!(
            coercion_to_casts(&Coercion::id(Type::INT), &Type::INT, &Type::INT),
            Vec::new()
        );
    }

    #[test]
    fn primitives_round_trip() {
        round_trips(&Coercion::inj(gi()), &Type::INT, &Type::DYN);
        round_trips(&Coercion::proj(gi(), p(0)), &Type::DYN, &Type::INT);
        round_trips(
            &Coercion::id(Type::dyn_fun()),
            &Type::dyn_fun(),
            &Type::dyn_fun(),
        );
    }

    #[test]
    fn function_coercions_round_trip() {
        let ii = Type::fun(Type::INT, Type::INT);
        let c = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()));
        round_trips(&c, &ii, &Type::dyn_fun());
        // Nested functions.
        let c2 = Coercion::fun(c.clone(), Coercion::id(Type::INT));
        let src = Type::fun(Type::dyn_fun(), Type::INT);
        let tgt = Type::fun(ii.clone(), Type::INT);
        round_trips(&c2, &src, &tgt);
    }

    #[test]
    fn compositions_round_trip() {
        let c = Coercion::inj(gi()).seq(Coercion::proj(gi(), p(1)));
        round_trips(&c, &Type::INT, &Type::INT);
        let c2 = Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(1)));
        round_trips(&c2, &Type::INT, &Type::BOOL);
    }

    #[test]
    fn failures_round_trip() {
        let c = Coercion::fail(gi(), p(2), Ground::Fun);
        round_trips(&c, &Type::INT, &Type::BOOL);
        round_trips(&c, &Type::INT, &Type::DYN);
    }

    #[test]
    fn failure_expansion_blames_the_projection() {
        // Lemma 2 mirror: the cast expansion of ⊥GpH blames p.
        let c = Coercion::fail(gi(), p(3), Ground::Base(BaseType::Bool));
        let m = lc::Term::int(1).coerce(c);
        let mb = term_c_to_b(&m).expect("well typed");
        assert_eq!(lb::type_of(&mb), Ok(Type::BOOL));
        match lb::eval::run(&mb, 100).unwrap().outcome {
            lb::eval::Outcome::Blame(l) => assert_eq!(l, p(3)),
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn term_translation_preserves_types_and_outcomes() {
        // A λC program and its cast expansion agree on the outcome.
        let ii = Type::fun(Type::INT, Type::INT);
        let inc = lc::Term::lam(
            "x",
            Type::INT,
            lc::Term::op2(bc_syntax::Op::Add, lc::Term::var("x"), lc::Term::int(1)),
        );
        let c = cast_to_coercion(&ii, p(0), &Type::DYN);
        let back = cast_to_coercion(&Type::DYN, p(1), &ii);
        let m = inc.coerce(c).coerce(back).app(lc::Term::int(41));
        let mb = term_c_to_b(&m).expect("well typed");
        assert_eq!(lb::type_of(&mb).unwrap(), lc::type_of(&m).unwrap());
        let rb = lb::eval::run(&mb, 10_000).unwrap().outcome;
        let rc = lc::eval::run(&m, 10_000).unwrap().outcome;
        match (rb, rc) {
            (lb::eval::Outcome::Value(vb), lc::eval::Outcome::Value(vc)) => {
                assert_eq!(vb, lb::Term::int(42));
                assert_eq!(vc, lc::Term::int(42));
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
    }
}
