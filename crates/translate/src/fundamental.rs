//! The applications of full abstraction (§5): Lemma 20 and the
//! Fundamental Property of Casts (Lemma 21).
//!
//! Siek–Wadler 2010 proved the Fundamental Property with a custom
//! bisimulation and six lemmas; with full abstraction it reduces to
//! one equation between canonical coercions (Lemma 20), which this
//! module makes executable.

use bc_core::arena::{CoercionArena, ComposeCache};
use bc_lambda_b::term::Term as BTerm;
use bc_syntax::pointed::meet_below;
use bc_syntax::{Label, Type};

use crate::b_to_s::cast_to_space;

/// Checks the *premise* of Lemmas 20/21: all three casts exist
/// (pairwise compatibility) and `A & B <:n C`.
pub fn premise_holds(a: &Type, b: &Type, c: &Type) -> bool {
    a.compatible(b) && a.compatible(c) && c.compatible(b) && meet_below(a, b, c)
}

/// Executable Lemma 20: if `A & B <:n C` then
/// `|A ⇒p B|BS = |A ⇒p C|BS # |C ⇒p B|BS`.
///
/// Returns `None` when the premise fails (nothing to check), and
/// `Some(equal)` otherwise.
pub fn lemma20(a: &Type, b: &Type, c: &Type, p: Label) -> Option<bool> {
    let mut arena = CoercionArena::new();
    let mut cache = ComposeCache::new();
    lemma20_in(&mut arena, &mut cache, a, b, c, p)
}

/// [`lemma20`] against a caller-owned arena: both sides of the
/// equation are interned, the composition is memoized, and the final
/// comparison is an O(1) id check (hash-consing canonicity). The
/// exhaustive small-universe sweeps in the tests check thousands of
/// triples; sharing one arena across the sweep makes the structural
/// work proportional to the number of *distinct* coercions instead.
pub fn lemma20_in(
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    a: &Type,
    b: &Type,
    c: &Type,
    p: Label,
) -> Option<bool> {
    if !premise_holds(a, b, c) {
        return None;
    }
    let direct = arena.intern(&cast_to_space(a, p, b));
    let ac = arena.intern(&cast_to_space(a, p, c));
    let cb = arena.intern(&cast_to_space(c, p, b));
    let via = arena.compose(cache, ac, cb);
    Some(direct == via)
}

/// Builds the two sides of the Fundamental Property of Casts
/// (Lemma 21) for a subject term `M : A`:
/// `M : A ⇒p B` and `M : A ⇒p C ⇒p B`.
///
/// By Lemma 21 the two terms are contextually equivalent whenever
/// `A & B <:n C`; the property tests run both and compare outcomes.
pub fn fundamental_pair(m: &BTerm, a: &Type, p: Label, c: &Type, b: &Type) -> (BTerm, BTerm) {
    let single = m.clone().cast(a.clone(), p, b.clone());
    let double = m
        .clone()
        .cast(a.clone(), p, c.clone())
        .cast(c.clone(), p, b.clone());
    (single, double)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::{observe_b, Observation};
    use bc_lambda_b::eval::run;
    use bc_syntax::subtype::sample_types;

    #[test]
    fn lemma20_exhaustive_small_universe() {
        // One arena for the whole sweep: the structural work is
        // proportional to the number of distinct coercions in the
        // universe, and each check's equality is an id comparison.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let universe = sample_types(1);
        let p = Label::new(0);
        let mut checked = 0usize;
        for a in &universe {
            for b in &universe {
                for c in &universe {
                    if let Some(ok) = lemma20_in(&mut arena, &mut cache, a, b, c, p) {
                        assert!(ok, "Lemma 20 fails at A={a}, B={b}, C={c}");
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 100, "premise held only {checked} times");
        assert!(
            arena.len() < checked,
            "interning must dedup across the sweep: {} distinct coercions for {checked} checks",
            arena.len()
        );
    }

    #[test]
    fn lemma20_in_agrees_with_lemma20() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let p = Label::new(3);
        for universe in [sample_types(1)] {
            for a in &universe {
                for b in &universe {
                    for c in &universe {
                        assert_eq!(
                            lemma20(a, b, c, p),
                            lemma20_in(&mut arena, &mut cache, a, b, c, p),
                            "A={a}, B={b}, C={c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fundamental_property_on_base_values() {
        // M : Int ⇒ ? ≃ M : Int ⇒ Int ⇒ ? (meet Int & ? = Int <:n Int).
        let p = Label::new(1);
        let (single, double) =
            fundamental_pair(&BTerm::int(5), &Type::INT, p, &Type::INT, &Type::DYN);
        let o1 = observe_b(&run(&single, 100).unwrap().outcome);
        let o2 = observe_b(&run(&double, 100).unwrap().outcome);
        assert_eq!(o1, o2);
    }

    #[test]
    fn fundamental_property_on_functions() {
        // Casting a function through a mediating type preserves the
        // observable result of applying it.
        let p = Label::new(1);
        let ii = Type::fun(Type::INT, Type::INT);
        let dd = Type::dyn_fun();
        assert!(premise_holds(&ii, &dd, &ii));
        let inc = BTerm::lam(
            "x",
            Type::INT,
            BTerm::op2(bc_syntax::Op::Add, BTerm::var("x"), BTerm::int(1)),
        );
        let (single, double) = fundamental_pair(&inc, &ii, p, &ii, &dd);
        // Apply both to 1 (through a projection back to Int → Int).
        let q = Label::new(2);
        let app1 = single.cast(dd.clone(), q, ii.clone()).app(BTerm::int(1));
        let app2 = double.cast(dd.clone(), q, ii.clone()).app(BTerm::int(1));
        let o1 = observe_b(&run(&app1, 1000).unwrap().outcome);
        let o2 = observe_b(&run(&app2, 1000).unwrap().outcome);
        assert_eq!(o1, o2);
        assert_eq!(o1, Observation::Constant(bc_syntax::Constant::Int(2)));
    }

    #[test]
    fn premise_can_fail() {
        // Int & Bool = ⊥ <:n Int holds, but Int ≁ Bool: no cast.
        assert!(!premise_holds(&Type::INT, &Type::BOOL, &Type::INT));
        // A ∼ B but C unrelated to the meet: Int & ? = Int, C = Bool.
        assert!(!premise_holds(&Type::INT, &Type::DYN, &Type::BOOL));
    }
}
