//! Executable bisimulation checkers.
//!
//! * [`lockstep_bc`] — co-executes a λB term and its `|·|BC`
//!   translation, checking that *every single step* commutes with the
//!   translation (Proposition 11: the bisimulation is lockstep).
//! * [`aligned_cs`] — co-executes a λC term and its `|·|CS`
//!   translation. The bisimulation `≈` of Figure 6 is *not* lockstep:
//!   one λC step corresponds to zero or more λS steps and vice versa.
//!   We check it by comparing the two reduction traces after
//!   *normalisation* (eagerly merging adjacent coercions and erasing
//!   identity coercions — the closure of rules (i) and (ii) of
//!   Figure 6): the λS trace's distinct normal forms must appear as a
//!   subsequence of the λC trace's, and the outcomes must agree.
//! * [`Observation`] — the common observable of final values across
//!   all three calculi, used for Kleene-style outcome comparisons
//!   (Definition 6).

use bc_core as ls;
use bc_core::arena::MergeCtx;
use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use bc_lambda_b as lb;
use bc_lambda_c as lc;
use bc_syntax::{Constant, Ground, Label, Type};

use crate::b_to_c::term_b_to_c;
use crate::c_to_s::{term_c_to_s, term_c_to_s_in};

/// The observable shape of an evaluation outcome, shared by all three
/// calculi: enough to compare results across translations without
/// comparing function bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// A base-type constant.
    Constant(Constant),
    /// A function value (possibly wrapped in function casts/coercions).
    Function,
    /// A value injected into `?` at a ground type, with the
    /// observation of its payload.
    Injected(Ground, Box<Observation>),
    /// Blame allocated to a label.
    Blame(Label),
    /// Fuel exhausted.
    Timeout,
}

impl std::fmt::Display for Observation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Observation::Constant(k) => write!(f, "{k}"),
            Observation::Function => f.write_str("<function>"),
            Observation::Injected(g, payload) => write!(f, "{payload} (dynamic, tagged {g})"),
            Observation::Blame(p) => write!(f, "blame {p}"),
            Observation::Timeout => f.write_str("<timeout>"),
        }
    }
}

/// Observes a λB outcome.
pub fn observe_b(outcome: &lb::eval::Outcome) -> Observation {
    match outcome {
        lb::eval::Outcome::Value(v) => observe_b_value(v),
        lb::eval::Outcome::Blame(p) => Observation::Blame(*p),
    }
}

/// Runs a λB term and observes the result, mapping fuel exhaustion to
/// [`Observation::Timeout`] — the observation-level view of
/// [`lb::eval::run`]'s typed result for Kleene-style comparisons
/// (where a truncated run is a legitimate, comparable observation).
///
/// # Panics
///
/// Panics if the term is not closed and well typed.
pub fn observe_run_b(term: &lb::Term, fuel: u64) -> Observation {
    match lb::eval::run(term, fuel) {
        Ok(r) => observe_b(&r.outcome),
        Err(lb::eval::RunError::FuelExhausted { .. }) => Observation::Timeout,
        Err(lb::eval::RunError::IllTyped(e)) => panic!("λB term is ill typed: {e}"),
    }
}

fn observe_b_value(v: &lb::Term) -> Observation {
    match v {
        lb::Term::Const(k) => Observation::Constant(*k),
        lb::Term::Lam(_, _, _) | lb::Term::Fix(_, _, _, _, _) => Observation::Function,
        lb::Term::Cast(inner, c) => match (&c.source, &c.target) {
            (Type::Fun(_, _), Type::Fun(_, _)) => Observation::Function,
            (src, Type::Dyn) => {
                let g = src.as_ground().expect("injection value from ground type");
                Observation::Injected(g, Box::new(observe_b_value(inner)))
            }
            _ => unreachable!("not a λB value: {v}"),
        },
        other => unreachable!("not a λB value: {other}"),
    }
}

/// Observes a λC outcome.
pub fn observe_c(outcome: &lc::eval::Outcome) -> Observation {
    match outcome {
        lc::eval::Outcome::Value(v) => observe_c_value(v),
        lc::eval::Outcome::Blame(p) => Observation::Blame(*p),
    }
}

/// Runs a λC term and observes the result, mapping fuel exhaustion to
/// [`Observation::Timeout`] (see [`observe_run_b`]).
///
/// # Panics
///
/// Panics if the term is not closed and well typed.
pub fn observe_run_c(term: &lc::Term, fuel: u64) -> Observation {
    match lc::eval::run(term, fuel) {
        Ok(r) => observe_c(&r.outcome),
        Err(lc::eval::RunError::FuelExhausted { .. }) => Observation::Timeout,
        Err(lc::eval::RunError::IllTyped(e)) => panic!("λC term is ill typed: {e}"),
    }
}

fn observe_c_value(v: &lc::Term) -> Observation {
    match v {
        lc::Term::Const(k) => Observation::Constant(*k),
        lc::Term::Lam(_, _, _) | lc::Term::Fix(_, _, _, _, _) => Observation::Function,
        lc::Term::Coerce(inner, lc::Coercion::Fun(_, _)) => {
            let _ = inner;
            Observation::Function
        }
        lc::Term::Coerce(inner, lc::Coercion::Inj(g)) => {
            Observation::Injected(*g, Box::new(observe_c_value(inner)))
        }
        other => unreachable!("not a λC value: {other}"),
    }
}

/// Observes a λS outcome.
pub fn observe_s(outcome: &ls::eval::Outcome) -> Observation {
    match outcome {
        ls::eval::Outcome::Value(v) => observe_s_value(v),
        ls::eval::Outcome::Blame(p) => Observation::Blame(*p),
    }
}

/// Runs a λS term and observes the result, mapping fuel exhaustion to
/// [`Observation::Timeout`] (see [`observe_run_b`]).
///
/// # Panics
///
/// Panics if the term is not closed and well typed.
pub fn observe_run_s(term: &ls::Term, fuel: u64) -> Observation {
    match ls::eval::run(term, fuel) {
        Ok(r) => observe_s(&r.outcome),
        Err(ls::eval::RunError::FuelExhausted { .. }) => Observation::Timeout,
        Err(ls::eval::RunError::IllTyped(e)) => panic!("λS term is ill typed: {e}"),
    }
}

fn observe_s_value(v: &ls::Term) -> Observation {
    match v {
        ls::Term::Const(k) => Observation::Constant(*k),
        ls::Term::Lam(_, _, _) | ls::Term::Fix(_, _, _, _, _) => Observation::Function,
        ls::Term::Coerce(u, SpaceCoercion::Mid(Intermediate::Inj(g, ground))) => {
            // U⟨g ; G!⟩: the payload is U seen through g.
            let payload = match g {
                GroundCoercion::IdBase(_) => observe_s_value(u),
                GroundCoercion::Fun(_, _) => Observation::Function,
            };
            Observation::Injected(*ground, Box::new(payload))
        }
        ls::Term::Coerce(
            _,
            SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(_, _))),
        ) => Observation::Function,
        other => unreachable!("not a λS value: {other}"),
    }
}

/// Observes a compiled λS outcome ([`ls::eval::run_compiled`]),
/// resolving coercion handles through the arena that interned them —
/// the observation is read straight off the IR, no tree is
/// materialised.
pub fn observe_s_compiled(
    outcome: &ls::eval::OutcomeC,
    arena: &ls::arena::CoercionArena,
) -> Observation {
    match outcome {
        ls::eval::OutcomeC::Value(v) => observe_s_compiled_value(v, arena),
        ls::eval::OutcomeC::Blame(p) => Observation::Blame(*p),
    }
}

fn observe_s_compiled_value(v: &ls::sterm::STerm, arena: &ls::arena::CoercionArena) -> Observation {
    use ls::arena::{GNode, INode, SNode};
    use ls::sterm::STerm;
    match v {
        STerm::Const(k) => Observation::Constant(*k),
        STerm::Lam(_, _, _) | STerm::Fix(_, _, _, _, _) => Observation::Function,
        STerm::Coerce(u, s) => match arena.node(*s) {
            SNode::Mid(INode::Inj(g, ground)) => {
                let payload = match g {
                    GNode::IdBase(_) => observe_s_compiled_value(u, arena),
                    GNode::Fun(_, _) => Observation::Function,
                };
                Observation::Injected(ground, Box::new(payload))
            }
            SNode::Mid(INode::Ground(GNode::Fun(_, _))) => Observation::Function,
            _ => unreachable!("not a compiled λS value"),
        },
        other => unreachable!("not a compiled λS value: {}", other.size()),
    }
}

/// Report of a successful lockstep co-execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepReport {
    /// Number of steps taken (identical in both calculi by
    /// Proposition 11).
    pub steps: u64,
    /// The common final observation.
    pub observation: Observation,
}

/// Co-executes a λB term and its λC translation, verifying the
/// lockstep bisimulation of Proposition 11: after every single step,
/// the translation of the λB state equals the λC state.
///
/// # Errors
///
/// Returns a description of the first violation (or a type error).
pub fn lockstep_bc(term: &lb::Term, fuel: u64) -> Result<LockstepReport, String> {
    let ty = lb::type_of(term).map_err(|e| format!("λB type error: {e}"))?;
    let mut mb = term.clone();
    let mut mc = term_b_to_c(&mb);
    let ty_c = lc::type_of(&mc).map_err(|e| format!("λC type error: {e}"))?;
    if ty_c != ty {
        return Err(format!("translation changed the type: {ty} became {ty_c}"));
    }
    let mut steps = 0u64;
    loop {
        let sb = lb::eval::step(&mb, &ty);
        let sc = lc::eval::step(&mc, &ty);
        match (sb, sc) {
            (lb::eval::Step::Next(nb), lc::eval::Step::Next(nc)) => {
                let translated = term_b_to_c(&nb);
                if translated != nc {
                    return Err(format!(
                        "lockstep broken after {steps} steps:\n λB -> {nb}\n |·|BC = {translated}\n λC -> {nc}"
                    ));
                }
                mb = nb;
                mc = nc;
                steps += 1;
                if steps >= fuel {
                    return Ok(LockstepReport {
                        steps,
                        observation: Observation::Timeout,
                    });
                }
            }
            (lb::eval::Step::Value, lc::eval::Step::Value) => {
                let ob = observe_b_value(&mb);
                let oc = observe_c_value(&mc);
                if ob != oc {
                    return Err(format!("final values differ: {ob:?} vs {oc:?}"));
                }
                return Ok(LockstepReport {
                    steps,
                    observation: ob,
                });
            }
            (lb::eval::Step::Blame(p), lc::eval::Step::Blame(q)) => {
                if p != q {
                    return Err(format!("blamed different labels: {p} vs {q}"));
                }
                return Ok(LockstepReport {
                    steps,
                    observation: Observation::Blame(p),
                });
            }
            (sb, sc) => {
                return Err(format!(
                    "calculi disagree after {steps} steps: λB {sb:?} vs λC {sc:?}"
                ))
            }
        }
    }
}

/// Whether a space-efficient coercion is a full identity (`id?`,
/// `idι`, or `s → t` with both components full identities) — exactly
/// the coercions erased by rule (i) of the bisimulation.
pub fn is_full_identity(s: &SpaceCoercion) -> bool {
    match s {
        SpaceCoercion::IdDyn => true,
        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::IdBase(_))) => true,
        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(a, b))) => {
            is_full_identity(a) && is_full_identity(b)
        }
        _ => false,
    }
}

/// Normalises a λS term by merging adjacent coercions and erasing
/// (full) identity coercions everywhere — the congruence closure of
/// rules (i) and (ii) of Figure 6. Two terms related by `≈` modulo
/// those rules have equal normal forms.
pub fn normalize_s(term: &ls::Term) -> ls::Term {
    normalize_s_in(&mut MergeCtx::new(), term)
}

/// [`normalize_s`] with a caller-owned arena and compose cache.
/// Trace-alignment checkers normalise every state of a reduction
/// sequence; consecutive states share almost all their coercions, so
/// a persistent [`MergeCtx`] answers nearly every merge from the
/// compose cache.
pub fn normalize_s_in(ctx: &mut MergeCtx, term: &ls::Term) -> ls::Term {
    match term {
        ls::Term::Const(_) | ls::Term::Var(_) | ls::Term::Blame(_, _) => term.clone(),
        ls::Term::Op(op, args) => {
            ls::Term::Op(*op, args.iter().map(|a| normalize_s_in(ctx, a)).collect())
        }
        ls::Term::Lam(x, ty, b) => {
            ls::Term::Lam(x.clone(), ty.clone(), normalize_s_in(ctx, b).into())
        }
        ls::Term::App(a, b) => {
            ls::Term::App(normalize_s_in(ctx, a).into(), normalize_s_in(ctx, b).into())
        }
        ls::Term::If(c, t, e) => ls::Term::If(
            normalize_s_in(ctx, c).into(),
            normalize_s_in(ctx, t).into(),
            normalize_s_in(ctx, e).into(),
        ),
        ls::Term::Let(x, m, n) => ls::Term::Let(
            x.clone(),
            normalize_s_in(ctx, m).into(),
            normalize_s_in(ctx, n).into(),
        ),
        ls::Term::Fix(f, x, dom, cod, b) => ls::Term::Fix(
            f.clone(),
            x.clone(),
            dom.clone(),
            cod.clone(),
            normalize_s_in(ctx, b).into(),
        ),
        ls::Term::Coerce(m, s) => {
            let inner = normalize_s_in(ctx, m);
            let (subject, merged) = match inner {
                ls::Term::Coerce(mm, s2) => {
                    let combined = ctx.merge(&s2, s);
                    ((*mm).clone(), combined)
                }
                other => (other, s.clone()),
            };
            if is_full_identity(&merged) {
                subject
            } else {
                subject.coerce(merged)
            }
        }
    }
}

/// Report of a successful λC/λS trace alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentReport {
    /// λC steps taken.
    pub steps_c: u64,
    /// λS steps taken.
    pub steps_s: u64,
    /// The common final observation.
    pub observation: Observation,
}

/// Co-executes a λC term and its `|·|CS` translation and checks the
/// non-lockstep bisimulation of Proposition 16 via normalised traces:
/// every distinct normal form visited by λS must appear, in order,
/// among the normal forms visited by λC (λC takes *more* steps because
/// it splits compositions that λS merges in the relation), and both
/// executions must produce the same observation.
///
/// # Errors
///
/// Returns a description of the first misalignment.
pub fn aligned_cs(term: &lc::Term, fuel: u64) -> Result<AlignmentReport, String> {
    let ty_c = lc::type_of(term).map_err(|e| format!("λC type error: {e}"))?;
    let ms0 = term_c_to_s(term);
    let ty_s = ls::type_of(&ms0).map_err(|e| format!("λS type error: {e}"))?;
    if ty_s != ty_c {
        return Err(format!(
            "translation changed the type: {ty_c} became {ty_s}"
        ));
    }

    // Collect normalised traces (consecutive duplicates collapsed).
    // One merge context serves every normalisation: consecutive trace
    // states share almost all coercions, so the compose cache answers
    // nearly every merge after the first state.
    let mut ctx = MergeCtx::new();
    let mut trace_c: Vec<ls::Term> = Vec::new();
    let push_c = |t: ls::Term, out: &mut Vec<ls::Term>| {
        if out.last() != Some(&t) {
            out.push(t);
        }
    };
    let mut mc = term.clone();
    let mut steps_c = 0u64;
    let translate = |ctx: &mut MergeCtx, mc: &lc::Term| {
        let ms = term_c_to_s_in(&mut ctx.arena, &mut ctx.cache, mc);
        normalize_s_in(ctx, &ms)
    };
    push_c(translate(&mut ctx, &mc), &mut trace_c);
    let outcome_c = loop {
        match lc::eval::step(&mc, &ty_c) {
            lc::eval::Step::Next(n) => {
                mc = n;
                steps_c += 1;
                push_c(translate(&mut ctx, &mc), &mut trace_c);
                if steps_c >= fuel {
                    break Observation::Timeout;
                }
            }
            lc::eval::Step::Value => break observe_c_value(&mc),
            lc::eval::Step::Blame(p) => break Observation::Blame(p),
        }
    };

    let mut trace_s: Vec<ls::Term> = Vec::new();
    let mut ms = ms0;
    let mut steps_s = 0u64;
    push_c(normalize_s_in(&mut ctx, &ms), &mut trace_s);
    let outcome_s = loop {
        match ls::eval::step_in(&mut ctx, &ms, &ty_s) {
            ls::eval::Step::Next(n) => {
                ms = n;
                steps_s += 1;
                push_c(normalize_s_in(&mut ctx, &ms), &mut trace_s);
                if steps_s >= fuel {
                    break Observation::Timeout;
                }
            }
            ls::eval::Step::Value => break observe_s_value(&ms),
            ls::eval::Step::Blame(p) => break Observation::Blame(p),
        }
    };

    if outcome_c != outcome_s {
        return Err(format!(
            "outcomes differ: λC {outcome_c:?} vs λS {outcome_s:?}"
        ));
    }

    // On timeout the traces were truncated at unrelated points; the
    // subsequence check is only meaningful for completed runs.
    if outcome_c != Observation::Timeout && !is_subsequence(&trace_s, &trace_c) {
        return Err(format!(
            "λS trace is not a subsequence of the λC trace\n λC trace ({} states)\n λS trace ({} states)",
            trace_c.len(),
            trace_s.len()
        ));
    }

    Ok(AlignmentReport {
        steps_c,
        steps_s,
        observation: outcome_c,
    })
}

/// Whether `needle` is a (not necessarily contiguous) subsequence of
/// `haystack`.
fn is_subsequence(needle: &[ls::Term], haystack: &[ls::Term]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_lambda_b::programs;
    use bc_syntax::{BaseType, Op};

    #[test]
    fn lockstep_on_programs() {
        for (name, m) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_typed", programs::even_typed(7)),
            ("even_untyped", programs::even_untyped(4)),
            ("wrapped_identity", programs::wrapped_identity(3)),
        ] {
            let report = lockstep_bc(&m, 100_000)
                .unwrap_or_else(|e| panic!("lockstep failed on {name}: {e}"));
            assert_ne!(report.observation, Observation::Timeout, "{name}");
        }
    }

    #[test]
    fn lockstep_on_a_blaming_program() {
        use bc_syntax::{Label, Type};
        let m = lb::Term::int(1)
            .cast(Type::INT, Label::new(0), Type::DYN)
            .cast(Type::DYN, Label::new(1), Type::BOOL);
        let report = lockstep_bc(&m, 100).unwrap();
        assert_eq!(report.observation, Observation::Blame(Label::new(1)));
    }

    #[test]
    fn alignment_on_translated_programs() {
        for (name, m) in [
            ("boundary_loop", programs::boundary_loop(6)),
            ("even_odd_mixed", programs::even_odd_mixed(5)),
            ("even_untyped", programs::even_untyped(4)),
            ("wrapped_identity", programs::wrapped_identity(3)),
        ] {
            let mc = term_b_to_c(&m);
            let report = aligned_cs(&mc, 100_000)
                .unwrap_or_else(|e| panic!("alignment failed on {name}: {e}"));
            assert_ne!(report.observation, Observation::Timeout, "{name}");
            // The bisimulation is not lockstep: one step in λC may
            // correspond to zero or more in λS and vice versa (λC
            // splits compositions, λS pays explicit merge steps), but
            // the step counts stay within a constant factor.
            let (lo, hi) = (
                report.steps_c.min(report.steps_s),
                report.steps_c.max(report.steps_s),
            );
            assert!(hi <= 3 * lo + 10, "{name}: steps diverge: {lo} vs {hi}");
        }
    }

    #[test]
    fn normalize_merges_and_erases() {
        use bc_syntax::Label;
        let gi = Ground::Base(BaseType::Int);
        let id = GroundCoercion::IdBase(BaseType::Int);
        let m = ls::Term::int(1)
            .coerce(SpaceCoercion::inj(id.clone(), gi))
            .coerce(SpaceCoercion::proj(
                gi,
                Label::new(0),
                Intermediate::Ground(id),
            ));
        assert_eq!(normalize_s(&m), ls::Term::int(1));
        let _ = Op::Add;
    }

    #[test]
    fn observations_distinguish_blame_and_values() {
        assert_ne!(
            Observation::Blame(bc_syntax::Label::new(0)),
            Observation::Blame(bc_syntax::Label::new(1))
        );
        assert_ne!(
            Observation::Constant(Constant::Int(1)),
            Observation::Function
        );
    }
}
