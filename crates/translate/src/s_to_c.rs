//! The inclusion `|·|SC` of λS into λC — trivial, since every
//! space-efficient coercion *is* a coercion (§4.1).

use bc_core::arena::{CoercionArena, CoercionId};
use bc_core::term::Term as STerm;
use bc_lambda_c::coercion::Coercion;
use bc_lambda_c::term::Term as CTerm;

/// Includes an *interned* canonical coercion into the λC grammar,
/// resolving it out of the arena first.
pub fn coercion_id_to_c(arena: &CoercionArena, id: CoercionId) -> Coercion {
    arena.resolve(id).to_coercion()
}

/// Translates a λS term to a λC term by including each canonical
/// coercion into the coercion grammar.
pub fn term_s_to_c(term: &STerm) -> CTerm {
    match term {
        STerm::Const(k) => CTerm::Const(*k),
        STerm::Op(op, args) => CTerm::Op(*op, args.iter().map(term_s_to_c).collect()),
        STerm::Var(x) => CTerm::Var(x.clone()),
        STerm::Lam(x, ty, b) => CTerm::Lam(x.clone(), ty.clone(), term_s_to_c(b).into()),
        STerm::App(a, b) => CTerm::App(term_s_to_c(a).into(), term_s_to_c(b).into()),
        STerm::Coerce(m, s) => CTerm::Coerce(term_s_to_c(m).into(), s.to_coercion()),
        STerm::Blame(p, ty) => CTerm::Blame(*p, ty.clone()),
        STerm::If(c, t, e) => CTerm::If(
            term_s_to_c(c).into(),
            term_s_to_c(t).into(),
            term_s_to_c(e).into(),
        ),
        STerm::Let(x, m, n) => CTerm::Let(x.clone(), term_s_to_c(m).into(), term_s_to_c(n).into()),
        STerm::Fix(f, x, dom, cod, b) => CTerm::Fix(
            f.clone(),
            x.clone(),
            dom.clone(),
            cod.clone(),
            term_s_to_c(b).into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c_to_s::term_c_to_s;
    use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use bc_syntax::{BaseType, Ground, Label, Type};

    #[test]
    fn inclusion_then_normalisation_is_identity() {
        // |  |M|SC  |CS = M for canonical terms (Prop 17 corollary).
        let gi = Ground::Base(BaseType::Int);
        let m = STerm::int(1)
            .coerce(SpaceCoercion::inj(
                GroundCoercion::IdBase(BaseType::Int),
                gi,
            ))
            .coerce(SpaceCoercion::proj(
                gi,
                Label::new(0),
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
            ));
        assert_eq!(term_c_to_s(&term_s_to_c(&m)), m);
        let _ = Type::DYN;
    }

    #[test]
    fn interned_inclusion_matches_tree_inclusion() {
        use bc_core::arena::CoercionArena;
        let gi = Ground::Base(BaseType::Int);
        let s = SpaceCoercion::proj(
            gi,
            Label::new(2),
            Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi),
        );
        let mut arena = CoercionArena::new();
        let id = arena.intern(&s);
        assert_eq!(coercion_id_to_c(&arena, id), s.to_coercion());
    }
}
