//! The composite translation `|·|BS = |·|CS ∘ |·|BC` from λB straight
//! to λS, used by the applications of §5 (Lemmas 20 and 21).

use bc_core::coercion::SpaceCoercion;
use bc_core::term::Term as STerm;
use bc_lambda_b::term::Term as BTerm;
use bc_syntax::{Label, Type};

use crate::b_to_c::{cast_to_coercion, term_b_to_c};
use crate::c_to_s::{coercion_to_space, term_c_to_s};

/// Translates a cast directly to its canonical space-efficient
/// coercion: `|A ⇒p B|BS`.
///
/// # Panics
///
/// Panics if `A ≁ B`.
pub fn cast_to_space(source: &Type, p: Label, target: &Type) -> SpaceCoercion {
    coercion_to_space(&cast_to_coercion(source, p, target))
}

/// Translates a λB term to a λS term.
pub fn term_b_to_s(term: &BTerm) -> STerm {
    term_c_to_s(&term_b_to_c(term))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_cast_normalises_to_identity() {
        // |Int ⇒p ? ⇒q Int|BS = idInt when composed.
        use bc_core::compose::compose;
        let up = cast_to_space(&Type::INT, Label::new(0), &Type::DYN);
        let down = cast_to_space(&Type::DYN, Label::new(1), &Type::INT);
        assert_eq!(
            compose(&up, &down),
            SpaceCoercion::id_base(bc_syntax::BaseType::Int)
        );
    }

    #[test]
    fn translation_preserves_typing() {
        let ii = Type::fun(Type::INT, Type::INT);
        let s = cast_to_space(&ii, Label::new(0), &Type::DYN);
        assert!(s.check(&ii, &Type::DYN));
    }
}
