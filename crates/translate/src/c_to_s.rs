//! The translation `|·|CS` from λC to λS (Figure 6) — equivalently,
//! *normalisation* of coercions to canonical form.
//!
//! ```text
//! |id?|    = id?
//! |idι|    = idι
//! |id A→B| = |id A| → |id B|
//! |G?p|    = G?p ; |id G|
//! |G!|     = |id G| ; G!
//! |c → d|  = |c| → |d|
//! |c ; d|  = |c| # |d|
//! |⊥GpH|   = ⊥GpH
//! ```

use std::collections::HashMap;

use bc_core::arena::{CoercionArena, CoercionId, ComposeCache};
use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use bc_core::compose::compose;
use bc_core::sterm::{CompileCtx, STerm as CompiledTerm};
use bc_core::term::Term as STerm;
use bc_lambda_c::coercion::Coercion;
use bc_lambda_c::term::Term as CTerm;
use bc_lambda_c::{CArena, CCoercionId, CNode, CTerm as CTermC};
use bc_syntax::{FxBuildHasher, Ground, TypeArena};

/// The identity ground coercion at ground type `G`: `idι` at base
/// types, `id? → id?` at `? → ?`.
pub fn ground_identity(g: Ground) -> GroundCoercion {
    match g {
        Ground::Base(b) => GroundCoercion::IdBase(b),
        Ground::Fun => {
            GroundCoercion::Fun(SpaceCoercion::IdDyn.into(), SpaceCoercion::IdDyn.into())
        }
    }
}

/// Translates (normalises) a λC coercion into its canonical
/// space-efficient form — the tree-level specification. The memoized
/// implementation is [`coercion_to_space_in`]; the two agree by
/// property test.
pub fn coercion_to_space(c: &Coercion) -> SpaceCoercion {
    match c {
        Coercion::Id(ty) => SpaceCoercion::id(ty),
        Coercion::Inj(g) => SpaceCoercion::Mid(Intermediate::Inj(ground_identity(*g), *g)),
        Coercion::Proj(g, p) => {
            SpaceCoercion::Proj(*g, *p, Intermediate::Ground(ground_identity(*g)))
        }
        Coercion::Fun(c, d) => SpaceCoercion::fun(coercion_to_space(c), coercion_to_space(d)),
        Coercion::Seq(c, d) => compose(&coercion_to_space(c), &coercion_to_space(d)),
        Coercion::Fail(g, p, h) => SpaceCoercion::Mid(Intermediate::Fail(*g, *p, *h)),
    }
}

/// Normalises a λC coercion directly into an arena: primitives become
/// interned canonical forms and `c ; d` goes through the memoized
/// composition, so normalising a program full of repeated coercions
/// does each distinct composition once.
pub fn coercion_to_space_in(
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    c: &Coercion,
) -> CoercionId {
    match c {
        Coercion::Id(ty) => arena.id(ty),
        Coercion::Inj(g) => arena.inj_ground(*g),
        Coercion::Proj(g, p) => arena.proj_ground(*g, *p),
        Coercion::Fun(c, d) => {
            let dom = coercion_to_space_in(arena, cache, c);
            let cod = coercion_to_space_in(arena, cache, d);
            arena.fun(dom, cod)
        }
        Coercion::Seq(c, d) => {
            let a = coercion_to_space_in(arena, cache, c);
            let b = coercion_to_space_in(arena, cache, d);
            arena.compose(cache, a, b)
        }
        Coercion::Fail(g, p, h) => arena.fail(*g, *p, *h),
    }
}

/// Translates a λC term to a λS term by normalising every coercion
/// (through a throwaway arena; see [`term_c_to_s_in`] to keep the
/// interned forms).
pub fn term_c_to_s(term: &CTerm) -> STerm {
    let mut arena = CoercionArena::new();
    let mut cache = ComposeCache::new();
    term_c_to_s_in(&mut arena, &mut cache, term)
}

/// Translates a λC term to a λS term, interning every normalised
/// coercion into a caller-owned arena. The produced term carries the
/// tree exchange format (resolved from the arena), so downstream
/// consumers that re-intern — like the λS machine — find every
/// coercion already hash-consed and every `Seq` composition already
/// cached.
pub fn term_c_to_s_in(arena: &mut CoercionArena, cache: &mut ComposeCache, term: &CTerm) -> STerm {
    match term {
        CTerm::Const(k) => STerm::Const(*k),
        CTerm::Op(op, args) => STerm::Op(
            *op,
            args.iter()
                .map(|a| term_c_to_s_in(arena, cache, a))
                .collect(),
        ),
        CTerm::Var(x) => STerm::Var(x.clone()),
        CTerm::Lam(x, ty, b) => STerm::Lam(
            x.clone(),
            ty.clone(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
        CTerm::App(a, b) => STerm::App(
            term_c_to_s_in(arena, cache, a).into(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
        CTerm::Coerce(m, c) => {
            let id = coercion_to_space_in(arena, cache, c);
            STerm::Coerce(term_c_to_s_in(arena, cache, m).into(), arena.resolve(id))
        }
        CTerm::Blame(p, ty) => STerm::Blame(*p, ty.clone()),
        CTerm::If(c, t, e) => STerm::If(
            term_c_to_s_in(arena, cache, c).into(),
            term_c_to_s_in(arena, cache, t).into(),
            term_c_to_s_in(arena, cache, e).into(),
        ),
        CTerm::Let(x, m, n) => STerm::Let(
            x.clone(),
            term_c_to_s_in(arena, cache, m).into(),
            term_c_to_s_in(arena, cache, n).into(),
        ),
        CTerm::Fix(f, x, dom, cod, b) => STerm::Fix(
            f.clone(),
            x.clone(),
            dom.clone(),
            cod.clone(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
    }
}

/// Translates a λC term **directly into the compiled λS IR**: every
/// normalised coercion lands in the arena as a [`CoercionId`] (never
/// resolved back to a tree) and every type annotation is interned into
/// `types`. This is the id-emitting fast path of the translation —
/// λC in, machine-ready [`CompiledTerm`] out, with no intermediate
/// tree term at all.
///
/// Agreement with the tree pipeline is structural: with shared arenas,
/// `term_c_to_s_compiled(m)` equals
/// `compile_term(&term_c_to_s_in(m))` — same ids, same shape
/// (validated by test; hash-consing canonicity makes the resolve +
/// re-intern round trip of the tree path the identity).
pub fn term_c_to_s_compiled(
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    types: &mut TypeArena,
    term: &CTerm,
) -> CompiledTerm {
    match term {
        CTerm::Const(k) => CompiledTerm::Const(*k),
        CTerm::Op(op, args) => CompiledTerm::Op(
            *op,
            args.iter()
                .map(|a| term_c_to_s_compiled(arena, cache, types, a))
                .collect(),
        ),
        CTerm::Var(x) => CompiledTerm::Var(x.clone()),
        CTerm::Lam(x, ty, b) => CompiledTerm::Lam(
            x.clone(),
            types.intern(ty),
            term_c_to_s_compiled(arena, cache, types, b).into(),
        ),
        CTerm::App(a, b) => CompiledTerm::App(
            term_c_to_s_compiled(arena, cache, types, a).into(),
            term_c_to_s_compiled(arena, cache, types, b).into(),
        ),
        CTerm::Coerce(m, c) => {
            let id = coercion_to_space_in(arena, cache, c);
            CompiledTerm::Coerce(term_c_to_s_compiled(arena, cache, types, m).into(), id)
        }
        CTerm::Blame(p, ty) => CompiledTerm::Blame(*p, types.intern(ty)),
        CTerm::If(c, t, e) => CompiledTerm::If(
            term_c_to_s_compiled(arena, cache, types, c).into(),
            term_c_to_s_compiled(arena, cache, types, t).into(),
            term_c_to_s_compiled(arena, cache, types, e).into(),
        ),
        CTerm::Let(x, m, n) => CompiledTerm::Let(
            x.clone(),
            term_c_to_s_compiled(arena, cache, types, m).into(),
            term_c_to_s_compiled(arena, cache, types, n).into(),
        ),
        CTerm::Fix(f, x, dom, cod, b) => CompiledTerm::Fix(
            f.clone(),
            x.clone(),
            types.intern(dom),
            types.intern(cod),
            term_c_to_s_compiled(arena, cache, types, b).into(),
        ),
    }
}

/// [`term_c_to_s_compiled`] over a bundled [`CompileCtx`].
pub fn term_c_to_s_compiled_in(ctx: &mut CompileCtx, term: &CTerm) -> CompiledTerm {
    term_c_to_s_compiled(&mut ctx.arena, &mut ctx.cache, &mut ctx.types, term)
}

/// Statistics for a [`CNormalizer`]: memo size and hit/miss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CNormalizerStats {
    /// Distinct λC coercions normalised so far.
    pub entries: usize,
    /// Normalisations answered from the memo.
    pub hits: u64,
    /// Normalisations that had to walk the coercion.
    pub misses: u64,
}

/// A memo from interned λC coercions to their normalised
/// space-efficient forms: `|·|CS` as a table from [`CCoercionId`] to
/// [`CoercionId`].
///
/// Because both sides are hash-consed, one table entry covers *every*
/// occurrence of a λC coercion across every term translated through
/// the same arenas — a recompile of a structurally similar program
/// normalises nothing at all (all hits). The stats make that claim
/// checkable: a warm pipeline asserts `misses` stays flat.
#[derive(Debug, Clone, Default)]
pub struct CNormalizer {
    memo: HashMap<CCoercionId, CoercionId, FxBuildHasher>,
    hits: u64,
}

impl CNormalizer {
    /// An empty memo.
    pub fn new() -> CNormalizer {
        CNormalizer::default()
    }

    /// Normalises an interned λC coercion into the space arena:
    /// [`coercion_to_space_in`] on ids, memoized per [`CCoercionId`].
    pub fn normalize(
        &mut self,
        c: CCoercionId,
        carena: &CArena,
        arena: &mut CoercionArena,
        cache: &mut ComposeCache,
        types: &TypeArena,
    ) -> CoercionId {
        if let Some(&s) = self.memo.get(&c) {
            self.hits += 1;
            return s;
        }
        let s = match carena.node(c) {
            CNode::Id(ty) => arena.id_interned(ty, types),
            CNode::Inj(g) => arena.inj_ground(g),
            CNode::Proj(g, p) => arena.proj_ground(g, p),
            CNode::Fun(d, e) => {
                let dom = self.normalize(d, carena, arena, cache, types);
                let cod = self.normalize(e, carena, arena, cache, types);
                arena.fun(dom, cod)
            }
            CNode::Seq(d, e) => {
                let a = self.normalize(d, carena, arena, cache, types);
                let b = self.normalize(e, carena, arena, cache, types);
                arena.compose(cache, a, b)
            }
            CNode::Fail(g, p, h) => arena.fail(g, p, h),
        };
        self.memo.insert(c, s);
        s
    }

    /// The number of memoized coercions.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Memo size and hit/miss counts.
    pub fn stats(&self) -> CNormalizerStats {
        CNormalizerStats {
            entries: self.memo.len(),
            hits: self.hits,
            misses: self.memo.len() as u64,
        }
    }
}

/// Translates a *compiled* λC term into the compiled λS IR — the final
/// leg of the allocation-free pipeline. Type annotations are already
/// ids and pass through untouched; each coercion goes through the
/// [`CNormalizer`] memo, so against warm arenas the pass interns
/// nothing and composes nothing.
pub fn term_c_to_s_from_compiled(
    term: &CTermC,
    carena: &CArena,
    norm: &mut CNormalizer,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    types: &TypeArena,
) -> CompiledTerm {
    match term {
        CTermC::Const(k) => CompiledTerm::Const(*k),
        CTermC::Op(op, args) => CompiledTerm::Op(
            *op,
            args.iter()
                .map(|a| term_c_to_s_from_compiled(a, carena, norm, arena, cache, types))
                .collect(),
        ),
        CTermC::Var(x) => CompiledTerm::Var(x.clone()),
        CTermC::Lam(x, ty, b) => CompiledTerm::Lam(
            x.clone(),
            *ty,
            term_c_to_s_from_compiled(b, carena, norm, arena, cache, types).into(),
        ),
        CTermC::App(a, b) => CompiledTerm::App(
            term_c_to_s_from_compiled(a, carena, norm, arena, cache, types).into(),
            term_c_to_s_from_compiled(b, carena, norm, arena, cache, types).into(),
        ),
        CTermC::Coerce(m, c) => {
            let id = norm.normalize(*c, carena, arena, cache, types);
            CompiledTerm::Coerce(
                term_c_to_s_from_compiled(m, carena, norm, arena, cache, types).into(),
                id,
            )
        }
        CTermC::Blame(p, ty) => CompiledTerm::Blame(*p, *ty),
        CTermC::If(c, t, e) => CompiledTerm::If(
            term_c_to_s_from_compiled(c, carena, norm, arena, cache, types).into(),
            term_c_to_s_from_compiled(t, carena, norm, arena, cache, types).into(),
            term_c_to_s_from_compiled(e, carena, norm, arena, cache, types).into(),
        ),
        CTermC::Let(x, m, n) => CompiledTerm::Let(
            x.clone(),
            term_c_to_s_from_compiled(m, carena, norm, arena, cache, types).into(),
            term_c_to_s_from_compiled(n, carena, norm, arena, cache, types).into(),
        ),
        CTermC::Fix(f, x, dom, cod, b) => CompiledTerm::Fix(
            f.clone(),
            x.clone(),
            *dom,
            *cod,
            term_c_to_s_from_compiled(b, carena, norm, arena, cache, types).into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Label, Type};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    #[test]
    fn primitives_normalise_to_their_canonical_forms() {
        assert_eq!(
            coercion_to_space(&Coercion::id(Type::DYN)),
            SpaceCoercion::IdDyn
        );
        assert_eq!(
            coercion_to_space(&Coercion::id(Type::INT)),
            SpaceCoercion::id_base(BaseType::Int)
        );
        assert_eq!(
            coercion_to_space(&Coercion::inj(gi())),
            SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi())
        );
        assert_eq!(
            coercion_to_space(&Coercion::proj(gi(), p(0))),
            SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int))
            )
        );
    }

    #[test]
    fn composition_normalises_by_composing() {
        // Int! ; Int?p normalises to idInt.
        let c = Coercion::inj(gi()).seq(Coercion::proj(gi(), p(0)));
        assert_eq!(coercion_to_space(&c), SpaceCoercion::id_base(BaseType::Int));
        // Int! ; Bool?p normalises to ⊥.
        let c2 = Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(0)));
        assert_eq!(
            coercion_to_space(&c2),
            SpaceCoercion::Mid(Intermediate::Fail(gi(), p(0), Ground::Base(BaseType::Bool)))
        );
    }

    #[test]
    fn normalisation_preserves_typing() {
        let samples = [
            Coercion::id(Type::fun(Type::INT, Type::DYN)),
            Coercion::inj(Ground::Fun),
            Coercion::proj(Ground::Fun, p(1)),
            Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi())),
            Coercion::inj(gi()).seq(Coercion::proj(gi(), p(2))),
        ];
        for c in &samples {
            let (a, b) = c.synthesize().expect("samples are failure-free");
            let s = coercion_to_space(c);
            assert!(s.check(&a, &b), "|{c}|CS = {s} must coerce {a} ⇒ {b}");
        }
    }

    #[test]
    fn normalisation_preserves_safety() {
        // Prop 15.2 flavour: |c|CS mentions a subset of c's labels.
        let c = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()))
            .seq(Coercion::inj(Ground::Fun))
            .seq(Coercion::proj(Ground::Fun, p(1)));
        let s = coercion_to_space(&c);
        for q in [p(0), p(1), p(2), p(0).complement()] {
            if c.safe_for(q) {
                assert!(s.safe_for(q), "normalisation must preserve safety for {q}");
            }
        }
    }

    #[test]
    fn interned_normalisation_agrees_with_tree_normalisation() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let samples = [
            Coercion::id(Type::fun(Type::INT, Type::DYN)),
            Coercion::inj(Ground::Fun),
            Coercion::proj(Ground::Fun, p(1)),
            Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi())),
            Coercion::inj(gi()).seq(Coercion::proj(gi(), p(2))),
            Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(3))),
        ];
        for c in &samples {
            let id = coercion_to_space_in(&mut arena, &mut cache, c);
            assert_eq!(arena.resolve(id), coercion_to_space(c), "|{c}|CS");
            // Normalising the same λC coercion again yields the same
            // id — canonicity end to end.
            assert_eq!(id, coercion_to_space_in(&mut arena, &mut cache, c));
        }
    }

    #[test]
    fn compiled_translation_agrees_with_tree_translation() {
        use crate::term_b_to_c;
        use bc_core::sterm::compile_term;
        use bc_lambda_b::programs;
        for (name, b) in [
            ("boundary_loop", programs::boundary_loop(4)),
            ("even_odd_mixed", programs::even_odd_mixed(3)),
            ("wrapped_identity", programs::wrapped_identity(3)),
        ] {
            let c = term_b_to_c(&b);
            let mut ctx = CompileCtx::new();
            let direct = term_c_to_s_compiled_in(&mut ctx, &c);
            // The tree path through the same arenas produces the same
            // ids (canonicity end to end)…
            let tree = term_c_to_s_in(&mut ctx.arena, &mut ctx.cache, &c);
            let via_tree = compile_term(&tree, &mut ctx.arena, &mut ctx.types);
            assert_eq!(direct, via_tree, "{name}");
            // …and decompiling recovers the tree translation exactly.
            assert_eq!(
                bc_core::sterm::decompile_term(&direct, &ctx.arena, &ctx.types),
                tree,
                "{name}"
            );
        }
    }

    #[test]
    fn from_compiled_translation_agrees_with_tree_pipeline() {
        use crate::{term_b_to_c, term_b_to_c_compiled};
        use bc_lambda_b::programs;
        use bc_lambda_c::CArena;

        let mut ctx = CompileCtx::new();
        let mut carena = CArena::new();
        let mut norm = CNormalizer::new();
        for (name, b) in [
            ("boundary_loop", programs::boundary_loop(4)),
            ("even_odd_mixed", programs::even_odd_mixed(3)),
            ("wrapped_identity", programs::wrapped_identity(3)),
        ] {
            // Compiled pipeline: BTerm → CTerm (interned) → STerm.
            let bterm = bc_lambda_b::bterm::compile(&b, &mut ctx.types);
            let cterm = term_b_to_c_compiled(&bterm, &mut carena, &mut ctx.types);
            let direct = term_c_to_s_from_compiled(
                &cterm,
                &carena,
                &mut norm,
                &mut ctx.arena,
                &mut ctx.cache,
                &ctx.types,
            );
            // Tree pipeline through the same arenas yields the same
            // ids — canonicity end to end.
            let via_tree = term_c_to_s_compiled_in(&mut ctx, &term_b_to_c(&b));
            assert_eq!(direct, via_tree, "{name}");
        }
        // A warm second pass normalises from the memo alone: no new
        // space coercions, no new λC coercions, no new types.
        let before = (
            ctx.types.len(),
            ctx.arena.len(),
            carena.len(),
            norm.stats().misses,
        );
        for b in [
            programs::boundary_loop(4),
            programs::even_odd_mixed(3),
            programs::wrapped_identity(3),
        ] {
            let bterm = bc_lambda_b::bterm::compile(&b, &mut ctx.types);
            let cterm = term_b_to_c_compiled(&bterm, &mut carena, &mut ctx.types);
            let _ = term_c_to_s_from_compiled(
                &cterm,
                &carena,
                &mut norm,
                &mut ctx.arena,
                &mut ctx.cache,
                &ctx.types,
            );
        }
        let after = (
            ctx.types.len(),
            ctx.arena.len(),
            carena.len(),
            norm.stats().misses,
        );
        assert_eq!(before, after, "warm translation interned something");
        assert!(norm.stats().hits > 0, "warm translation must hit the memo");
    }

    #[test]
    fn idempotent_through_the_inclusion() {
        // Normalising, including back into λC, and normalising again
        // is the identity on canonical forms: |  |s|SC  |CS = s.
        let samples = [
            SpaceCoercion::IdDyn,
            SpaceCoercion::id_base(BaseType::Int),
            SpaceCoercion::inj(ground_identity(Ground::Fun), Ground::Fun),
            SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi()),
            ),
            SpaceCoercion::fail(gi(), p(1), Ground::Fun),
        ];
        for s in &samples {
            assert_eq!(&coercion_to_space(&s.to_coercion()), s, "round trip of {s}");
        }
    }
}
