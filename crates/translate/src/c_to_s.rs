//! The translation `|·|CS` from λC to λS (Figure 6) — equivalently,
//! *normalisation* of coercions to canonical form.
//!
//! ```text
//! |id?|    = id?
//! |idι|    = idι
//! |id A→B| = |id A| → |id B|
//! |G?p|    = G?p ; |id G|
//! |G!|     = |id G| ; G!
//! |c → d|  = |c| → |d|
//! |c ; d|  = |c| # |d|
//! |⊥GpH|   = ⊥GpH
//! ```

use bc_core::arena::{CoercionArena, CoercionId, ComposeCache};
use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use bc_core::compose::compose;
use bc_core::term::Term as STerm;
use bc_lambda_c::coercion::Coercion;
use bc_lambda_c::term::Term as CTerm;
use bc_syntax::Ground;

/// The identity ground coercion at ground type `G`: `idι` at base
/// types, `id? → id?` at `? → ?`.
pub fn ground_identity(g: Ground) -> GroundCoercion {
    match g {
        Ground::Base(b) => GroundCoercion::IdBase(b),
        Ground::Fun => {
            GroundCoercion::Fun(SpaceCoercion::IdDyn.into(), SpaceCoercion::IdDyn.into())
        }
    }
}

/// Translates (normalises) a λC coercion into its canonical
/// space-efficient form — the tree-level specification. The memoized
/// implementation is [`coercion_to_space_in`]; the two agree by
/// property test.
pub fn coercion_to_space(c: &Coercion) -> SpaceCoercion {
    match c {
        Coercion::Id(ty) => SpaceCoercion::id(ty),
        Coercion::Inj(g) => SpaceCoercion::Mid(Intermediate::Inj(ground_identity(*g), *g)),
        Coercion::Proj(g, p) => {
            SpaceCoercion::Proj(*g, *p, Intermediate::Ground(ground_identity(*g)))
        }
        Coercion::Fun(c, d) => SpaceCoercion::fun(coercion_to_space(c), coercion_to_space(d)),
        Coercion::Seq(c, d) => compose(&coercion_to_space(c), &coercion_to_space(d)),
        Coercion::Fail(g, p, h) => SpaceCoercion::Mid(Intermediate::Fail(*g, *p, *h)),
    }
}

/// Normalises a λC coercion directly into an arena: primitives become
/// interned canonical forms and `c ; d` goes through the memoized
/// composition, so normalising a program full of repeated coercions
/// does each distinct composition once.
pub fn coercion_to_space_in(
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    c: &Coercion,
) -> CoercionId {
    match c {
        Coercion::Id(ty) => arena.id(ty),
        Coercion::Inj(g) => arena.inj_ground(*g),
        Coercion::Proj(g, p) => arena.proj_ground(*g, *p),
        Coercion::Fun(c, d) => {
            let dom = coercion_to_space_in(arena, cache, c);
            let cod = coercion_to_space_in(arena, cache, d);
            arena.fun(dom, cod)
        }
        Coercion::Seq(c, d) => {
            let a = coercion_to_space_in(arena, cache, c);
            let b = coercion_to_space_in(arena, cache, d);
            arena.compose(cache, a, b)
        }
        Coercion::Fail(g, p, h) => arena.fail(*g, *p, *h),
    }
}

/// Translates a λC term to a λS term by normalising every coercion
/// (through a throwaway arena; see [`term_c_to_s_in`] to keep the
/// interned forms).
pub fn term_c_to_s(term: &CTerm) -> STerm {
    let mut arena = CoercionArena::new();
    let mut cache = ComposeCache::new();
    term_c_to_s_in(&mut arena, &mut cache, term)
}

/// Translates a λC term to a λS term, interning every normalised
/// coercion into a caller-owned arena. The produced term carries the
/// tree exchange format (resolved from the arena), so downstream
/// consumers that re-intern — like the λS machine — find every
/// coercion already hash-consed and every `Seq` composition already
/// cached.
pub fn term_c_to_s_in(arena: &mut CoercionArena, cache: &mut ComposeCache, term: &CTerm) -> STerm {
    match term {
        CTerm::Const(k) => STerm::Const(*k),
        CTerm::Op(op, args) => STerm::Op(
            *op,
            args.iter()
                .map(|a| term_c_to_s_in(arena, cache, a))
                .collect(),
        ),
        CTerm::Var(x) => STerm::Var(x.clone()),
        CTerm::Lam(x, ty, b) => STerm::Lam(
            x.clone(),
            ty.clone(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
        CTerm::App(a, b) => STerm::App(
            term_c_to_s_in(arena, cache, a).into(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
        CTerm::Coerce(m, c) => {
            let id = coercion_to_space_in(arena, cache, c);
            STerm::Coerce(term_c_to_s_in(arena, cache, m).into(), arena.resolve(id))
        }
        CTerm::Blame(p, ty) => STerm::Blame(*p, ty.clone()),
        CTerm::If(c, t, e) => STerm::If(
            term_c_to_s_in(arena, cache, c).into(),
            term_c_to_s_in(arena, cache, t).into(),
            term_c_to_s_in(arena, cache, e).into(),
        ),
        CTerm::Let(x, m, n) => STerm::Let(
            x.clone(),
            term_c_to_s_in(arena, cache, m).into(),
            term_c_to_s_in(arena, cache, n).into(),
        ),
        CTerm::Fix(f, x, dom, cod, b) => STerm::Fix(
            f.clone(),
            x.clone(),
            dom.clone(),
            cod.clone(),
            term_c_to_s_in(arena, cache, b).into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Label, Type};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    #[test]
    fn primitives_normalise_to_their_canonical_forms() {
        assert_eq!(
            coercion_to_space(&Coercion::id(Type::DYN)),
            SpaceCoercion::IdDyn
        );
        assert_eq!(
            coercion_to_space(&Coercion::id(Type::INT)),
            SpaceCoercion::id_base(BaseType::Int)
        );
        assert_eq!(
            coercion_to_space(&Coercion::inj(gi())),
            SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi())
        );
        assert_eq!(
            coercion_to_space(&Coercion::proj(gi(), p(0))),
            SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int))
            )
        );
    }

    #[test]
    fn composition_normalises_by_composing() {
        // Int! ; Int?p normalises to idInt.
        let c = Coercion::inj(gi()).seq(Coercion::proj(gi(), p(0)));
        assert_eq!(coercion_to_space(&c), SpaceCoercion::id_base(BaseType::Int));
        // Int! ; Bool?p normalises to ⊥.
        let c2 = Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(0)));
        assert_eq!(
            coercion_to_space(&c2),
            SpaceCoercion::Mid(Intermediate::Fail(gi(), p(0), Ground::Base(BaseType::Bool)))
        );
    }

    #[test]
    fn normalisation_preserves_typing() {
        let samples = [
            Coercion::id(Type::fun(Type::INT, Type::DYN)),
            Coercion::inj(Ground::Fun),
            Coercion::proj(Ground::Fun, p(1)),
            Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi())),
            Coercion::inj(gi()).seq(Coercion::proj(gi(), p(2))),
        ];
        for c in &samples {
            let (a, b) = c.synthesize().expect("samples are failure-free");
            let s = coercion_to_space(c);
            assert!(s.check(&a, &b), "|{c}|CS = {s} must coerce {a} ⇒ {b}");
        }
    }

    #[test]
    fn normalisation_preserves_safety() {
        // Prop 15.2 flavour: |c|CS mentions a subset of c's labels.
        let c = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()))
            .seq(Coercion::inj(Ground::Fun))
            .seq(Coercion::proj(Ground::Fun, p(1)));
        let s = coercion_to_space(&c);
        for q in [p(0), p(1), p(2), p(0).complement()] {
            if c.safe_for(q) {
                assert!(s.safe_for(q), "normalisation must preserve safety for {q}");
            }
        }
    }

    #[test]
    fn interned_normalisation_agrees_with_tree_normalisation() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let samples = [
            Coercion::id(Type::fun(Type::INT, Type::DYN)),
            Coercion::inj(Ground::Fun),
            Coercion::proj(Ground::Fun, p(1)),
            Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi())),
            Coercion::inj(gi()).seq(Coercion::proj(gi(), p(2))),
            Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(3))),
        ];
        for c in &samples {
            let id = coercion_to_space_in(&mut arena, &mut cache, c);
            assert_eq!(arena.resolve(id), coercion_to_space(c), "|{c}|CS");
            // Normalising the same λC coercion again yields the same
            // id — canonicity end to end.
            assert_eq!(id, coercion_to_space_in(&mut arena, &mut cache, c));
        }
    }

    #[test]
    fn idempotent_through_the_inclusion() {
        // Normalising, including back into λC, and normalising again
        // is the identity on canonical forms: |  |s|SC  |CS = s.
        let samples = [
            SpaceCoercion::IdDyn,
            SpaceCoercion::id_base(BaseType::Int),
            SpaceCoercion::inj(ground_identity(Ground::Fun), Ground::Fun),
            SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi()),
            ),
            SpaceCoercion::fail(gi(), p(1), Ground::Fun),
        ];
        for s in &samples {
            assert_eq!(&coercion_to_space(&s.to_coercion()), s, "round trip of {s}");
        }
    }
}
