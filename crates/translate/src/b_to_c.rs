//! The translation `|·|BC` from λB to λC (Figure 4).
//!
//! ```text
//! |ι ⇒p ι|       = idι
//! |A→B ⇒p A'→B'| = |A' ⇒p̄ A| → |B ⇒p B'|
//! |? ⇒p ?|       = id?
//! |G ⇒p ?|       = G!
//! |A ⇒p ?|       = |A ⇒p G| ; G!      (A ≠ ?, A ≠ G, A ∼ G)
//! |? ⇒p G|       = G?p
//! |? ⇒p A|       = G?p ; |G ⇒p A|     (A ≠ ?, A ≠ G, A ∼ G)
//! ```
//!
//! The domain of a function cast is translated with the *complemented*
//! label, matching λB's contravariant function-cast rule; this is what
//! makes the bisimulation of Proposition 11 lockstep.

use bc_lambda_b as lb;
use bc_lambda_b::BTerm;
use bc_lambda_c as lc;
use bc_lambda_c::coercion::Coercion;
use bc_lambda_c::{CArena, CCoercionId, CTerm};
use bc_syntax::{Label, TNode, Type, TypeArena, TypeId};

/// Translates a cast `A ⇒p B` to a coercion: `|A ⇒p B|BC`.
///
/// # Panics
///
/// Panics if `A ≁ B` (no cast exists between incompatible types).
pub fn cast_to_coercion(source: &Type, p: Label, target: &Type) -> Coercion {
    assert!(
        source.compatible(target),
        "no cast between incompatible types {source} and {target}"
    );
    match (source, target) {
        (Type::Base(a), Type::Base(_)) => Coercion::id(Type::Base(*a)),
        (Type::Fun(a, b), Type::Fun(a2, b2)) => Coercion::fun(
            cast_to_coercion(a2, p.complement(), a),
            cast_to_coercion(b, p, b2),
        ),
        (Type::Dyn, Type::Dyn) => Coercion::id(Type::Dyn),
        (a, Type::Dyn) => {
            let g = a.ground_of().expect("source is not ? in this branch");
            if *a == g.ty() {
                Coercion::inj(g)
            } else {
                cast_to_coercion(a, p, &g.ty()).seq(Coercion::inj(g))
            }
        }
        (Type::Dyn, b) => {
            let g = b.ground_of().expect("target is not ? in this branch");
            if *b == g.ty() {
                Coercion::proj(g, p)
            } else {
                Coercion::proj(g, p).seq(cast_to_coercion(&g.ty(), p, b))
            }
        }
        _ => unreachable!("incompatible cast slipped past the guard"),
    }
}

/// Translates a λB term to a λC term by replacing every cast with the
/// corresponding coercion.
pub fn term_b_to_c(term: &lb::Term) -> lc::Term {
    match term {
        lb::Term::Const(k) => lc::Term::Const(*k),
        lb::Term::Op(op, args) => lc::Term::Op(*op, args.iter().map(term_b_to_c).collect()),
        lb::Term::Var(x) => lc::Term::Var(x.clone()),
        lb::Term::Lam(x, ty, b) => lc::Term::Lam(x.clone(), ty.clone(), term_b_to_c(b).into()),
        lb::Term::App(a, b) => lc::Term::App(term_b_to_c(a).into(), term_b_to_c(b).into()),
        lb::Term::Cast(m, c) => lc::Term::Coerce(
            term_b_to_c(m).into(),
            cast_to_coercion(&c.source, c.label, &c.target),
        ),
        lb::Term::Blame(p, ty) => lc::Term::Blame(*p, ty.clone()),
        lb::Term::If(c, t, e) => lc::Term::If(
            term_b_to_c(c).into(),
            term_b_to_c(t).into(),
            term_b_to_c(e).into(),
        ),
        lb::Term::Let(x, m, n) => {
            lc::Term::Let(x.clone(), term_b_to_c(m).into(), term_b_to_c(n).into())
        }
        lb::Term::Fix(f, x, dom, cod, b) => lc::Term::Fix(
            f.clone(),
            x.clone(),
            dom.clone(),
            cod.clone(),
            term_b_to_c(b).into(),
        ),
    }
}

/// [`cast_to_coercion`] on interned endpoints, emitting an interned
/// λC coercion: `|A ⇒p B|BC` as a [`CCoercionId`] in `carena`.
///
/// The case analysis runs entirely on [`TNode`]s and the result is
/// hash-consed bottom-up, so translating the same cast twice returns
/// the same id and interns nothing — the coercion never exists as a
/// tree. Agreement with the tree translation is pinned by test:
/// `carena.resolve(cast_to_coercion_in(a, p, b)) =
/// cast_to_coercion(A, p, B)`.
///
/// # Panics
///
/// Panics if `A ≁ B` (no cast exists between incompatible types).
pub fn cast_to_coercion_in(
    types: &mut TypeArena,
    carena: &mut CArena,
    source: TypeId,
    p: Label,
    target: TypeId,
) -> CCoercionId {
    assert!(
        types.compatible(source, target),
        "no cast between incompatible types {} and {}",
        types.display(source),
        types.display(target)
    );
    match (types.node(source), types.node(target)) {
        (TNode::Base(_), TNode::Base(_)) => carena.id(source, types),
        (TNode::Fun(a, b), TNode::Fun(a2, b2)) => {
            let dom = cast_to_coercion_in(types, carena, a2, p.complement(), a);
            let cod = cast_to_coercion_in(types, carena, b, p, b2);
            carena.fun(dom, cod, types)
        }
        (TNode::Dyn, TNode::Dyn) => carena.id(source, types),
        (_, TNode::Dyn) => {
            let g = types
                .ground_of(source)
                .expect("source is not ? in this branch");
            if source == types.ground(g) {
                carena.inj(g, types)
            } else {
                let g_id = types.ground(g);
                let inner = cast_to_coercion_in(types, carena, source, p, g_id);
                let inj = carena.inj(g, types);
                carena.seq(inner, inj, types)
            }
        }
        (TNode::Dyn, _) => {
            let g = types
                .ground_of(target)
                .expect("target is not ? in this branch");
            if target == types.ground(g) {
                carena.proj(g, p, types)
            } else {
                let g_id = types.ground(g);
                let proj = carena.proj(g, p, types);
                let inner = cast_to_coercion_in(types, carena, g_id, p, target);
                carena.seq(proj, inner, types)
            }
        }
        _ => unreachable!("incompatible cast slipped past the guard"),
    }
}

/// Translates a compiled λB term to a compiled λC term: every
/// [`BTerm::Cast`] becomes a [`CTerm::Coerce`] whose coercion is built
/// by [`cast_to_coercion_in`] directly in `carena` — the interned
/// counterpart of [`term_b_to_c`], with no tree term or tree coercion
/// anywhere. Against warm arenas the whole pass interns nothing.
pub fn term_b_to_c_compiled(term: &BTerm, carena: &mut CArena, types: &mut TypeArena) -> CTerm {
    match term {
        BTerm::Const(k) => CTerm::Const(*k),
        BTerm::Op(op, args) => CTerm::Op(
            *op,
            args.iter()
                .map(|a| term_b_to_c_compiled(a, carena, types))
                .collect(),
        ),
        BTerm::Var(x) => CTerm::Var(x.clone()),
        BTerm::Lam(x, ty, b) => CTerm::Lam(
            x.clone(),
            *ty,
            term_b_to_c_compiled(b, carena, types).into(),
        ),
        BTerm::App(a, b) => CTerm::App(
            term_b_to_c_compiled(a, carena, types).into(),
            term_b_to_c_compiled(b, carena, types).into(),
        ),
        BTerm::Cast(m, source, p, target) => {
            let c = cast_to_coercion_in(types, carena, *source, *p, *target);
            CTerm::Coerce(term_b_to_c_compiled(m, carena, types).into(), c)
        }
        BTerm::Blame(p, ty) => CTerm::Blame(*p, *ty),
        BTerm::If(c, t, e) => CTerm::If(
            term_b_to_c_compiled(c, carena, types).into(),
            term_b_to_c_compiled(t, carena, types).into(),
            term_b_to_c_compiled(e, carena, types).into(),
        ),
        BTerm::Let(x, m, n) => CTerm::Let(
            x.clone(),
            term_b_to_c_compiled(m, carena, types).into(),
            term_b_to_c_compiled(n, carena, types).into(),
        ),
        BTerm::Fix(f, x, dom, cod, b) => CTerm::Fix(
            f.clone(),
            x.clone(),
            *dom,
            *cod,
            term_b_to_c_compiled(b, carena, types).into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground};

    fn p(n: u32) -> Label {
        Label::new(n)
    }

    #[test]
    fn base_cases() {
        assert_eq!(
            cast_to_coercion(&Type::INT, p(0), &Type::INT),
            Coercion::id(Type::INT)
        );
        assert_eq!(
            cast_to_coercion(&Type::DYN, p(0), &Type::DYN),
            Coercion::id(Type::DYN)
        );
        assert_eq!(
            cast_to_coercion(&Type::INT, p(0), &Type::DYN),
            Coercion::inj(Ground::Base(BaseType::Int))
        );
        assert_eq!(
            cast_to_coercion(&Type::DYN, p(0), &Type::INT),
            Coercion::proj(Ground::Base(BaseType::Int), p(0))
        );
    }

    #[test]
    fn function_cast_complements_the_domain() {
        // |Int→Int ⇒p ?→?| = Int?p̄ → Int!
        let ii = Type::fun(Type::INT, Type::INT);
        let c = cast_to_coercion(&ii, p(0), &Type::dyn_fun());
        assert_eq!(
            c,
            Coercion::fun(
                Coercion::proj(Ground::Base(BaseType::Int), p(0).complement()),
                Coercion::inj(Ground::Base(BaseType::Int)),
            )
        );
    }

    #[test]
    fn non_ground_injection_factors() {
        // |Int→Int ⇒p ?| = |Int→Int ⇒p ?→?| ; (?→?)!
        let ii = Type::fun(Type::INT, Type::INT);
        let c = cast_to_coercion(&ii, p(0), &Type::DYN);
        let inner = cast_to_coercion(&ii, p(0), &Type::dyn_fun());
        assert_eq!(c, inner.seq(Coercion::inj(Ground::Fun)));
    }

    #[test]
    fn non_ground_projection_factors() {
        // |? ⇒p Int→Int| = (?→?)?p ; |?→? ⇒p Int→Int|
        let ii = Type::fun(Type::INT, Type::INT);
        let c = cast_to_coercion(&Type::DYN, p(0), &ii);
        let inner = cast_to_coercion(&Type::dyn_fun(), p(0), &ii);
        assert_eq!(c, Coercion::proj(Ground::Fun, p(0)).seq(inner));
    }

    #[test]
    fn translation_preserves_types() {
        // Prop 10.1 on a representative cast: the coercion coerces
        // exactly from A to B.
        let samples = [
            (Type::INT, Type::DYN),
            (Type::DYN, Type::INT),
            (Type::fun(Type::INT, Type::BOOL), Type::DYN),
            (Type::DYN, Type::fun(Type::DYN, Type::BOOL)),
            (
                Type::fun(Type::INT, Type::BOOL),
                Type::fun(Type::DYN, Type::DYN),
            ),
        ];
        for (a, b) in &samples {
            let c = cast_to_coercion(a, p(7), b);
            assert!(c.check(a, b), "|{a} ⇒ {b}| = {c} must coerce {a} ⇒ {b}");
        }
    }

    #[test]
    fn interned_cast_translation_agrees_with_tree_translation() {
        let samples = [
            (Type::INT, Type::INT),
            (Type::INT, Type::DYN),
            (Type::DYN, Type::INT),
            (Type::DYN, Type::DYN),
            (Type::fun(Type::INT, Type::BOOL), Type::DYN),
            (Type::DYN, Type::fun(Type::DYN, Type::BOOL)),
            (
                Type::fun(Type::INT, Type::BOOL),
                Type::fun(Type::DYN, Type::DYN),
            ),
        ];
        let mut types = TypeArena::new();
        let mut carena = CArena::new();
        for (a, b) in &samples {
            let a_id = types.intern(a);
            let b_id = types.intern(b);
            let id = cast_to_coercion_in(&mut types, &mut carena, a_id, p(7), b_id);
            assert_eq!(
                carena.resolve(id, &types),
                cast_to_coercion(a, p(7), b),
                "|{a} ⇒ {b}|"
            );
            // Idempotent: the same cast maps to the same id.
            assert_eq!(
                id,
                cast_to_coercion_in(&mut types, &mut carena, a_id, p(7), b_id)
            );
        }
    }

    #[test]
    fn compiled_term_translation_decompiles_to_tree_translation() {
        use bc_lambda_b::programs;
        let mut types = TypeArena::new();
        let mut carena = CArena::new();
        for (name, b) in [
            ("boundary_loop", programs::boundary_loop(4)),
            ("even_odd_mixed", programs::even_odd_mixed(3)),
            ("wrapped_identity", programs::wrapped_identity(3)),
        ] {
            let bterm = bc_lambda_b::bterm::compile(&b, &mut types);
            let compiled = term_b_to_c_compiled(&bterm, &mut carena, &mut types);
            assert_eq!(
                bc_lambda_c::cterm::decompile(&compiled, &carena, &types),
                term_b_to_c(&b),
                "{name}"
            );
        }
        // A second pass over the same programs interns nothing.
        let (t_len, c_len) = (types.len(), carena.len());
        for b in [
            programs::boundary_loop(4),
            programs::even_odd_mixed(3),
            programs::wrapped_identity(3),
        ] {
            let bterm = bc_lambda_b::bterm::compile(&b, &mut types);
            let _ = term_b_to_c_compiled(&bterm, &mut carena, &mut types);
        }
        assert_eq!((types.len(), carena.len()), (t_len, c_len));
    }

    #[test]
    fn safety_corresponds_to_label_polarity() {
        // Lemma 9 on examples: A <:+ B iff |A ⇒p B| safe for p.
        use bc_syntax::{neg_subtype, pos_subtype};
        let samples = [
            (Type::INT, Type::DYN),
            (Type::DYN, Type::INT),
            (Type::fun(Type::INT, Type::INT), Type::dyn_fun()),
            (Type::dyn_fun(), Type::fun(Type::INT, Type::INT)),
        ];
        for (a, b) in &samples {
            let c = cast_to_coercion(a, p(3), b);
            assert_eq!(pos_subtype(a, b), c.safe_for(p(3)), "{a} ⇒ {b}");
            assert_eq!(
                neg_subtype(a, b),
                c.safe_for(p(3).complement()),
                "{a} ⇒ {b}"
            );
        }
    }
}
