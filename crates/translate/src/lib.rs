//! Translations between the three calculi of Siek–Thiemann–Wadler
//! (PLDI 2015) and executable versions of the paper's metatheory.
//!
//! * [`b_to_c`] — `|·|BC`: casts to coercions (Figure 4, left);
//!   designed so that λB and λC run in *lockstep* (Proposition 11).
//! * [`c_to_b`] — `|·|CB`: a coercion to a *sequence* of casts
//!   (Figure 4, right); a coercion may carry many blame labels but a
//!   cast only one.
//! * [`c_to_s`] — `|·|CS`: coercions to canonical (space-efficient)
//!   coercions (Figure 6); this is also the normalisation function
//!   underlying λS.
//! * [`s_to_c`] — `|·|SC`: the trivial inclusion of λS back into λC.
//! * [`b_to_s`] — the composite `|·|BS = |·|CS ∘ |·|BC` used by the
//!   applications in §5.
//! * [`bisim`] — executable bisimulation checkers: the lockstep
//!   co-execution of λB/λC and the normalised-trace alignment of
//!   λC/λS.
//! * [`fundamental`] — Lemma 20 and the Fundamental Property of Casts
//!   (Lemma 21).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b_to_c;
pub mod b_to_s;
pub mod bisim;
pub mod c_to_b;
pub mod c_to_s;
pub mod fundamental;
pub mod s_to_c;

pub use b_to_c::{cast_to_coercion, cast_to_coercion_in, term_b_to_c, term_b_to_c_compiled};
pub use b_to_s::term_b_to_s;
pub use c_to_b::{coercion_to_casts, term_c_to_b};
pub use c_to_s::{
    coercion_to_space, coercion_to_space_in, term_c_to_s, term_c_to_s_compiled,
    term_c_to_s_compiled_in, term_c_to_s_from_compiled, term_c_to_s_in, CNormalizer,
    CNormalizerStats,
};
pub use s_to_c::{coercion_id_to_c, term_s_to_c};
