//! Cross-calculus property tests: the paper's metatheory, executable.
//!
//! Experiment ids refer to DESIGN.md §2:
//! E3 (type safety), E5 (blame safety), E7 (Lemma 8), E8 (Lemma 9),
//! E9 (Props 10/15), E10 (Prop 11 lockstep), E12 (Prop 16 alignment),
//! E13 (empirical full abstraction), E14 (Lemmas 20/21),
//! E21 (blame agreement).

use bc_core as ls;
use bc_lambda_b as lb;
use bc_lambda_c as lc;
use bc_syntax::{neg_subtype, pos_subtype, Label};
use bc_testkit::Gen;
use bc_translate::bisim::{
    aligned_cs, lockstep_bc, observe_run_b, observe_run_c, observe_run_s, Observation,
};
use bc_translate::fundamental::{fundamental_pair, lemma20, premise_holds};
use bc_translate::{cast_to_coercion, coercion_to_space, term_b_to_c, term_c_to_b, term_c_to_s};
use proptest::prelude::*;

const FUEL: u64 = 3_000;

/// Runs a λB term to an observation (fuel exhaustion observes as
/// [`Observation::Timeout`]).
fn obs_b(t: &lb::Term) -> Observation {
    observe_run_b(t, FUEL)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// E3: preservation + progress for λB along whole executions of
    /// random well-typed programs (Proposition 3).
    #[test]
    fn type_safety_b(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        prop_assert_eq!(lb::type_of(&m), Ok(ty.clone()));
        let mut cur = m;
        for _ in 0..FUEL {
            match lb::eval::step(&cur, &ty) {
                lb::eval::Step::Next(n) => {
                    // Preservation.
                    prop_assert_eq!(lb::type_of(&n), Ok(ty.clone()));
                    cur = n;
                }
                // Progress: step only ever reports Value/Blame on
                // actual values / blame (it panics on stuck terms).
                lb::eval::Step::Value => {
                    prop_assert!(cur.is_value());
                    break;
                }
                lb::eval::Step::Blame(_) => break,
            }
        }
    }

    /// E3 for λC and λS, via the translations.
    #[test]
    fn type_safety_c_and_s(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mc = term_b_to_c(&gen.term_b(&ty, 4));
        prop_assert_eq!(lc::type_of(&mc), Ok(ty.clone()));
        let mut cur = mc.clone();
        for _ in 0..200 {
            match lc::eval::step(&cur, &ty) {
                lc::eval::Step::Next(n) => {
                    // `blame p` (and its one-step precursor `V⟨⊥⟩`)
                    // has every type, so a state that fails the
                    // checking judgment must be about to abort.
                    if !lc::typing::has_type(&n, &ty) {
                        let aborts = matches!(
                            lc::eval::run(&n, 1_000).map(|r| r.outcome),
                            Ok(lc::eval::Outcome::Blame(_))
                                | Err(lc::eval::RunError::IllTyped(_))
                        );
                        prop_assert!(aborts, "λC preservation broken at {}", n);
                    }
                    cur = n;
                }
                _ => break,
            }
        }
        let ms = term_c_to_s(&mc);
        prop_assert_eq!(ls::type_of(&ms), Ok(ty.clone()));
        let mut cur = ms;
        let mut ctx = ls::MergeCtx::new();
        for _ in 0..200 {
            match ls::eval::step_in(&mut ctx, &cur, &ty) {
                ls::eval::Step::Next(n) => {
                    if !ls::typing::has_type(&n, &ty) {
                        let aborts = matches!(
                            ls::eval::run(&n, 1_000).map(|r| r.outcome),
                            Ok(ls::eval::Outcome::Blame(_))
                                | Err(ls::eval::RunError::IllTyped(_))
                        );
                        prop_assert!(aborts, "λS preservation broken at {}", n);
                    }
                    cur = n;
                }
                _ => break,
            }
        }
    }

    /// E5: blame safety (Proposition 5) in all three calculi — if a
    /// run blames q, the initial term was not safe for q; and safety
    /// is preserved by reduction.
    #[test]
    fn blame_safety(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        let mc = term_b_to_c(&m);
        let ms = term_c_to_s(&mc);
        if let Ok(lb::eval::Run { outcome: lb::eval::Outcome::Blame(q), .. }) =
            lb::eval::run(&m, FUEL)
        {
            prop_assert!(!lb::safety::term_safe_for(&m, q), "λB blamed safe label {}", q);
            prop_assert!(!lc::safety::term_safe_for(&mc, q), "λC blamed safe label {}", q);
            prop_assert!(!ls::safety::term_safe_for(&ms, q), "λS blamed safe label {}", q);
        }
        // Safety for an arbitrary fresh label is preserved stepwise.
        let fresh = Label::new(4000);
        prop_assert!(lb::safety::term_safe_for(&m, fresh));
        let mut cur = m;
        for _ in 0..100 {
            match lb::eval::step(&cur, &ty) {
                lb::eval::Step::Next(n) => {
                    prop_assert!(lb::safety::term_safe_for(&n, fresh));
                    cur = n;
                }
                _ => break,
            }
        }
    }

    /// E8: Lemma 9 — positive/negative subtyping coincide with
    /// positive/negative safety of the translated coercion.
    #[test]
    fn lemma9(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (a, b) = gen.compatible_pair(3);
        let p = Label::new(0);
        let c = cast_to_coercion(&a, p, &b);
        prop_assert_eq!(pos_subtype(&a, &b), c.safe_for(p), "A = {}, B = {}", a, b);
        prop_assert_eq!(
            neg_subtype(&a, &b),
            c.safe_for(p.complement()),
            "A = {}, B = {}", a, b
        );
    }

    /// E9 (Prop 10.2 / 15.2): translations preserve blame safety.
    #[test]
    fn translations_preserve_safety(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        let mc = term_b_to_c(&m);
        let ms = term_c_to_s(&mc);
        for q in m.labels().into_iter().chain([Label::new(99)]) {
            if lb::safety::term_safe_for(&m, q) {
                prop_assert!(lc::safety::term_safe_for(&mc, q), "λC lost safety for {}", q);
                prop_assert!(ls::safety::term_safe_for(&ms, q), "λS lost safety for {}", q);
            }
        }
    }

    /// E10: Proposition 11 — λB and |·|BC run in lockstep, step by
    /// step, on random well-typed programs.
    #[test]
    fn lockstep(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        lockstep_bc(&m, FUEL).map_err(TestCaseError::fail)?;
    }

    /// E12: Proposition 16 — λC and |·|CS align under normalised
    /// traces and agree on outcomes.
    #[test]
    fn alignment(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mc = term_b_to_c(&gen.term_b(&ty, 4));
        aligned_cs(&mc, FUEL).map_err(TestCaseError::fail)?;
    }

    /// E7: Lemma 8 — translating a coercion to casts and back yields
    /// the same canonical form (the executable core of C→B→C full
    /// abstraction).
    #[test]
    fn lemma8_roundtrip(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (c, tgt) = gen.coercion_from(&src, 3);
        let casts = bc_translate::coercion_to_casts(&c, &src, &tgt);
        let back = casts
            .iter()
            .map(|k| cast_to_coercion(&k.source, k.label, &k.target))
            .reduce(|acc, next| acc.seq(next))
            .unwrap_or_else(|| lc::Coercion::id(src.clone()));
        prop_assert_eq!(coercion_to_space(&back), coercion_to_space(&c), "coercion {}", c);
    }

    /// E7 at the term level: a λC program and its cast expansion
    /// produce the same observation.
    #[test]
    fn c_to_b_preserves_outcomes(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let mc = term_b_to_c(&gen.term_b(&ty, 3));
        let mb = term_c_to_b(&mc).expect("well typed");
        prop_assert_eq!(lb::type_of(&mb), Ok(ty.clone()));
        let oc = observe_run_c(&mc, FUEL);
        let ob = observe_run_b(&mb, FUEL);
        if oc != Observation::Timeout && ob != Observation::Timeout {
            // The cast expansion may blame a *bullet-labelled* cast
            // only where the coercion blamed its own label; labels of
            // real failures agree.
            prop_assert_eq!(ob, oc);
        }
    }

    /// E13 (empirical full abstraction / adequacy): under random
    /// closing contexts, a λB term and its λC and λS translations
    /// produce the same observation.
    #[test]
    fn contextual_agreement(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let hole_ty = gen.ty(1);
        let result_ty = gen.ty(1);
        let m = gen.term_b(&hole_ty, 3);
        let cx = gen.context_b(&hole_ty, &result_ty, 3);
        let plugged = Gen::plug(&cx, &m);
        let ob = obs_b(&plugged);
        let mc = term_b_to_c(&plugged);
        let oc = observe_run_c(&mc, FUEL);
        let os = observe_run_s(&term_c_to_s(&mc), FUEL);
        if ob != Observation::Timeout && oc != Observation::Timeout && os != Observation::Timeout {
            prop_assert_eq!(&ob, &oc);
            prop_assert_eq!(&ob, &os);
        }
    }

    /// E6/E13: Lemma 19 instances — `M⟨id⟩ ≅ M` and
    /// `M⟨c ; d⟩ ≅ M⟨c⟩⟨d⟩` — observed under random contexts.
    #[test]
    fn lemma19_under_contexts(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(1);
        let (c, mid) = gen.coercion_from(&src, 2);
        let (d, tgt) = gen.coercion_from(&mid, 2);
        let base = gen.term_b(&src, 2);
        let mc = term_b_to_c(&base);
        let lhs = mc.clone().coerce(c.clone().seq(d.clone()));
        let rhs = mc.coerce(c).coerce(d);
        // Wrap both in the same random λB-generated context,
        // translated to λC.
        let result_ty = gen.ty(1);
        let cx = term_b_to_c(&gen.context_b(&tgt, &result_ty, 2));
        let plug = |inner: &lc::Term| {
            lc::subst::subst(&cx, &bc_syntax::Name::from(bc_testkit::HOLE), inner)
        };
        let o1 = observe_run_c(&plug(&lhs), FUEL);
        let o2 = observe_run_c(&plug(&rhs), FUEL);
        if o1 != Observation::Timeout && o2 != Observation::Timeout {
            prop_assert_eq!(o1, o2);
        }
    }

    /// E14: Lemma 20 on random type triples.
    #[test]
    fn lemma20_random(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (a, b) = gen.compatible_pair(2);
        let c = gen.compatible_with(&a, 2);
        if let Some(ok) = lemma20(&a, &b, &c, Label::new(3)) {
            prop_assert!(ok, "Lemma 20 fails at A={}, B={}, C={}", a, b, c);
        }
    }

    /// E14: the Fundamental Property of Casts (Lemma 21), observed
    /// under random contexts.
    #[test]
    fn fundamental_property(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (a, b) = gen.compatible_pair(2);
        let c = gen.compatible_with(&a, 2);
        if !premise_holds(&a, &b, &c) {
            return Ok(());
        }
        let m = gen.term_b(&a, 2);
        let p = Label::new(5);
        let (single, double) = fundamental_pair(&m, &a, p, &c, &b);
        let result_ty = gen.ty(1);
        let cx = gen.context_b(&b, &result_ty, 2);
        let o1 = obs_b(&Gen::plug(&cx, &single));
        let o2 = obs_b(&Gen::plug(&cx, &double));
        if o1 != Observation::Timeout && o2 != Observation::Timeout {
            prop_assert_eq!(o1, o2, "A={}, B={}, C={}", a, b, c);
        }
    }

    /// E21: whatever the outcome — value, blame p, or timeout — all
    /// three calculi agree, including the *identity* of the blamed
    /// label.
    #[test]
    fn blame_agreement(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(1);
        let m = gen.term_b(&ty, 4);
        let ob = obs_b(&m);
        let mc = term_b_to_c(&m);
        let oc = observe_run_c(&mc, FUEL);
        let os = observe_run_s(&term_c_to_s(&mc), FUEL);
        if let (Observation::Blame(p), Observation::Blame(q), Observation::Blame(r)) =
            (&ob, &oc, &os)
        {
            prop_assert_eq!(p, q);
            prop_assert_eq!(p, r);
        }
    }

    /// Prop 10.1/15.1: translations preserve types.
    #[test]
    fn translations_preserve_types(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let ty = gen.ty(2);
        let m = gen.term_b(&ty, 4);
        let mc = term_b_to_c(&m);
        prop_assert_eq!(lc::type_of(&mc), Ok(ty.clone()));
        prop_assert_eq!(ls::type_of(&term_c_to_s(&mc)), Ok(ty.clone()));
    }
}
