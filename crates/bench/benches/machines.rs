//! Machine throughput on three workload classes: fully typed (no
//! casts), fully untyped (casts at every operation), and
//! boundary-heavy (casts at every call). The λS machine's merging
//! should cost little on cast-free code and win on boundary-heavy
//! code.

use bc_lambda_b::programs;
use bc_machine::{cek_b, cek_s};
use bc_translate::{term_b_to_c, term_c_to_s};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("machines");
    group.sample_size(10);
    let n = 256i64;
    let workloads = [
        ("typed", programs::even_typed(n)),
        ("untyped", programs::even_untyped(n)),
        ("boundary", programs::even_odd_mixed(n)),
    ];
    for (name, b) in &workloads {
        let s = term_c_to_s(&term_b_to_c(b));
        group.bench_with_input(BenchmarkId::new("machine_b", name), b, |bench, t| {
            bench.iter(|| black_box(cek_b::run(black_box(t), u64::MAX)))
        });
        group.bench_with_input(BenchmarkId::new("machine_s", name), &s, |bench, t| {
            bench.iter(|| black_box(cek_s::run(black_box(t), u64::MAX)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machines);
criterion_main!(benches);
