//! Cost of the translations of Figures 4 and 6 (`|·|BC`, `|·|CB`,
//! `|·|CS`) over random well-typed programs.

use bc_bench::random_programs;
use bc_translate::{term_b_to_c, term_c_to_b, term_c_to_s};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");
    group.sample_size(20);
    let programs = random_programs(7, 32);
    let in_c: Vec<_> = programs.iter().map(term_b_to_c).collect();
    group.bench_function("b_to_c", |b| {
        b.iter(|| {
            for m in &programs {
                black_box(term_b_to_c(black_box(m)));
            }
        })
    });
    group.bench_function("c_to_s", |b| {
        b.iter(|| {
            for m in &in_c {
                black_box(term_c_to_s(black_box(m)));
            }
        })
    });
    group.bench_function("c_to_b", |b| {
        b.iter(|| {
            for m in &in_c {
                black_box(term_c_to_b(black_box(m)).expect("well typed"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
