//! The parallel-serving benchmark: `SessionPool` throughput on a
//! mixed workload, by worker count and warmth.
//!
//! Two questions, matching the two levers of the pool subsystem:
//!
//! * `mixed256/workersN` — a 256-program mixed batch (boundary
//!   loops, static loops, dynamic combinators, blame programs,
//!   fuel-bounded spinners; see `bc_testkit::sources`) submitted to a
//!   **warmed** pool of 1, 2, and 4 workers. Every configuration runs
//!   the identical batch over the identical frozen base, so the
//!   worker-count series isolates the parallel speedup (1 worker also
//!   quantifies the queue + channel overhead versus a bare session).
//! * `lifecycle64/{cold,warmed}` — the full pool lifecycle (build,
//!   warm up, serve 64 jobs, shut down) with and without warmup. The
//!   warmed pool is warmed on the *actual* batch sources, so every
//!   submission auto-upgrades to a pre-compiled job (`JobSpec`
//!   carries the λB IR): workers never lex, parse, or elaborate, and
//!   they share the frozen base instead of interning their own
//!   working sets. Warmed must not be slower than cold — the
//!   regression assertion lives in `tests/pool.rs`
//!   (`warmed_lifecycle_is_not_slower_than_cold`) and in the `report`
//!   binary.
//!
//! A third question arrived with live base promotion:
//!
//! * `drift256/{frozen,promoting}` — a 256-program **drifting** batch
//!   (the hot type rotates every 64 jobs; see
//!   `bc_testkit::sources::drifting`) through a warmed 4-worker pool
//!   with promotion disabled versus enabled. The frozen pool
//!   re-interns every rotation's nodes once per worker forever; the
//!   promoting pool freezes the drifted overlay into a new base epoch
//!   and returns to pure base hits. The pair quantifies what the
//!   epoch hot-swap costs (freeze + republish) against what it saves
//!   (per-worker re-interning) — the memory side is asserted by
//!   counters in `tests/pool.rs`.
//!
//! Wall-clock per iteration is the whole batch, so the reported time
//! is batch latency; divide by the batch size for per-job throughput.

use bc_testkit::sources;
use blame_coercion::{Engine, PromotionPolicy, SessionPool};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Jobs per throughput iteration.
const BATCH: usize = 256;
/// Fuel bound: large enough for every convergent shape, small enough
/// that the divergent shape's fixed cost stays comparable.
const FUEL: u64 = 5_000;

fn bench_pool_throughput(c: &mut Criterion) {
    let batch = sources::mixed(42, BATCH);
    let mut group = c.benchmark_group("pool_throughput");
    group.sample_size(10);

    for workers in [1usize, 2, 4] {
        let pool = SessionPool::builder()
            .workers(workers)
            .default_fuel(FUEL)
            .warmup(sources::shapes())
            .build()
            .expect("warmup compiles");
        group.bench_function(format!("mixed256/workers{workers}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|s| pool.submit(s.as_str(), Engine::MachineS))
                    .collect();
                for handle in handles {
                    // Run errors (the divergent shape) are part of
                    // the workload, not a bench failure.
                    let _ = black_box(handle.wait());
                }
            })
        });
    }

    group.bench_function("lifecycle64/cold", |b| {
        b.iter(|| {
            let pool = SessionPool::builder()
                .workers(4)
                .default_fuel(FUEL)
                .build()
                .expect("builds");
            for handle in
                pool.submit_batch(batch.iter().take(64).map(String::as_str), Engine::MachineS)
            {
                let _ = black_box(handle.wait());
            }
        })
    });
    // Warm on the actual 64-job sources (deduplicated): submissions
    // then travel as compiled jobs and skip the front end entirely.
    let mut warmup_sources: Vec<String> = batch.iter().take(64).cloned().collect();
    warmup_sources.sort();
    warmup_sources.dedup();
    group.bench_function("lifecycle64/warmed", |b| {
        b.iter(|| {
            let pool = SessionPool::builder()
                .workers(4)
                .default_fuel(FUEL)
                .warmup(warmup_sources.iter().cloned())
                .build()
                .expect("warmup compiles");
            for handle in
                pool.submit_batch(batch.iter().take(64).map(String::as_str), Engine::MachineS)
            {
                let _ = black_box(handle.wait());
            }
        })
    });

    group.finish();
}

fn bench_pool_drift(c: &mut Criterion) {
    // Each iteration is a full lifecycle (build, serve, shut down):
    // promotion permanently mutates the pool's base, so reusing one
    // pool across iterations would only exercise the hot-swap on the
    // first pass.
    let batch = sources::drifting(7, BATCH, 64);
    let mut group = c.benchmark_group("pool_drift");
    group.sample_size(10);
    for (name, promoting) in [("frozen", false), ("promoting", true)] {
        group.bench_function(format!("drift256/{name}"), |b| {
            b.iter(|| {
                let builder = SessionPool::builder()
                    .workers(4)
                    .default_fuel(FUEL)
                    .warmup(sources::shapes());
                let builder = if promoting {
                    // Tighter than the production default so each
                    // 64-job rotation actually promotes within the
                    // 256-job batch.
                    builder.promotion(PromotionPolicy {
                        min_local_nodes: 8,
                        min_miss_rate: 0.0,
                        min_interval_jobs: 16,
                    })
                } else {
                    builder.no_promotion()
                };
                let pool = builder.build().expect("warmup compiles");
                for handle in pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS)
                {
                    let _ = black_box(handle.wait());
                }
                black_box(pool.shutdown())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool_throughput, bench_pool_drift);
criterion_main!(benches);
