//! E20: the full pipeline — parse, gradually type check, insert casts,
//! translate twice, and execute — on static and boundary-heavy
//! sources.

use bc_bench::{boundary_source, static_source};
use blame_coercion::{Engine, Session};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, source) in [
        ("static", static_source(256)),
        ("boundary", boundary_source(256)),
    ] {
        group.bench_with_input(BenchmarkId::new("compile", name), &source, |b, src| {
            b.iter(|| {
                let session = Session::new();
                black_box(session.compile(black_box(src)).expect("compiles"))
            })
        });
        let session = Session::builder().default_fuel(u64::MAX).build();
        let compiled = session.compile(&source).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("run_machine_s", name),
            &compiled,
            |b, p| b.iter(|| black_box(session.run(p, Engine::MachineS).expect("terminates"))),
        );
        group.bench_with_input(
            BenchmarkId::new("run_machine_b", name),
            &compiled,
            |b, p| b.iter(|| black_box(session.run(p, Engine::MachineB).expect("terminates"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
