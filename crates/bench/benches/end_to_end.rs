//! E20: the full pipeline — parse, gradually type check, insert casts,
//! translate twice, and execute — on static and boundary-heavy
//! sources.

use bc_bench::{boundary_source, static_source};
use blame_coercion::{Compiled, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for (name, source) in [
        ("static", static_source(256)),
        ("boundary", boundary_source(256)),
    ] {
        group.bench_with_input(BenchmarkId::new("compile", name), &source, |b, src| {
            b.iter(|| black_box(Compiled::compile(black_box(src)).expect("compiles")))
        });
        let compiled = Compiled::compile(&source).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("run_machine_s", name),
            &compiled,
            |b, p| b.iter(|| black_box(p.run(Engine::MachineS, u64::MAX))),
        );
        group.bench_with_input(
            BenchmarkId::new("run_machine_b", name),
            &compiled,
            |b, p| b.iter(|| black_box(p.run(Engine::MachineB, u64::MAX))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
