//! The session-reuse benchmark: cold per-program sessions versus one
//! warm shared session for a 16-program batch.
//!
//! The session API's whole premise is that a server compiling many
//! structurally similar gradually-typed programs should pay the
//! interning/memoization bill once, not once per program. Two groups
//! quantify it on a batch of 16 boundary-crossing loops (identical
//! casts and types, different loop bounds):
//!
//! * `compile_batch` — `cold` creates a fresh [`Session`] for every
//!   program (the pre-session architecture: per-program arenas);
//!   `warm` compiles the whole batch into one session, so programs
//!   2..16 intern nothing.
//! * `compile_and_run_batch` — the same comparison with each program
//!   also executed on the λS machine, so the shared compose cache's
//!   warm merges count too.

use bc_bench::boundary_source;
use blame_coercion::{Engine, Session};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BATCH: usize = 16;

fn batch_sources() -> Vec<String> {
    (0..BATCH as i64).map(|i| boundary_source(32 + i)).collect()
}

fn bench_session_reuse(c: &mut Criterion) {
    let sources = batch_sources();
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(10);

    group.bench_function("compile_batch/cold", |b| {
        b.iter(|| {
            for src in &sources {
                let session = Session::new();
                black_box(session.compile(black_box(src)).expect("compiles"));
            }
        })
    });
    group.bench_function("compile_batch/warm", |b| {
        b.iter(|| {
            let session = Session::new();
            black_box(
                session
                    .compile_batch(sources.iter().map(String::as_str))
                    .expect("compiles"),
            );
        })
    });

    group.bench_function("compile_and_run_batch/cold", |b| {
        b.iter(|| {
            for src in &sources {
                let session = Session::builder().default_fuel(u64::MAX).build();
                let program = session.compile(black_box(src)).expect("compiles");
                black_box(session.run(&program, Engine::MachineS).expect("terminates"));
            }
        })
    });
    group.bench_function("compile_and_run_batch/warm", |b| {
        b.iter(|| {
            let session = Session::builder().default_fuel(u64::MAX).build();
            let programs = session
                .compile_batch(sources.iter().map(String::as_str))
                .expect("compiles");
            for program in &programs {
                black_box(session.run(program, Engine::MachineS).expect("terminates"));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_session_reuse);
criterion_main!(benches);
