//! E15: time cost of the space leak.
//!
//! Runs the paper's even/odd boundary workload on the three machines.
//! The λB/λC machines allocate Θ(n) continuation frames; the λS
//! machine merges them. (The *space* series itself is printed by
//! `cargo run -p bc-bench --bin report`.)

use bc_lambda_b::programs;
use bc_machine::{cek_b, cek_c, cek_s};
use bc_translate::{term_b_to_c, term_c_to_s};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_space_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("space/even_odd_mixed");
    group.sample_size(10);
    for n in [64i64, 256, 1024] {
        let b = programs::even_odd_mixed(n);
        let cc = term_b_to_c(&b);
        let s = term_c_to_s(&cc);
        let fuel = u64::MAX;
        group.bench_with_input(BenchmarkId::new("machine_b", n), &b, |bench, t| {
            bench.iter(|| black_box(cek_b::run(black_box(t), fuel)))
        });
        group.bench_with_input(BenchmarkId::new("machine_c", n), &cc, |bench, t| {
            bench.iter(|| black_box(cek_c::run(black_box(t), fuel)))
        });
        group.bench_with_input(BenchmarkId::new("machine_s", n), &s, |bench, t| {
            bench.iter(|| black_box(cek_s::run(black_box(t), fuel)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_space_workload);
criterion_main!(benches);
