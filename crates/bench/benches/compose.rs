//! E16: the composition algebra microbenchmark.
//!
//! Compares, over random canonical coercions of growing height:
//! * λS `s # t` (this paper, ten-line structural recursion),
//! * Siek–Wadler threesome composition `Q ∘ P` (on erased labeled
//!   types),
//! * naive Henglein rewriting of the λC composite (the Herman et al.
//!   representation).

use bc_baselines::naive;
use bc_baselines::threesome;
use bc_bench::composable_batch;
use bc_core::arena::{CoercionArena, ComposeCache};
use bc_core::compose::compose;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose");
    group.sample_size(20);
    for height in [1usize, 2, 3, 4, 5] {
        let pairs = composable_batch(42, height, 64);
        group.bench_with_input(
            BenchmarkId::new("lambda_s_sharp", height),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for (s, t) in pairs {
                        black_box(compose(black_box(s), black_box(t)));
                    }
                })
            },
        );
        let labeled: Vec<_> = pairs
            .iter()
            .map(|(s, t)| (threesome::from_space(s), threesome::from_space(t)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("threesome_meet", height),
            &labeled,
            |b, labeled| {
                b.iter(|| {
                    for (p, q) in labeled {
                        black_box(threesome::compose_labeled(black_box(q), black_box(p)));
                    }
                })
            },
        );
        let coercions: Vec<_> = pairs
            .iter()
            .map(|(s, t)| s.to_coercion().seq(t.to_coercion()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("naive_rewriting", height),
            &coercions,
            |b, coercions| {
                b.iter(|| {
                    for c in coercions {
                        black_box(naive::normalize(black_box(c)));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Tree compose versus the hash-consed arena, on deep function
/// coercions. Three variants:
///
/// * `tree` — the ten-line recursion over `Rc` trees (clones on every
///   call);
/// * `arena_cold` — interned composition with an empty cache each
///   round (measures the structural recursion over nodes, interning
///   included);
/// * `arena_warm` — interned composition with a persistent cache: the
///   steady state of the λS machine running a boundary-crossing loop,
///   where every merge after the first is a single hash lookup.
fn bench_compose_interned(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_interned");
    group.sample_size(20);
    for height in [3usize, 5, 7] {
        let pairs = composable_batch(97, height, 64);

        group.bench_with_input(BenchmarkId::new("tree", height), &pairs, |b, pairs| {
            b.iter(|| {
                for (s, t) in pairs {
                    black_box(compose(black_box(s), black_box(t)));
                }
            })
        });

        group.bench_with_input(
            BenchmarkId::new("arena_cold", height),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut arena = CoercionArena::new();
                    let mut cache = ComposeCache::new();
                    for (s, t) in pairs {
                        let a = arena.intern(black_box(s));
                        let bb = arena.intern(black_box(t));
                        black_box(arena.compose(&mut cache, a, bb));
                    }
                })
            },
        );

        // Pre-intern once; the measured loop is pure id compositions
        // against a warm cache.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let ids: Vec<_> = pairs
            .iter()
            .map(|(s, t)| (arena.intern(s), arena.intern(t)))
            .collect();
        for (a, b) in &ids {
            arena.compose(&mut cache, *a, *b);
        }
        group.bench_with_input(BenchmarkId::new("arena_warm", height), &ids, |b, ids| {
            b.iter(|| {
                for (x, y) in ids {
                    black_box(arena.compose(&mut cache, black_box(*x), black_box(*y)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compose, bench_compose_interned);
criterion_main!(benches);
