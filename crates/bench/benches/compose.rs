//! E16: the composition algebra microbenchmark.
//!
//! Compares, over random canonical coercions of growing height:
//! * λS `s # t` (this paper, ten-line structural recursion),
//! * Siek–Wadler threesome composition `Q ∘ P` (on erased labeled
//!   types),
//! * naive Henglein rewriting of the λC composite (the Herman et al.
//!   representation).

use bc_baselines::naive;
use bc_baselines::threesome;
use bc_bench::composable_batch;
use bc_core::compose::compose;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose");
    group.sample_size(20);
    for height in [1usize, 2, 3, 4, 5] {
        let pairs = composable_batch(42, height, 64);
        group.bench_with_input(
            BenchmarkId::new("lambda_s_sharp", height),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    for (s, t) in pairs {
                        black_box(compose(black_box(s), black_box(t)));
                    }
                })
            },
        );
        let labeled: Vec<_> = pairs
            .iter()
            .map(|(s, t)| (threesome::from_space(s), threesome::from_space(t)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("threesome_meet", height),
            &labeled,
            |b, labeled| {
                b.iter(|| {
                    for (p, q) in labeled {
                        black_box(threesome::compose_labeled(black_box(q), black_box(p)));
                    }
                })
            },
        );
        let coercions: Vec<_> = pairs
            .iter()
            .map(|(s, t)| s.to_coercion().seq(t.to_coercion()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("naive_rewriting", height),
            &coercions,
            |b, coercions| {
                b.iter(|| {
                    for c in coercions {
                        black_box(naive::normalize(black_box(c)));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compose);
criterion_main!(benches);
