//! The front-end benchmark: typechecking and elaboration on interned
//! types versus the tree oracles.
//!
//! Two questions, matching the two wins of the interned front end:
//!
//! * **Warm-session amortisation** — `elaborate_batch16` typechecks
//!   and elaborates a 16-program batch of structurally similar
//!   boundary loops: `cold` gives every program a fresh `TypeArena`
//!   (the pre-session shape), `warm` threads one arena through the
//!   whole batch (programs 2..16 intern nothing and answer every
//!   consistency question from the memo tables), and `tree` is the
//!   tree elaborator baseline.
//! * **Checker throughput on large types** — `typecheck_calls` checks
//!   the call-heavy program (one annotation of size 2⁹, 64 call
//!   sites) with the tree λB checker versus the interned checker
//!   against a warm arena: the tree checker re-walks the domain type
//!   at every site, the interned checker answers each with an O(1) id
//!   equality. `elaborate_tower` asks the harder question — the full
//!   elaboration pass on the wrapper tower, where annotations dominate.
//!   Its `interned_warm` row measures the **compiled** front end
//!   (`elaborate_compiled` over a pre-parsed `ExprI`): annotations are
//!   interned once at parse time, so warm elaboration never re-walks
//!   an annotation tree — the per-annotation re-walk was exactly what
//!   made the old `elaborate_in` row slower than the tree baseline on
//!   this shape.

use bc_bench::frontend_workload::{BATCH, CALLS, CALL_DEPTH, TOWER};
use bc_bench::{
    boundary_source, call_heavy_source, parse_source, parse_source_in, wrapper_tower_source,
};
use bc_gtlc::{elaborate, elaborate_compiled, elaborate_in};
use bc_lambda_b::typing::{type_of, type_of_interned};
use bc_syntax::TypeArena;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let exprs: Vec<_> = (0..BATCH as i64)
        .map(|i| parse_source(&boundary_source(32 + i)))
        .collect();
    let tower = parse_source(&wrapper_tower_source(TOWER));
    let calls = parse_source(&call_heavy_source(CALL_DEPTH, CALLS));
    let calls_b = elaborate(&calls).expect("call tower elaborates").term;

    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);

    group.bench_function("elaborate_batch16/tree", |b| {
        b.iter(|| {
            for e in &exprs {
                black_box(elaborate(black_box(e)).expect("elaborates"));
            }
        })
    });
    group.bench_function("elaborate_batch16/cold", |b| {
        b.iter(|| {
            for e in &exprs {
                let mut types = TypeArena::new();
                black_box(elaborate_in(black_box(e), &mut types).expect("elaborates"));
            }
        })
    });
    group.bench_function("elaborate_batch16/warm", |b| {
        let mut types = TypeArena::new();
        b.iter(|| {
            for e in &exprs {
                black_box(elaborate_in(black_box(e), &mut types).expect("elaborates"));
            }
        })
    });

    // Overlay: the warm arena frozen and consulted through a
    // per-worker overlay — the single-thread overhead the tiered
    // (base-first) lookup adds to a fully warm front end. Compare
    // against elaborate_batch16/warm: the difference is the sharding
    // layer's cost on one core.
    group.bench_function("elaborate_batch16/overlay", |b| {
        let mut warm_types = TypeArena::new();
        for e in &exprs {
            let _ = elaborate_in(e, &mut warm_types).expect("elaborates");
        }
        let base = std::sync::Arc::new(warm_types.freeze());
        let mut overlay = TypeArena::with_base(base, 1 << 16);
        b.iter(|| {
            for e in &exprs {
                black_box(elaborate_in(black_box(e), &mut overlay).expect("elaborates"));
            }
        })
    });

    group.bench_function("typecheck_calls/tree", |b| {
        b.iter(|| black_box(type_of(black_box(&calls_b)).expect("well typed")))
    });
    group.bench_function("typecheck_calls/interned_warm", |b| {
        let mut types = TypeArena::new();
        let _ = type_of_interned(&calls_b, &mut types);
        b.iter(|| black_box(type_of_interned(black_box(&calls_b), &mut types).expect("well typed")))
    });

    group.bench_function("elaborate_tower/tree", |b| {
        b.iter(|| black_box(elaborate(black_box(&tower)).expect("elaborates")))
    });
    // The compiled front end: the tower is parsed once into an
    // `ExprI` (annotations interned at parse time), so the timed
    // region is pure elaboration on `TypeId`s — no annotation tree is
    // walked, matching what `Session::compile` actually runs.
    group.bench_function("elaborate_tower/interned_warm", |b| {
        let mut types = TypeArena::new();
        let tower_i = parse_source_in(&wrapper_tower_source(TOWER), &mut types);
        let _ = elaborate_compiled(&tower_i, &mut types);
        b.iter(|| {
            black_box(elaborate_compiled(black_box(&tower_i), &mut types).expect("elaborates"))
        })
    });
    // The same compiled pass on the 16-program batch, for comparison
    // with the `elaborate_in` warm row above: the gap is the
    // per-annotation re-walk the intern-at-parse front end removed.
    group.bench_function("elaborate_batch16/compiled_warm", |b| {
        let mut types = TypeArena::new();
        let exprs_i: Vec<_> = (0..BATCH as i64)
            .map(|i| parse_source_in(&boundary_source(32 + i), &mut types))
            .collect();
        for e in &exprs_i {
            let _ = elaborate_compiled(e, &mut types).expect("elaborates");
        }
        b.iter(|| {
            for e in &exprs_i {
                black_box(elaborate_compiled(black_box(e), &mut types).expect("elaborates"));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
