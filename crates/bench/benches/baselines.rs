//! E17/E18: the baseline algebras — threesome erasure/composition and
//! supercoercion interpretation — against λS primitives.

use bc_baselines::supercoercion::{AtomicType, Supercoercion};
use bc_baselines::threesome;
use bc_bench::composable_batch;
use bc_core::compose::compose;
use bc_syntax::{BaseType, Ground, Label};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    let pairs = composable_batch(11, 3, 64);

    group.bench_function("erase_to_threesome", |b| {
        b.iter(|| {
            for (s, t) in &pairs {
                black_box(threesome::from_space(black_box(s)));
                black_box(threesome::from_space(black_box(t)));
            }
        })
    });

    group.bench_function("homomorphism_check", |b| {
        b.iter(|| {
            for (s, t) in &pairs {
                let lhs = threesome::from_space(&compose(s, t));
                let rhs = threesome::compose_labeled(
                    &threesome::from_space(t),
                    &threesome::from_space(s),
                );
                assert_eq!(lhs, rhs);
            }
        })
    });

    // Supercoercion composition through normalisation.
    let id_dyn = Rc::new(Supercoercion::IdAtomic(AtomicType::Dyn));
    let samples = [
        Supercoercion::ProjInj(Ground::Base(BaseType::Int), Label::new(0)),
        Supercoercion::FunProjInj(Label::new(1), id_dyn.clone(), id_dyn.clone()),
        Supercoercion::FunInj(id_dyn.clone(), id_dyn),
    ];
    group.bench_function("supercoercion_compose", |b| {
        b.iter(|| {
            for c1 in &samples {
                for c2 in &samples {
                    if c1.to_coercion().synthesize().map(|x| x.1)
                        == c2.to_coercion().synthesize().map(|x| x.0)
                    {
                        black_box(c1.compose_via_space(black_box(c2)));
                    }
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
