//! The boundary-crossing benchmark: tree path versus compiled path.
//!
//! The λS machine's residual per-crossing cost on tree terms was the
//! O(size) hash walk re-interning each `Coerce` node's coercion. The
//! compiled IR (`bc_core::sterm`) eliminates it: coercions are `Copy`
//! ids minted once at compile time, so a crossing is an id load plus a
//! cached merge. Three groups quantify the change:
//!
//! * `boundary_crossings` — the crossing operation itself, iterated
//!   512 times the way the machine's frame merging iterates it on the
//!   boundary loop. `tree_path` re-interns the coercion tree before
//!   every merge (what evaluating a tree `Coerce` node used to do);
//!   `compiled_path` merges ids directly (what evaluating a compiled
//!   `Coerce` node does).
//! * `boundary_program` — the 512-iteration boundary loop end to end,
//!   warm arenas in both variants: `tree_path` hands the machine the
//!   tree term each run (per-run compilation included), `compiled_path`
//!   evaluates the pre-compiled [`STerm`] the pipeline now stores.
//! * `compile_term` — the lowering pass itself, cold and warm, to show
//!   compilation is a pay-once cost.
//!
//! [`STerm`]: bc_core::sterm::STerm

use bc_core::sterm::compile_term;
use bc_core::CompileCtx;
use bc_lambda_b::programs;
use bc_machine::cek_s;
use bc_syntax::{Label, Type, TypeArena};
use bc_translate::{cast_to_coercion, coercion_to_space, term_b_to_c, term_c_to_s};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn boundary_tree(n: i64) -> bc_core::Term {
    term_c_to_s(&term_b_to_c(&programs::boundary_loop(n)))
}

/// The boundary loop's crossing coercion: `Int → Bool ⇒ ? ⇒ Int → Bool`
/// normalised — a self-composable round trip, exactly what the
/// machine's top coercion frame merges with on every iteration.
fn crossing_coercion() -> bc_core::SpaceCoercion {
    let fun_ty = Type::fun(Type::INT, Type::BOOL);
    let c = cast_to_coercion(&fun_ty, Label::new(0), &Type::DYN).seq(cast_to_coercion(
        &Type::DYN,
        Label::new(1),
        &fun_ty,
    ));
    coercion_to_space(&c)
}

fn bench_boundary_crossings(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary_crossings");
    group.sample_size(20);
    let s = crossing_coercion();
    let iters = 512u32;

    // Tree path: each crossing hash-walks the coercion tree into the
    // arena before the (cached) merge — the per-crossing cost of
    // evaluating a tree `Coerce` node.
    let mut ctx = CompileCtx::new();
    let warm = ctx.arena.intern(&s);
    let mut acc = ctx.arena.compose(&mut ctx.cache, warm, warm);
    acc = ctx.arena.compose(&mut ctx.cache, acc, warm);
    group.bench_with_input(BenchmarkId::new("tree_path", iters), &s, |b, s| {
        b.iter(|| {
            let mut frame = acc;
            for _ in 0..iters {
                let sid = ctx.arena.intern(black_box(s));
                frame = ctx.arena.compose(&mut ctx.cache, frame, sid);
            }
            black_box(frame)
        })
    });

    // Compiled path: the id was minted at compile time; a crossing is
    // an id load plus the same cached merge.
    group.bench_with_input(BenchmarkId::new("compiled_path", iters), &warm, |b, sid| {
        b.iter(|| {
            let mut frame = acc;
            for _ in 0..iters {
                frame = ctx.arena.compose(&mut ctx.cache, frame, black_box(*sid));
            }
            black_box(frame)
        })
    });
    group.finish();
}

fn bench_boundary_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary_program");
    group.sample_size(20);
    for n in [64i64, 512] {
        let tree = boundary_tree(n);

        // Tree path: the machine receives the tree term every run and
        // lowers it into its (persistent, warm) arena first — the
        // pre-IR pipeline behaviour.
        let mut ctx = CompileCtx::new();
        cek_s::run_in(&tree, &mut ctx.arena, &mut ctx.cache, u64::MAX);
        group.bench_with_input(BenchmarkId::new("tree_path", n), &tree, |b, tree| {
            b.iter(|| {
                black_box(cek_s::run_in(
                    black_box(tree),
                    &mut ctx.arena,
                    &mut ctx.cache,
                    u64::MAX,
                ))
            })
        });

        // Compiled path: the program was lowered once; every run is
        // id loads and cached merges (zero interning — asserted by
        // the machine's reuse counters in the test suite).
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&tree);
        cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, u64::MAX);
        group.bench_with_input(
            BenchmarkId::new("compiled_path", n),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    black_box(cek_s::run_compiled_in(
                        black_box(compiled),
                        &mut ctx.arena,
                        &mut ctx.cache,
                        u64::MAX,
                    ))
                })
            },
        );

        // Overlay path: the same compiled program evaluated against a
        // per-worker overlay arena+cache over the *frozen* warm state
        // — the single-thread overhead of the tiered (base-first)
        // lookup the sharding layer adds. The run's merges all hit
        // the frozen pair table; nothing is interned locally.
        let base = std::sync::Arc::new(ctx.arena.freeze(&ctx.cache));
        let mut overlay = bc_core::CoercionArena::with_base(std::sync::Arc::clone(&base));
        let mut overlay_cache = bc_core::ComposeCache::with_base(base, 1 << 16);
        cek_s::run_compiled_in(&compiled, &mut overlay, &mut overlay_cache, u64::MAX);
        group.bench_with_input(
            BenchmarkId::new("overlay_path", n),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    black_box(cek_s::run_compiled_in(
                        black_box(compiled),
                        &mut overlay,
                        &mut overlay_cache,
                        u64::MAX,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_compile_term(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_term");
    group.sample_size(20);
    let tree = boundary_tree(512);

    // Cold: fresh arenas every round — every coercion and type is
    // hash-walked and stored.
    group.bench_with_input(BenchmarkId::new("cold", 512), &tree, |b, tree| {
        b.iter(|| {
            let mut ctx = CompileCtx::new();
            black_box(compile_term(
                black_box(tree),
                &mut ctx.arena,
                &mut ctx.types,
            ))
        })
    });

    // Warm: arenas already hold everything — the walk is pure hash
    // hits, the steady state of recompiling a hot program.
    let mut arena = bc_core::CoercionArena::new();
    let mut types = TypeArena::new();
    compile_term(&tree, &mut arena, &mut types);
    group.bench_with_input(BenchmarkId::new("warm", 512), &tree, |b, tree| {
        b.iter(|| black_box(compile_term(black_box(tree), &mut arena, &mut types)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_boundary_crossings,
    bench_boundary_program,
    bench_compile_term
);
criterion_main!(benches);
