//! Shared workload builders for the benchmark suite and the
//! table-generating `report` binary (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use bc_core::coercion::SpaceCoercion;
use bc_syntax::Type;
use bc_testkit::Gen;

/// A pair of composable canonical coercions whose heights are close to
/// the requested bound (for the composition microbenchmarks, E16).
pub fn composable_pair_of_height(seed: u64, height: usize) -> (SpaceCoercion, SpaceCoercion) {
    let mut gen = Gen::new(seed);
    // Grow the source type tall enough to admit tall coercions.
    let mut attempt = 0u64;
    loop {
        let src = gen.ty(height);
        let (s, mid) = gen.space_from(&src, height + 1);
        let (t, _) = gen.space_from(&mid, height + 1);
        if s.height().max(t.height()) >= height || attempt > 200 {
            return (s, t);
        }
        attempt += 1;
    }
}

/// A batch of composable pairs for averaging.
pub fn composable_batch(seed: u64, height: usize, n: usize) -> Vec<(SpaceCoercion, SpaceCoercion)> {
    (0..n as u64)
        .map(|i| composable_pair_of_height(seed.wrapping_add(i), height))
        .collect()
}

/// Random well-typed λB programs for throughput benchmarks.
pub fn random_programs(seed: u64, n: usize) -> Vec<bc_lambda_b::Term> {
    let mut gen = Gen::new(seed);
    (0..n)
        .map(|_| {
            let ty = gen.ty(1);
            gen.term_b(&ty, 4)
        })
        .collect()
}

/// The GTLC source of the boundary-crossing loop (compiled end to end
/// by the `end_to_end` bench).
pub fn boundary_source(n: i64) -> String {
    format!(
        "letrec loop (n : Int) : Bool = \
           if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
         in loop {n}"
    )
}

/// A cast-free, fully static GTLC source (the no-overhead baseline).
pub fn static_source(n: i64) -> String {
    format!(
        "letrec loop (n : Int) : Bool = \
           if n = 0 then true else loop (n - 1) \
         in loop {n}"
    )
}

/// The fully static *wrapper tower*: identity functions at types of
/// exponentially growing size (`T₀ = Int`, `Tₖ = Tₖ₋₁ → Tₖ₋₁`),
/// applied in a chain. A tree type checker pays O(size) structural
/// equality and O(size) clones at every application — exactly the
/// cost the interned front-end's O(1) id comparisons eliminate — so
/// this is the tree-vs-interned checker workload of the `frontend`
/// bench.
pub fn wrapper_tower_source(depth: usize) -> String {
    fn ty(k: usize) -> String {
        if k == 0 {
            "Int".to_owned()
        } else {
            let inner = ty(k - 1);
            format!("({inner} -> {inner})")
        }
    }
    let mut src = String::from("let f0 = fun (x : Int) => x + 1 in ");
    for k in 1..=depth {
        src.push_str(&format!("let f{k} = fun (x : {}) => x in ", ty(k)));
    }
    let mut app = format!("f{depth}");
    for k in (0..depth).rev() {
        app = format!("({app} f{k})");
    }
    src.push_str(&format!("({app} 41)"));
    src
}

/// The *call-heavy* front-end workload: one function whose annotation
/// is a type of size 2^(depth+1), applied at `calls` nested call
/// sites. A tree checker re-compares the whole domain type
/// structurally at every site — O(calls · 2^depth) — where the
/// interned checker interns each annotation once and answers every
/// site with an O(1) id equality. This is the shape a server sees:
/// few distinct types, many comparisons.
///
/// # Panics
///
/// Panics if `depth` is zero (the argument annotation is the type one
/// level below the function's).
pub fn call_heavy_source(depth: usize, calls: usize) -> String {
    assert!(depth >= 1, "call_heavy_source needs depth >= 1");
    fn ty(k: usize) -> String {
        if k == 0 {
            "Int".to_owned()
        } else {
            let inner = ty(k - 1);
            format!("({inner} -> {inner})")
        }
    }
    let param = ty(depth);
    let arg = ty(depth - 1);
    let mut app = String::from("x");
    for _ in 0..calls {
        app = format!("(f {app})");
    }
    format!("fun (f : {param}) => fun (x : {arg}) => {app}")
}

/// The front-end workload constants, shared by the `frontend`
/// criterion bench and the `report` binary so BENCH_4.json and the
/// bench output always measure the same thing.
pub mod frontend_workload {
    /// Programs in the warm/cold elaborate batch.
    pub const BATCH: usize = 16;
    /// Depth of the wrapper tower (annotations up to size 2^(TOWER+1)).
    pub const TOWER: usize = 8;
    /// Annotation depth of the call-heavy program.
    pub const CALL_DEPTH: usize = 8;
    /// Call sites in the call-heavy program.
    pub const CALLS: usize = 64;
}

/// Parses a GTLC source to its surface AST (panicking on syntax
/// errors), so front-end benches can measure typecheck+elaborate in
/// isolation from lexing and parsing.
pub fn parse_source(source: &str) -> bc_gtlc::ast::Expr {
    let tokens = bc_gtlc::lexer::lex(source).expect("bench source lexes");
    bc_gtlc::parser::parse(&tokens).expect("bench source parses")
}

/// Parses a GTLC source to the *interned* surface AST against a
/// caller-owned arena (panicking on syntax errors): annotations are
/// interned at parse time, so front-end benches can measure the
/// compiled elaboration pass ([`bc_gtlc::elaborate_compiled`]) with
/// zero per-annotation tree walks inside the timed region — symmetric
/// to [`parse_source`], which pre-builds the `Rc<Type>` annotation
/// trees for the tree elaborator.
pub fn parse_source_in(source: &str, types: &mut bc_syntax::TypeArena) -> bc_gtlc::ast::ExprI {
    let tokens = bc_gtlc::lexer::lex(source).expect("bench source lexes");
    bc_gtlc::parser::parse_in(&tokens, types).expect("bench source parses")
}

/// Checks a type is exported (keeps the facade crates linked in).
pub fn _touch(_: &Type) {}
