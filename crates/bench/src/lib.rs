//! Shared workload builders for the benchmark suite and the
//! table-generating `report` binary (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use bc_core::coercion::SpaceCoercion;
use bc_syntax::Type;
use bc_testkit::Gen;

/// A pair of composable canonical coercions whose heights are close to
/// the requested bound (for the composition microbenchmarks, E16).
pub fn composable_pair_of_height(seed: u64, height: usize) -> (SpaceCoercion, SpaceCoercion) {
    let mut gen = Gen::new(seed);
    // Grow the source type tall enough to admit tall coercions.
    let mut attempt = 0u64;
    loop {
        let src = gen.ty(height);
        let (s, mid) = gen.space_from(&src, height + 1);
        let (t, _) = gen.space_from(&mid, height + 1);
        if s.height().max(t.height()) >= height || attempt > 200 {
            return (s, t);
        }
        attempt += 1;
    }
}

/// A batch of composable pairs for averaging.
pub fn composable_batch(seed: u64, height: usize, n: usize) -> Vec<(SpaceCoercion, SpaceCoercion)> {
    (0..n as u64)
        .map(|i| composable_pair_of_height(seed.wrapping_add(i), height))
        .collect()
}

/// Random well-typed λB programs for throughput benchmarks.
pub fn random_programs(seed: u64, n: usize) -> Vec<bc_lambda_b::Term> {
    let mut gen = Gen::new(seed);
    (0..n)
        .map(|_| {
            let ty = gen.ty(1);
            gen.term_b(&ty, 4)
        })
        .collect()
}

/// The GTLC source of the boundary-crossing loop (compiled end to end
/// by the `end_to_end` bench).
pub fn boundary_source(n: i64) -> String {
    format!(
        "letrec loop (n : Int) : Bool = \
           if n = 0 then true else ((loop : ?) : Int -> Bool) (n - 1) \
         in loop {n}"
    )
}

/// A cast-free, fully static GTLC source (the no-overhead baseline).
pub fn static_source(n: i64) -> String {
    format!(
        "letrec loop (n : Int) : Bool = \
           if n = 0 then true else loop (n - 1) \
         in loop {n}"
    )
}

/// Checks a type is exported (keeps the facade crates linked in).
pub fn _touch(_: &Type) {}
