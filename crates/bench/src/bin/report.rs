//! Regenerates the measurement tables recorded in EXPERIMENTS.md, and
//! emits the machine-readable `BENCH_10.json` (per-bench medians,
//! including the end-to-end compile+run, pool-throughput, drift,
//! promotion-cost, tier-overhead, scheduler-fairness, and
//! observability-overhead numbers) alongside the human output. CI
//! diffs the checked-in `BENCH_10.json` against its predecessor
//! `BENCH_9.json` with the `bench_diff` binary and fails on >25%
//! regression of any shared timing key.
//!
//! ```sh
//! cargo run -p bc-bench --bin report --release
//! ```

use std::sync::Arc;
use std::time::Instant;

use bc_baselines::{naive, threesome};
use bc_bench::{
    boundary_source, call_heavy_source, composable_batch, parse_source, parse_source_in,
    wrapper_tower_source,
};
use bc_core::compose::compose;
use bc_core::{CoercionArena, CompileCtx, ComposeCache};
use bc_gtlc::{elaborate, elaborate_compiled, elaborate_in};
use bc_lambda_b::programs;
use bc_lambda_b::typing::{type_of, type_of_interned};
use bc_machine::{cek_b, cek_c, cek_s};
use bc_syntax::TypeArena;
use bc_testkit::sources;
use bc_translate::bisim::{aligned_cs, lockstep_bc};
use bc_translate::{term_b_to_c, term_c_to_s};
use blame_coercion::{Engine, PromotionPolicy, Session, SessionPool};

/// Collected `(key, value)` measurements for the JSON report.
type Metrics = Vec<(String, f64)>;

fn main() {
    let mut metrics = Metrics::new();
    space_table();
    compose_table(&mut metrics);
    steps_table();
    height_table();
    frontend_table(&mut metrics);
    capacity_table(&mut metrics);
    end_to_end_table(&mut metrics);
    compile_run_table(&mut metrics);
    pool_table(&mut metrics);
    drift_table(&mut metrics);
    promotion_cost_table(&mut metrics);
    fairness_table(&mut metrics);
    tier_table(&mut metrics);
    obs_table(&mut metrics);
    write_json("BENCH_10.json", &metrics);
}

/// Median wall-clock of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Writes the collected medians as a flat JSON object (hand-rolled:
/// the container is offline, so no serde).
fn write_json(path: &str, metrics: &Metrics) {
    let mut out = String::from("{\n");
    for (i, (key, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("  \"{key}\": {value:.1}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {path}");
}

/// E25: the whole pipeline per verdict — `Session::compile` (lex,
/// parse-and-intern, elaborate to the compiled λB IR, lower to the
/// compiled λS IR) *plus* the run, source to verdict. `cold` builds a
/// fresh session per iteration and pays the interning bill; `warm`
/// recompiles a structurally similar source (different loop bound)
/// into one warm session — the allocation-free path: zero type or
/// coercion interns, zero `|·|CS` normalisations, zero `Rc` term
/// trees, verified by the session's own counters after timing.
fn compile_run_table(metrics: &mut Metrics) {
    println!("## E25 — end-to-end compile+run (source → verdict, n = 64)");
    println!();
    println!("| engine | cold session | warm session |");
    println!("|--------|--------------|--------------|");
    const REPS: usize = 21;
    for (slug, engine) in [
        ("machine_s", Engine::MachineS),
        ("lambda_s", Engine::LambdaS),
    ] {
        let cold = median_ns(REPS, || {
            let session = Session::builder().default_fuel(u64::MAX).build();
            let program = session.compile(&boundary_source(64)).expect("compiles");
            std::hint::black_box(session.run(&program, engine).expect("terminates"));
        });
        let session = Session::builder().default_fuel(u64::MAX).build();
        let seed = session.compile(&boundary_source(64)).expect("compiles");
        session.run(&seed, engine).expect("terminates");
        let warm_stats = session.stats();
        let mut bound = 64i64;
        let warm = median_ns(REPS, || {
            bound = 57 + (bound + 1) % 16; // similar shape, fresh constant
            let program = session.compile(&boundary_source(bound)).expect("compiles");
            std::hint::black_box(session.run(&program, engine).expect("terminates"));
        });
        let after = session.stats();
        assert_eq!(after.tree_builds, 0, "warm path built a term tree");
        assert_eq!(
            after.coercions.nodes, warm_stats.coercions.nodes,
            "warm path interned coercions"
        );
        assert_eq!(
            after.type_nodes, warm_stats.type_nodes,
            "warm path interned types"
        );
        println!("| {engine} | {:.1} µs | {:.1} µs |", cold / 1e3, warm / 1e3);
        metrics.push((format!("compile_run/{slug}/cold_ns"), cold));
        metrics.push((format!("compile_run/{slug}/warm_ns"), warm));
    }
    println!();
}

/// E23: `SessionPool` throughput on the 256-program mixed workload —
/// worker-count series over one warmed frozen base, plus the
/// cold-vs-warmed pool lifecycle. The worker series only shows
/// wall-clock speedup when the machine has cores to give
/// (`pool/available_parallelism` is recorded so the series is
/// interpretable: on a 1-core container the workers time-slice and
/// the 4-worker row measures queueing overhead, not parallelism).
fn pool_table(metrics: &mut Metrics) {
    println!("## E23 — SessionPool throughput (256-program mixed workload)");
    println!();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {cores} core(s)");
    println!();
    metrics.push(("pool/available_parallelism".into(), cores as f64));
    let batch = sources::mixed(42, 256);
    const FUEL: u64 = 5_000;

    println!("| workers | batch ms | jobs/s |");
    println!("|---------|----------|--------|");
    let mut worker_medians = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = SessionPool::builder()
            .workers(workers)
            .default_fuel(FUEL)
            .warmup(sources::shapes())
            .build()
            .expect("warmup compiles");
        let median = median_ns(9, || {
            let handles: Vec<_> = batch
                .iter()
                .map(|s| pool.submit(s.as_str(), Engine::MachineS))
                .collect();
            for handle in handles {
                let _ = std::hint::black_box(handle.wait());
            }
        });
        println!(
            "| {workers} | {:.1} | {:.0} |",
            median / 1e6,
            batch.len() as f64 / (median / 1e9)
        );
        metrics.push((format!("pool/mixed256/workers{workers}_ns"), median));
        worker_medians.push((workers, median));
        let stats = pool.shutdown();
        assert_eq!(stats.local_coercion_nodes(), 0, "warmed pool re-interned");
    }
    if let (Some((_, t1)), Some((_, t4))) = (worker_medians.first(), worker_medians.last()) {
        println!();
        println!("speedup 4 workers over 1: {:.2}×", t1 / t4);
        metrics.push(("pool/mixed256/speedup_4_over_1".into(), t1 / t4));
    }

    // The warmed lifecycle warms on the *actual* 64-job sources
    // (deduplicated), so every submission auto-upgrades to a
    // pre-compiled job: workers never lex, parse, or elaborate —
    // warmup's compile work is what serves the batch. (Warming on
    // `sources::shapes()` alone shares arenas but still re-parsed
    // every job, which is how the warmed lifecycle used to come out
    // *slower* than cold.)
    let mut warmup_sources: Vec<String> = batch.iter().take(64).cloned().collect();
    warmup_sources.sort();
    warmup_sources.dedup();
    let run_lifecycle = |warmed: bool| -> f64 {
        let t0 = Instant::now();
        let mut builder = SessionPool::builder().workers(4).default_fuel(FUEL);
        if warmed {
            builder = builder.warmup(warmup_sources.iter().cloned());
        }
        let pool = builder.build().expect("builds");
        for handle in pool.submit_batch(batch.iter().take(64).map(String::as_str), Engine::MachineS)
        {
            let _ = std::hint::black_box(handle.wait());
        }
        t0.elapsed().as_nanos() as f64
    };
    // Paired reps: each rep times one cold and one warmed lifecycle
    // back-to-back (alternating order) and contributes their ratio, so
    // machine drift between measurements lands on both sides of every
    // pair instead of splitting cleanly between a cold block and a
    // warmed block — the estimator E29 uses, for the same reason.
    let mut colds = Vec::new();
    let mut warmeds = Vec::new();
    let mut lifecycle_ratios = Vec::new();
    for rep in 0..13 {
        let (cold, warmed) = if rep % 2 == 0 {
            let cold = run_lifecycle(false);
            (cold, run_lifecycle(true))
        } else {
            let warmed = run_lifecycle(true);
            (run_lifecycle(false), warmed)
        };
        colds.push(cold);
        warmeds.push(warmed);
        lifecycle_ratios.push(warmed / cold);
    }
    let cold = median_of(colds);
    let warmed = median_of(warmeds);
    let lifecycle_ratio = median_of(lifecycle_ratios);
    println!();
    println!(
        "pool lifecycle (build + 64 jobs + shutdown): cold {:.1} ms, warmed {:.1} ms \
         (paired warmed/cold ratio {lifecycle_ratio:.2})",
        cold / 1e6,
        warmed / 1e6
    );
    // Parity within noise is the bar, not strict dominance: the batch
    // is run-dominated (5 000 fuel per job), so the warmed savings —
    // no per-worker front end, no re-lowering, shared base — show up
    // as warmed ≈ cold instead of the former +13% inversion. The 10%
    // band trips on systematic regressions (warmup burning job fuel
    // at build, workers re-lowering compiled jobs) without flaking on
    // scheduler jitter; `tests/pool.rs` carries the same guard.
    assert!(
        lifecycle_ratio <= 1.10,
        "regression: the warmed pool lifecycle (median {warmed:.0} ns) must not be slower than \
         cold (median {cold:.0} ns, paired ratio {lifecycle_ratio:.2}) — compiled jobs skip the \
         whole front end"
    );
    metrics.push(("pool/lifecycle64/cold_ns".into(), cold));
    metrics.push(("pool/lifecycle64/warmed_ns".into(), warmed));
    println!();
}

/// E29: what always-on observability costs the serving path. Two
/// warmed 4-worker pools serve the identical 256-job mixed batch —
/// one fully instrumented (outcome counters, latency and queue-wait
/// histograms, audit ring), one built with `no_observability()` — with
/// reps interleaved so clock drift and scheduler noise land on both
/// sides equally. The job path only ever touches wait-free cells
/// (counter/histogram `fetch_add`s) plus the audit ring's short push
/// mutex, so the budget is tight: the in-table assert fails the run if
/// instrumented serving costs more than 2% over bare.
///
/// The overhead estimator is the median of per-rep *paired* ratios
/// over *fresh pool pairs*: each rep builds a new instrumented and a
/// new bare pool (alternating construction order), warms both, then
/// times the two batches back-to-back inside one ~25 ms window.
/// Pairing cancels machine drift (frequency scaling, neighbours on a
/// shared container); rebuilding per rep turns pool-instance luck —
/// thread placement and allocator layout bias a single long-lived
/// pool's serving rate by up to ±14% on this container, in either
/// direction — into zero-median noise across reps. The median over
/// 31 independent pairs is what the gate judges. The pools are sized
/// to the machine (workers = available cores, capped at 4):
/// oversubscribing a small container buries the per-job signal in
/// cross-thread context-switch churn that belongs to the OS, not the
/// instruments.
fn obs_table(metrics: &mut Metrics) {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    println!("## E29 — observability overhead (256-job mixed batch, {workers} worker(s))");
    println!();
    let batch = sources::mixed(42, 256);
    const FUEL: u64 = 5_000;
    const REPS: usize = 41;
    let build = |instrumented: bool| {
        let mut builder = SessionPool::builder()
            .workers(workers)
            .default_fuel(FUEL)
            .warmup(sources::shapes());
        if !instrumented {
            builder = builder.no_observability();
        }
        builder.build().expect("warmup compiles")
    };
    let serve = |pool: &SessionPool| {
        let handles: Vec<_> = batch
            .iter()
            .map(|s| pool.submit(s.as_str(), Engine::MachineS))
            .collect();
        for handle in handles {
            let _ = std::hint::black_box(handle.wait());
        }
    };
    let mut instrumented_ns: Vec<f64> = Vec::with_capacity(REPS);
    let mut bare_ns: Vec<f64> = Vec::with_capacity(REPS);
    let mut ratios: Vec<f64> = Vec::with_capacity(REPS);
    let mut audited = 0u64;
    let mut total_jobs = 0u64;
    for rep in 0..REPS {
        // Fresh instance pair, alternating construction order.
        let (instrumented, bare) = if rep % 2 == 0 {
            (build(true), build(false))
        } else {
            let bare = build(false);
            (build(true), bare)
        };
        // One unmeasured pass each to warm caches and worker threads,
        // then the timed back-to-back pair.
        serve(&instrumented);
        serve(&bare);
        let t0 = Instant::now();
        serve(&instrumented);
        let inst_rep = t0.elapsed().as_nanos() as f64;
        let t0 = Instant::now();
        serve(&bare);
        let bare_rep = t0.elapsed().as_nanos() as f64;
        instrumented_ns.push(inst_rep);
        bare_ns.push(bare_rep);
        ratios.push(inst_rep / bare_rep);
        // Each instance audited everything it served: one latency
        // sample per job, exactly.
        let latency_count = instrumented
            .metrics_text()
            .lines()
            .find_map(|l| l.strip_prefix("bc_job_latency_ns_count "))
            .expect("exposition has the latency count")
            .parse::<u64>()
            .expect("count is numeric");
        assert_eq!(
            latency_count,
            2 * batch.len() as u64,
            "every job lands in the histogram"
        );
        // Drain the audit stream after the timed region — the cadence
        // a deployed consumer imposes — so the ring serves its
        // never-full push path rather than the perpetual drop-oldest
        // path no real drain cadence produces.
        audited += instrumented.audit_records().len() as u64;
        total_jobs += 2 * batch.len() as u64;
        assert_eq!(instrumented.audit_dropped(), 0, "ring kept every record");
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    let inst = median(&mut instrumented_ns);
    let base = median(&mut bare_ns);
    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    println!("| pool | batch ms | jobs/s | overhead |");
    println!("|------|----------|--------|----------|");
    println!(
        "| instrumented | {:.1} | {:.0} | {overhead_pct:+.2}% |",
        inst / 1e6,
        batch.len() as f64 / (inst / 1e9),
    );
    println!(
        "| no_observability | {:.1} | {:.0} | — |",
        base / 1e6,
        batch.len() as f64 / (base / 1e9),
    );
    println!();

    // The instrumented pools really did audit everything they served:
    // one audit record per job across every instance, nothing lost.
    assert_eq!(
        audited, total_jobs,
        "drained records account for every job served"
    );
    assert!(
        overhead_pct <= 2.0,
        "observability must cost ≤2% on the serving path: instrumented {inst:.0} ns \
         vs bare {base:.0} ns, paired-ratio median {overhead_pct:+.2}%"
    );
    metrics.push(("obs/mixed256/instrumented_ns".into(), inst));
    metrics.push(("obs/mixed256/bare_ns".into(), base));
    metrics.push(("obs/mixed256/overhead_pct".into(), overhead_pct));
    println!(
        "instrumentation overhead on the serving path: {overhead_pct:+.2}% \
         (≤2% asserted; {total_jobs} audited jobs across {REPS} instance pairs, 0 lost)"
    );
    println!();
}

/// E26: the drifting workload — what live base promotion buys. The
/// same 256-program drifting batch (the hot type rotates every 64
/// jobs; see `bc_testkit::sources::drifting`) through a warmed
/// 4-worker pool with promotion disabled versus enabled. The frozen
/// pool re-interns every rotation's nodes once per worker, forever;
/// the promoting pool hot-swaps the drifted overlay in as a new base
/// epoch and returns to pure base hits. Latency quantifies what the
/// freeze+republish costs; the overlay-node column is the memory the
/// epochs reclaim (the hard assertion on it lives in `tests/pool.rs`,
/// on counters, where scheduling noise can't touch it).
fn drift_table(metrics: &mut Metrics) {
    println!("## E26 — drifting workload: frozen base vs live promotion (256 jobs, rotate 64)");
    println!();
    const FUEL: u64 = 5_000;
    let batch = sources::drifting(7, 256, 64);
    println!("| pool | batch ms | jobs/s | overlay nodes interned | steals | promotions |");
    println!("|------|----------|--------|------------------------|--------|------------|");
    let mut overlays = Vec::new();
    for (name, promoting) in [("frozen", false), ("promoting", true)] {
        // Each rep is a full lifecycle: promotion permanently mutates
        // the pool's base, so a reused pool would only hot-swap on
        // the first rep.
        let mut last_stats = None;
        let median = median_ns(9, || {
            let builder = SessionPool::builder()
                .workers(4)
                .default_fuel(FUEL)
                .warmup(sources::shapes());
            let builder = if promoting {
                // Tighter than the production default so every 64-job
                // rotation promotes within the 256-job batch.
                builder.promotion(PromotionPolicy {
                    min_local_nodes: 8,
                    min_miss_rate: 0.0,
                    min_interval_jobs: 16,
                })
            } else {
                builder.no_promotion()
            };
            let pool = builder.build().expect("warmup compiles");
            for handle in pool.submit_batch(batch.iter().map(String::as_str), Engine::MachineS) {
                let _ = std::hint::black_box(handle.wait());
            }
            last_stats = Some(pool.shutdown());
        });
        let stats = last_stats.expect("at least one rep ran");
        let overlay = stats.local_coercion_nodes() + stats.local_type_nodes();
        println!(
            "| {name} | {:.1} | {:.0} | {overlay} | {} | {} |",
            median / 1e6,
            batch.len() as f64 / (median / 1e9),
            stats.steals(),
            stats.promotions,
        );
        metrics.push((format!("pool/drift256/{name}_ns"), median));
        metrics.push((
            format!("pool/drift256/{name}_overlay_nodes"),
            overlay as f64,
        ));
        metrics.push((
            format!("pool/drift256/{name}_steals"),
            stats.steals() as f64,
        ));
        overlays.push(overlay);
    }
    assert!(
        overlays[1] < overlays[0],
        "promotion must cut total overlay interning: promoting {} vs frozen {}",
        overlays[1],
        overlays[0]
    );
    println!();
}

/// A type distinct per `i` (the tower's leaf sequence spells `i` in
/// binary), so compiling `drift_source(i)` over disjoint index ranges
/// interns genuinely new type *and* coercion nodes — unlike
/// `sources::drifting`, whose phase type cycles after 64 phases. E28
/// uses it to grow bases of arbitrary size and to keep every
/// measured append honest (fresh rows, not dedup hits).
fn nested_type(i: usize) -> String {
    let mut ty = String::from("Int");
    let mut n = i + 2;
    while n > 0 {
        let leaf = if n & 1 == 0 { "Int" } else { "Bool" };
        ty = format!("{leaf} -> ({ty})");
        n >>= 1;
    }
    ty
}

/// A dynamic value projected into `nested_type(i)`: one coercion
/// spine plus one type tower per distinct `i`.
fn drift_source(i: usize) -> String {
    format!(
        "let f = ((fun x => x) : ?) in let g = (f : {}) in 1",
        nested_type(i)
    )
}

/// Median of raw nanosecond samples.
fn median_of(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// E28: what the append-only slab base buys promotion — the cost of
/// freezing a fixed-size overlay over bases of growing size, slab
/// append ([`Session::freeze`]) versus detached rebuild
/// ([`Session::freeze_detached`], the old clone-on-promote
/// semantics). Each rep compiles a *distinct* overlay (disjoint
/// `drift_source` index ranges) so every append pushes real rows;
/// the overlay is identical across base scales so the append column
/// isolates base-size dependence. The in-table asserts are the
/// tentpole acceptance criterion: append stays flat (< 1.5×) from 1×
/// to 64× base while the clone grows ≥ 8×.
fn promotion_cost_table(metrics: &mut Metrics) {
    println!("## E28 — promotion cost by base size: slab append vs detached clone");
    println!();
    const BASE_UNIT: usize = 64; // base programs at 1× scale
    const OVERLAY: usize = 16; // overlay programs per promotion
    const REPS: usize = 15;
    println!("| base scale | base nodes (coercion + type) | append µs | detached clone µs |");
    println!("|------------|------------------------------|-----------|-------------------|");
    let mut appends = Vec::new();
    let mut clones = Vec::new();
    for (label, scale) in [("1x", 1usize), ("8x", 8), ("64x", 64)] {
        let warm = Session::builder().default_fuel(u64::MAX).build();
        for i in 0..scale * BASE_UNIT {
            let _ = warm
                .compile(&drift_source(i))
                .expect("base source compiles");
        }
        let base = warm.freeze();
        let base_nodes = base.coercion_nodes() + base.type_nodes();
        let mut append_ns = Vec::new();
        let mut clone_ns = Vec::new();
        for rep in 0..REPS {
            let session = Session::builder()
                .default_fuel(u64::MAX)
                .base(Arc::clone(&base))
                .build();
            for i in 0..OVERLAY {
                let source = drift_source(1_000_000 + rep * OVERLAY + i);
                let _ = session.compile(&source).expect("overlay source compiles");
            }
            let t0 = Instant::now();
            let appended = std::hint::black_box(session.freeze());
            append_ns.push(t0.elapsed().as_nanos() as f64);
            let t1 = Instant::now();
            let detached = std::hint::black_box(session.freeze_detached());
            clone_ns.push(t1.elapsed().as_nanos() as f64);
            assert!(
                appended.extends(&base),
                "an append-freeze must extend its base"
            );
            // Rep 0 is the only rep whose slab holds exactly base +
            // this overlay; later reps' appended views also publish
            // the earlier reps' rows (they sit below the new
            // watermark), so only the first freeze pair is
            // content-identical. `tests/epoch.rs` asserts the full
            // equivalence on single-lineage chains.
            if rep == 0 {
                assert_eq!(
                    detached.coercion_nodes() + detached.type_nodes(),
                    appended.coercion_nodes() + appended.type_nodes(),
                    "append and detached freezes must agree on content"
                );
            }
        }
        let append = median_of(append_ns);
        let clone = median_of(clone_ns);
        println!(
            "| {label} | {base_nodes} | {:.1} | {:.1} |",
            append / 1e3,
            clone / 1e3
        );
        metrics.push((format!("promote/base{label}/nodes"), base_nodes as f64));
        metrics.push((format!("promote/base{label}/append_ns"), append));
        metrics.push((format!("promote/base{label}/clone_ns"), clone));
        appends.push(append);
        clones.push(clone);
    }
    println!();
    // The tentpole criterion, asserted where the numbers are made:
    // promotion cost is O(overlay) under append — flat as the base
    // grows 64× — while the old clone semantics scale with the base.
    assert!(
        appends[2] < appends[0] * 1.5,
        "append-promotion must stay flat in base size: 1x {:.0} ns vs 64x {:.0} ns",
        appends[0],
        appends[2]
    );
    assert!(
        clones[2] >= clones[0] * 8.0,
        "clone-promotion must scale with base size (or the append column is measuring nothing): \
         1x {:.0} ns vs 64x {:.0} ns",
        clones[0],
        clones[2]
    );
    println!(
        "append 64x/1x: {:.2}×; clone 64x/1x: {:.2}×",
        appends[2] / appends[0],
        clones[2] / clones[0]
    );
    println!();
}

/// E27: scheduler fairness — what preemptive timeslicing buys the
/// convergent jobs that share a worker with divergent spinners. A
/// single-worker pool serves a 64-job batch whose first 0/1/4 jobs
/// are million-step spinners (submitted *ahead* of everything else,
/// so head-of-line blocking is maximal), sliced (the default
/// `SliceBudget`) versus unsliced (`no_slicing()`). The columns are
/// the p50/p99 submit-to-completion latency of the *convergent* jobs
/// only: unsliced, each spinner runs its full fuel before the next
/// job starts, so every convergent p-level inherits the spinners'
/// whole runtime; sliced, a spinner costs its neighbours one
/// round-robin slice per turn. `tests/sched.rs` asserts the ordering
/// property exactly (every convergent job beats every spinner); this
/// table prices it.
///
/// Each percentile is computed *per rep* and the table reports the
/// median across reps: these sub-millisecond latencies sit below one
/// OS timeslice on a shared container, so a pooled percentile lets a
/// single preempted rep own the tail — the rep that caught a
/// container hiccup would price the hiccup, not the scheduler.
fn fairness_table(metrics: &mut Metrics) {
    println!(
        "## E27 — scheduler fairness: convergent-job latency beside spinners (1 worker, 64 jobs)"
    );
    println!();
    const SPIN_FUEL: u64 = 1_000_000;
    const SPINNER: &str = "letrec spin (n : Int) : Int = spin (n + 1) in spin 0";
    const REPS: usize = 7;
    // Convergent companions: the mixed workload minus its divergent
    // shape (which would just be more spinners).
    let convergent: Vec<String> = sources::mixed(5, 96)
        .into_iter()
        .filter(|s| !s.contains("letrec spin"))
        .take(60)
        .collect();
    println!("| spinners | mode | p50 ms | p99 ms |");
    println!("|----------|------|--------|--------|");
    let mut p99s = std::collections::HashMap::new();
    for spinners in [0usize, 1, 4] {
        for (mode, sliced) in [("sliced", true), ("unsliced", false)] {
            let mut rep_p50s: Vec<f64> = Vec::new();
            let mut rep_p99s: Vec<f64> = Vec::new();
            for _ in 0..REPS {
                let builder = SessionPool::builder()
                    .workers(1)
                    .default_fuel(5_000)
                    .warmup(sources::shapes());
                let builder = if sliced {
                    builder
                } else {
                    builder.no_slicing()
                };
                let pool = builder.build().expect("warmup compiles");
                let mut handles = Vec::new();
                for _ in 0..spinners {
                    handles.push(pool.submit_with_fuel(SPINNER, Engine::MachineS, SPIN_FUEL));
                }
                let done = Arc::new(std::sync::Mutex::new(Vec::new()));
                for source in &convergent {
                    let handle = pool.submit(source.as_str(), Engine::MachineS);
                    let submitted = Instant::now();
                    let done = Arc::clone(&done);
                    handle.on_ready(move |_| {
                        done.lock()
                            .expect("latency log")
                            .push(submitted.elapsed().as_nanos() as f64);
                    });
                    handles.push(handle);
                }
                for handle in handles {
                    let _ = std::hint::black_box(handle.wait());
                }
                let mut rep: Vec<f64> = done.lock().expect("latency log").clone();
                rep.sort_by(f64::total_cmp);
                rep_p50s.push(rep[rep.len() / 2]);
                rep_p99s.push(rep[(rep.len() * 99 / 100).min(rep.len() - 1)]);
            }
            rep_p50s.sort_by(f64::total_cmp);
            rep_p99s.sort_by(f64::total_cmp);
            let p50 = rep_p50s[REPS / 2];
            let p99 = rep_p99s[REPS / 2];
            println!(
                "| {spinners} | {mode} | {:.2} | {:.2} |",
                p50 / 1e6,
                p99 / 1e6
            );
            metrics.push((format!("sched/fairness/spin{spinners}_{mode}_p50_ns"), p50));
            metrics.push((format!("sched/fairness/spin{spinners}_{mode}_p99_ns"), p99));
            p99s.insert((spinners, mode), p99);
        }
    }
    // The load-bearing comparison: with spinners in front, slicing
    // must beat head-of-line blocking outright — unsliced p99 carries
    // at least one full million-step spinner run.
    for spinners in [1usize, 4] {
        assert!(
            p99s[&(spinners, "sliced")] < p99s[&(spinners, "unsliced")],
            "timeslicing must cut convergent p99 under {spinners} spinner(s): sliced {:.0} ns \
             vs unsliced {:.0} ns",
            p99s[&(spinners, "sliced")],
            p99s[&(spinners, "unsliced")]
        );
    }
    println!();
}

/// E24: the single-thread cost of the tiered (overlay-over-base)
/// lookup versus a flat arena — what the sharding layer charges one
/// core for the privilege of sharing.
fn tier_table(metrics: &mut Metrics) {
    println!("## E24 — tiered-lookup overhead on one core (overlay vs flat)");
    println!();
    const REPS: usize = 41;

    // Front end: elaborate the warm 16-program batch against a flat
    // warm arena versus an overlay over its frozen snapshot.
    let exprs: Vec<_> = (0..bc_bench::frontend_workload::BATCH as i64)
        .map(|i| parse_source(&boundary_source(32 + i)))
        .collect();
    let mut flat_types = TypeArena::new();
    for e in &exprs {
        let _ = elaborate_in(e, &mut flat_types).expect("elaborates");
    }
    let base = Arc::new(flat_types.freeze());
    let mut overlay_types = TypeArena::with_base(base, 1 << 16);
    let flat = median_ns(REPS, || {
        for e in &exprs {
            std::hint::black_box(elaborate_in(e, &mut flat_types).expect("elaborates"));
        }
    });
    let overlay = median_ns(REPS, || {
        for e in &exprs {
            std::hint::black_box(elaborate_in(e, &mut overlay_types).expect("elaborates"));
        }
    });

    // Machine: the 512-crossing boundary loop on a flat warm arena
    // versus an overlay+frozen-pair-table pair.
    let tree = term_c_to_s(&term_b_to_c(&programs::boundary_loop(512)));
    let mut ctx = CompileCtx::new();
    let compiled = ctx.compile(&tree);
    cek_s::run_compiled_in(&compiled, &mut ctx.arena, &mut ctx.cache, u64::MAX);
    let machine_flat = median_ns(15, || {
        std::hint::black_box(cek_s::run_compiled_in(
            &compiled,
            &mut ctx.arena,
            &mut ctx.cache,
            u64::MAX,
        ));
    });
    let cbase = Arc::new(ctx.arena.freeze(&ctx.cache));
    let mut overlay_arena = CoercionArena::with_base(Arc::clone(&cbase));
    let mut overlay_cache = ComposeCache::with_base(cbase, 1 << 16);
    let machine_overlay = median_ns(15, || {
        std::hint::black_box(cek_s::run_compiled_in(
            &compiled,
            &mut overlay_arena,
            &mut overlay_cache,
            u64::MAX,
        ));
    });

    println!("| workload | flat warm | overlay over frozen base | overhead |");
    println!("|----------|-----------|--------------------------|----------|");
    println!(
        "| elaborate 16-program batch | {:.1} µs | {:.1} µs | {:+.1}% |",
        flat / 1e3,
        overlay / 1e3,
        (overlay / flat - 1.0) * 100.0
    );
    println!(
        "| boundary loop n=512 (λS machine, compiled) | {:.1} µs | {:.1} µs | {:+.1}% |",
        machine_flat / 1e3,
        machine_overlay / 1e3,
        (machine_overlay / machine_flat - 1.0) * 100.0
    );
    println!();
    metrics.push(("tier/elaborate_batch16/flat_ns".into(), flat));
    metrics.push(("tier/elaborate_batch16/overlay_ns".into(), overlay));
    metrics.push(("tier/boundary512/flat_ns".into(), machine_flat));
    metrics.push(("tier/boundary512/overlay_ns".into(), machine_overlay));
}

/// E15: the space series — peak cast/coercion frames versus n.
fn space_table() {
    println!("## E15 — machine space on even/odd across a typed/untyped boundary");
    println!();
    println!("| n | λB peak cast frames | λC peak coercion frames | λS peak coercion frames | λS peak coercion size |");
    println!("|---|---------------------|--------------------------|--------------------------|------------------------|");
    for n in [4i64, 16, 64, 256, 1024, 4096] {
        let b = programs::even_odd_mixed(n);
        let c = term_b_to_c(&b);
        let s = term_c_to_s(&c);
        let rb = cek_b::run(&b, u64::MAX);
        let rc = cek_c::run(&c, u64::MAX);
        let rs = cek_s::run(&s, u64::MAX);
        assert_eq!(rb.outcome.to_observation(), rs.outcome.to_observation());
        println!(
            "| {n} | {} | {} | {} | {} |",
            rb.metrics.peak_cast_frames,
            rc.metrics.peak_cast_frames,
            rs.metrics.peak_cast_frames,
            rs.metrics.peak_cast_size
        );
    }
    println!();
}

/// E16: composition throughput, λS `#` vs threesome meet vs naive
/// rewriting, by coercion height.
fn compose_table(metrics: &mut Metrics) {
    println!("## E16 — composition microbenchmark (64 pairs, ns/pair)");
    println!();
    println!("| height | λS `s # t` | threesome `Q ∘ P` | naive rewriting |");
    println!("|--------|------------|--------------------|------------------|");
    for height in [1usize, 2, 3, 4, 5] {
        let pairs = composable_batch(42, height, 64);
        let labeled: Vec<_> = pairs
            .iter()
            .map(|(s, t)| (threesome::from_space(s), threesome::from_space(t)))
            .collect();
        let seqs: Vec<_> = pairs
            .iter()
            .map(|(s, t)| s.to_coercion().seq(t.to_coercion()))
            .collect();
        // Best of several independent blocks (same total work as one
        // long block): container noise is strictly additive and an OS
        // preemption (1–4 ms) dwarfs a sub-µs composition, so the
        // minimum block survives a noisy neighbour that would poison
        // a single continuous measurement.
        let best_block = |f: &mut dyn FnMut()| -> u128 {
            const BLOCKS: usize = 5;
            const REPS: usize = 400;
            (0..BLOCKS)
                .map(|_| {
                    let t0 = Instant::now();
                    for _ in 0..REPS {
                        f();
                    }
                    t0.elapsed().as_nanos() / (REPS * pairs.len()) as u128
                })
                .min()
                .expect("at least one block")
        };
        let sharp = best_block(&mut || {
            for (s, t) in &pairs {
                std::hint::black_box(compose(s, t));
            }
        });
        let meet = best_block(&mut || {
            for (p, q) in &labeled {
                std::hint::black_box(threesome::compose_labeled(q, p));
            }
        });
        let rewriting = best_block(&mut || {
            for c in &seqs {
                std::hint::black_box(naive::normalize(c));
            }
        });

        println!("| {height} | {sharp} | {meet} | {rewriting} |");
        metrics.push((format!("compose/height{height}/sharp_ns"), sharp as f64));
        metrics.push((format!("compose/height{height}/threesome_ns"), meet as f64));
        metrics.push((format!("compose/height{height}/naive_ns"), rewriting as f64));
    }
    println!();
}

/// The front-end series: typecheck+elaborate on interned types versus
/// the tree oracles (the `frontend` criterion bench's workloads, as
/// medians for BENCH_4.json).
fn frontend_table(metrics: &mut Metrics) {
    println!("## E21 — front end on interned types (medians)");
    println!();
    use bc_bench::frontend_workload::{BATCH, CALLS, CALL_DEPTH, TOWER};
    let exprs: Vec<_> = (0..BATCH as i64)
        .map(|i| parse_source(&boundary_source(32 + i)))
        .collect();
    let tower = parse_source(&wrapper_tower_source(TOWER));
    let calls = parse_source(&call_heavy_source(CALL_DEPTH, CALLS));
    let calls_b = elaborate(&calls).expect("elaborates").term;
    const REPS: usize = 41;

    let tree = median_ns(REPS, || {
        for e in &exprs {
            std::hint::black_box(elaborate(e).expect("elaborates"));
        }
    });
    let cold = median_ns(REPS, || {
        for e in &exprs {
            let mut types = TypeArena::new();
            std::hint::black_box(elaborate_in(e, &mut types).expect("elaborates"));
        }
    });
    let mut warm_types = TypeArena::new();
    let warm = median_ns(REPS, || {
        for e in &exprs {
            std::hint::black_box(elaborate_in(e, &mut warm_types).expect("elaborates"));
        }
    });
    // The compiled front end on the same batch: sources pre-parsed
    // into `ExprI` (annotations interned at parse time), the timed
    // region is pure elaboration on ids — the path `Session::compile`
    // actually runs.
    let mut compiled_types = TypeArena::new();
    let exprs_i: Vec<_> = (0..BATCH as i64)
        .map(|i| parse_source_in(&boundary_source(32 + i), &mut compiled_types))
        .collect();
    for e in &exprs_i {
        let _ = elaborate_compiled(e, &mut compiled_types).expect("elaborates");
    }
    let compiled_warm = median_ns(REPS, || {
        for e in &exprs_i {
            std::hint::black_box(elaborate_compiled(e, &mut compiled_types).expect("elaborates"));
        }
    });
    let check_tree = median_ns(REPS, || {
        std::hint::black_box(type_of(&calls_b).expect("well typed"));
    });
    let mut check_types = TypeArena::new();
    let _ = type_of_interned(&calls_b, &mut check_types);
    let check_interned = median_ns(REPS, || {
        std::hint::black_box(type_of_interned(&calls_b, &mut check_types).expect("well typed"));
    });
    // The tower's interned row runs the compiled front end: the old
    // `elaborate_in` row re-interned every annotation tree per pass
    // (an O(size) walk on an annotation-dominated shape — *slower*
    // than the tree elaborator's Rc clones); `parse_in` interns each
    // annotation once, and warm `elaborate_compiled` never walks one.
    let mut tower_types = TypeArena::new();
    let tower_i = parse_source_in(&wrapper_tower_source(TOWER), &mut tower_types);
    let _ = elaborate_compiled(&tower_i, &mut tower_types);
    let tower_tree = median_ns(REPS, || {
        std::hint::black_box(elaborate(&tower).expect("elaborates"));
    });
    let tower_interned = median_ns(REPS, || {
        std::hint::black_box(elaborate_compiled(&tower_i, &mut tower_types).expect("elaborates"));
    });

    println!("| workload | tree | interned cold | interned warm |");
    println!("|----------|------|---------------|---------------|");
    println!(
        "| elaborate 16-program batch | {:.1} µs | {:.1} µs | {:.1} µs |",
        tree / 1e3,
        cold / 1e3,
        warm / 1e3
    );
    println!(
        "| elaborate 16-program batch (compiled, warm) | — | — | {:.1} µs |",
        compiled_warm / 1e3
    );
    println!(
        "| typecheck call-heavy (2⁹-node annotation, 64 sites) | {:.1} µs | — | {:.1} µs |",
        check_tree / 1e3,
        check_interned / 1e3
    );
    println!(
        "| elaborate wrapper tower (annotation-dominated) | {:.1} µs | — | {:.1} µs |",
        tower_tree / 1e3,
        tower_interned / 1e3
    );
    println!();
    metrics.push(("frontend/elaborate_batch16/tree_ns".into(), tree));
    metrics.push(("frontend/elaborate_batch16/cold_ns".into(), cold));
    metrics.push(("frontend/elaborate_batch16/warm_ns".into(), warm));
    metrics.push((
        "frontend/elaborate_batch16/compiled_warm_ns".into(),
        compiled_warm,
    ));
    metrics.push(("frontend/typecheck_calls/tree_ns".into(), check_tree));
    metrics.push((
        "frontend/typecheck_calls/interned_warm_ns".into(),
        check_interned,
    ));
    metrics.push(("frontend/elaborate_tower/tree_ns".into(), tower_tree));
    metrics.push((
        "frontend/elaborate_tower/interned_warm_ns".into(),
        tower_interned,
    ));
}

/// The cache working sets the bench workloads actually reach — the
/// data behind the `SessionBuilder` capacity defaults.
fn capacity_table(metrics: &mut Metrics) {
    println!("## E22 — session cache working sets on the bench workloads");
    println!();
    println!("| workload | compose pairs | type nodes | verdicts | compose hit rate | verdict hit rate |");
    println!("|----------|---------------|------------|----------|------------------|------------------|");
    let workloads: Vec<(&str, Vec<String>)> = vec![
        (
            "boundary batch (16 × loop 512)",
            (0..16).map(|i| boundary_source(512 + i)).collect(),
        ),
        (
            "wrapper towers (depth 8..12)",
            (8..=12).map(wrapper_tower_source).collect(),
        ),
        (
            "call-heavy (depth 8, 64 sites)",
            vec![call_heavy_source(
                bc_bench::frontend_workload::CALL_DEPTH,
                bc_bench::frontend_workload::CALLS,
            )],
        ),
    ];
    for (name, sources) in workloads {
        let session = Session::builder().default_fuel(u64::MAX).build();
        let programs = session
            .compile_batch(sources.iter().map(String::as_str))
            .expect("compiles");
        for program in &programs {
            session.run(program, Engine::MachineS).expect("terminates");
        }
        let stats = session.stats();
        let compose_rate =
            stats.compose.hits as f64 / (stats.compose.hits + stats.compose.misses).max(1) as f64;
        let verdict_rate = stats.type_queries.hits as f64
            / (stats.type_queries.hits + stats.type_queries.misses).max(1) as f64;
        println!(
            "| {name} | {} | {} | {} | {:.3} | {:.3} |",
            stats.compose_pairs,
            stats.type_nodes,
            stats.type_memo_pairs,
            compose_rate,
            verdict_rate
        );
        let slug = name.split_whitespace().next().expect("name");
        metrics.push((
            format!("capacity/{slug}/compose_pairs"),
            stats.compose_pairs as f64,
        ));
        metrics.push((
            format!("capacity/{slug}/type_nodes"),
            stats.type_nodes as f64,
        ));
        metrics.push((
            format!("capacity/{slug}/verdicts"),
            stats.type_memo_pairs as f64,
        ));
    }
    println!();
}

/// E10/E19: step counts — λB:λC is exactly 1:1 (lockstep), λC:λS is
/// within a constant factor.
fn steps_table() {
    println!("## E10/E19 — step counts per workload (lockstep and alignment)");
    println!();
    println!("| workload | λB steps | λC steps | λS steps | λB:λC | λC:λS |");
    println!("|----------|----------|----------|----------|-------|-------|");
    for (name, m) in [
        ("boundary_loop(64)", programs::boundary_loop(64)),
        ("even_odd_mixed(33)", programs::even_odd_mixed(33)),
        ("even_typed(64)", programs::even_typed(64)),
        ("even_untyped(16)", programs::even_untyped(16)),
        ("wrapped_identity(16)", programs::wrapped_identity(16)),
    ] {
        let lock = lockstep_bc(&m, 10_000_000).expect("lockstep");
        let mc = term_b_to_c(&m);
        let align = aligned_cs(&mc, 10_000_000).expect("aligned");
        println!(
            "| {name} | {} | {} | {} | 1.00 | {:.2} |",
            lock.steps,
            align.steps_c,
            align.steps_s,
            align.steps_c as f64 / align.steps_s as f64
        );
    }
    println!();
}

/// E11: observed height/size bounds under composition.
fn height_table() {
    println!("## E11 — height preservation and size bounds under `#`");
    println!();
    println!("| height bound | pairs | max ‖s#t‖ | max size(s#t) | 3·(2^h − 1) |");
    println!("|--------------|-------|------------|----------------|--------------|");
    for height in [2usize, 3, 4, 5, 6] {
        let pairs = composable_batch(7, height, 256);
        let mut max_h = 0usize;
        let mut max_size = 0usize;
        let mut input_h = 0usize;
        for (s, t) in &pairs {
            let st = compose(s, t);
            max_h = max_h.max(st.height());
            max_size = max_size.max(st.size());
            input_h = input_h.max(s.height().max(t.height()));
        }
        assert!(max_h <= input_h, "height grew!");
        println!(
            "| {input_h} | {} | {max_h} | {max_size} | {} |",
            pairs.len(),
            3 * (2usize.pow(input_h as u32) - 1)
        );
    }
    println!();
}

/// E20: end-to-end wall-clock per engine on the compiled boundary
/// loop.
fn end_to_end_table(metrics: &mut Metrics) {
    println!("## E20 — end-to-end pipeline (compiled boundary loop, n = 512)");
    println!();
    let source = boundary_source(512);
    let session = Session::builder().default_fuel(u64::MAX).build();
    let compiled = session.compile(&source).expect("compiles");
    println!("| engine | steps | peak frames | peak coercion frames | µs |");
    println!("|--------|-------|-------------|----------------------|-----|");
    for (slug, engine) in [
        ("machine_b", Engine::MachineB),
        ("machine_c", Engine::MachineC),
        ("machine_s", Engine::MachineS),
    ] {
        let median = median_ns(15, || {
            std::hint::black_box(session.run(&compiled, engine).expect("terminates"));
        });
        let report = session.run(&compiled, engine).expect("terminates");
        let machine = report.metrics.expect("machine engines report metrics");
        println!(
            "| {engine} | {} | {} | {} | {:.0} |",
            report.steps,
            machine.peak_frames,
            machine.peak_cast_frames,
            median / 1e3
        );
        metrics.push((format!("end_to_end/{slug}_ns"), median));
    }
    println!();
}
