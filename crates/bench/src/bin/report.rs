//! Regenerates the measurement tables recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p bc-bench --bin report --release
//! ```

use std::time::Instant;

use bc_baselines::{naive, threesome};
use bc_bench::{boundary_source, composable_batch};
use bc_core::compose::compose;
use bc_lambda_b::programs;
use bc_machine::{cek_b, cek_c, cek_s};
use bc_translate::bisim::{aligned_cs, lockstep_bc};
use bc_translate::{term_b_to_c, term_c_to_s};
use blame_coercion::{Engine, Session};

fn main() {
    space_table();
    compose_table();
    steps_table();
    height_table();
    end_to_end_table();
}

/// E15: the space series — peak cast/coercion frames versus n.
fn space_table() {
    println!("## E15 — machine space on even/odd across a typed/untyped boundary");
    println!();
    println!("| n | λB peak cast frames | λC peak coercion frames | λS peak coercion frames | λS peak coercion size |");
    println!("|---|---------------------|--------------------------|--------------------------|------------------------|");
    for n in [4i64, 16, 64, 256, 1024, 4096] {
        let b = programs::even_odd_mixed(n);
        let c = term_b_to_c(&b);
        let s = term_c_to_s(&c);
        let rb = cek_b::run(&b, u64::MAX);
        let rc = cek_c::run(&c, u64::MAX);
        let rs = cek_s::run(&s, u64::MAX);
        assert_eq!(rb.outcome.to_observation(), rs.outcome.to_observation());
        println!(
            "| {n} | {} | {} | {} | {} |",
            rb.metrics.peak_cast_frames,
            rc.metrics.peak_cast_frames,
            rs.metrics.peak_cast_frames,
            rs.metrics.peak_cast_size
        );
    }
    println!();
}

/// E16: composition throughput, λS `#` vs threesome meet vs naive
/// rewriting, by coercion height.
fn compose_table() {
    println!("## E16 — composition microbenchmark (64 pairs, ns/pair)");
    println!();
    println!("| height | λS `s # t` | threesome `Q ∘ P` | naive rewriting |");
    println!("|--------|------------|--------------------|------------------|");
    for height in [1usize, 2, 3, 4, 5] {
        let pairs = composable_batch(42, height, 64);
        let labeled: Vec<_> = pairs
            .iter()
            .map(|(s, t)| (threesome::from_space(s), threesome::from_space(t)))
            .collect();
        let seqs: Vec<_> = pairs
            .iter()
            .map(|(s, t)| s.to_coercion().seq(t.to_coercion()))
            .collect();
        let reps = 2_000usize;

        let t0 = Instant::now();
        for _ in 0..reps {
            for (s, t) in &pairs {
                std::hint::black_box(compose(s, t));
            }
        }
        let sharp = t0.elapsed().as_nanos() / (reps * pairs.len()) as u128;

        let t1 = Instant::now();
        for _ in 0..reps {
            for (p, q) in &labeled {
                std::hint::black_box(threesome::compose_labeled(q, p));
            }
        }
        let meet = t1.elapsed().as_nanos() / (reps * labeled.len()) as u128;

        let t2 = Instant::now();
        for _ in 0..reps {
            for c in &seqs {
                std::hint::black_box(naive::normalize(c));
            }
        }
        let rewriting = t2.elapsed().as_nanos() / (reps * seqs.len()) as u128;

        println!("| {height} | {sharp} | {meet} | {rewriting} |");
    }
    println!();
}

/// E10/E19: step counts — λB:λC is exactly 1:1 (lockstep), λC:λS is
/// within a constant factor.
fn steps_table() {
    println!("## E10/E19 — step counts per workload (lockstep and alignment)");
    println!();
    println!("| workload | λB steps | λC steps | λS steps | λB:λC | λC:λS |");
    println!("|----------|----------|----------|----------|-------|-------|");
    for (name, m) in [
        ("boundary_loop(64)", programs::boundary_loop(64)),
        ("even_odd_mixed(33)", programs::even_odd_mixed(33)),
        ("even_typed(64)", programs::even_typed(64)),
        ("even_untyped(16)", programs::even_untyped(16)),
        ("wrapped_identity(16)", programs::wrapped_identity(16)),
    ] {
        let lock = lockstep_bc(&m, 10_000_000).expect("lockstep");
        let mc = term_b_to_c(&m);
        let align = aligned_cs(&mc, 10_000_000).expect("aligned");
        println!(
            "| {name} | {} | {} | {} | 1.00 | {:.2} |",
            lock.steps,
            align.steps_c,
            align.steps_s,
            align.steps_c as f64 / align.steps_s as f64
        );
    }
    println!();
}

/// E11: observed height/size bounds under composition.
fn height_table() {
    println!("## E11 — height preservation and size bounds under `#`");
    println!();
    println!("| height bound | pairs | max ‖s#t‖ | max size(s#t) | 3·(2^h − 1) |");
    println!("|--------------|-------|------------|----------------|--------------|");
    for height in [2usize, 3, 4, 5, 6] {
        let pairs = composable_batch(7, height, 256);
        let mut max_h = 0usize;
        let mut max_size = 0usize;
        let mut input_h = 0usize;
        for (s, t) in &pairs {
            let st = compose(s, t);
            max_h = max_h.max(st.height());
            max_size = max_size.max(st.size());
            input_h = input_h.max(s.height().max(t.height()));
        }
        assert!(max_h <= input_h, "height grew!");
        println!(
            "| {input_h} | {} | {max_h} | {max_size} | {} |",
            pairs.len(),
            3 * (2usize.pow(input_h as u32) - 1)
        );
    }
    println!();
}

/// E20: end-to-end wall-clock per engine on the compiled boundary
/// loop.
fn end_to_end_table() {
    println!("## E20 — end-to-end pipeline (compiled boundary loop, n = 512)");
    println!();
    let source = boundary_source(512);
    let session = Session::builder().default_fuel(u64::MAX).build();
    let compiled = session.compile(&source).expect("compiles");
    println!("| engine | steps | peak frames | peak coercion frames | µs |");
    println!("|--------|-------|-------------|----------------------|-----|");
    for engine in [Engine::MachineB, Engine::MachineC, Engine::MachineS] {
        let t0 = Instant::now();
        let report = session.run(&compiled, engine).expect("terminates");
        let us = t0.elapsed().as_micros();
        let metrics = report.metrics.expect("machine engines report metrics");
        println!(
            "| {engine} | {} | {} | {} | {us} |",
            report.steps, metrics.peak_frames, metrics.peak_cast_frames
        );
    }
    println!();
}
