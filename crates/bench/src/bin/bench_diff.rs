//! Diffs two flat `BENCH_*.json` files (as written by the `report`
//! binary) and fails when any shared **timing** key regressed beyond a
//! threshold.
//!
//! ```sh
//! cargo run -p bc-bench --bin bench_diff -- BENCH_5.json BENCH_6.json
//! ```
//!
//! Keys ending in `_ns` are wall-clock medians (lower is better); a
//! shared timing key whose new value exceeds the old by more than the
//! threshold (default 25%, container-noise-tolerant) is a regression
//! and the process exits non-zero. Non-timing keys (capacity counts,
//! speedup ratios, core counts) are informational.
//!
//! Scheduler-latency percentile keys (`sched/fairness/...`) get twice
//! the threshold: they measure individual sub-millisecond job
//! latencies on a shared container, where one OS timeslice (1–4 ms of
//! preemption) is several times the whole measurement — a band that
//! flags real order-of-magnitude fairness regressions without failing
//! on which day the container was noisier.
//!
//! Before judging any key, the diff estimates **global machine drift**:
//! the median new/old ratio across all shared timing keys. Two
//! generations are usually taken days apart on a shared container
//! whose effective speed moves by ±10% or more (frequency scaling,
//! neighbours); when *every* key shifts together, that is the machine,
//! not the code. Each key's ratio is therefore normalised by the
//! median ratio before the band applies — a regression is a key that
//! moved beyond the band *relative to its generation's baseline*. The
//! normaliser is clamped to ±15% so a genuine across-the-board code
//! regression (everything slower for a real reason) is only partially
//! absorbed and still trips the per-key bands, and it is printed
//! loudly so the attributed drift is visible in every CI log. Keys
//! present in
//! only one file never fail the diff — benches come and go between
//! PRs; regressions on what both measured are what CI guards — but
//! they are *summarised explicitly* (counted lists of added and
//! removed keys) so a silently dropped table is visible in the log
//! instead of vanishing from the comparison.
//!
//! The JSON parsing is hand-rolled on purpose: the files are flat
//! `"key": number` objects emitted by `report`, and the container
//! builds offline, so no serde.

use std::process::ExitCode;

/// Relative slowdown on a shared `_ns` key above which the diff fails.
const DEFAULT_THRESHOLD: f64 = 0.25;

/// Per-key threshold: scheduler-latency percentiles are dominated by
/// OS-scheduling noise at their (sub-millisecond) scale and get twice
/// the band; everything else gets the base threshold.
fn key_threshold(key: &str, base: f64) -> f64 {
    if key.starts_with("sched/fairness/") {
        base * 2.0
    } else {
        base
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path) = match args.as_slice() {
        [old, new, ..] => (old.as_str(), new.as_str()),
        _ => {
            eprintln!("usage: bench_diff <OLD.json> <NEW.json> [threshold]");
            return ExitCode::from(2);
        }
    };
    let threshold = args
        .get(2)
        .map(|t| t.parse::<f64>().expect("threshold parses as f64"))
        .unwrap_or(DEFAULT_THRESHOLD);

    let old = parse_flat_json(old_path);
    let new = parse_flat_json(new_path);
    println!(
        "bench_diff: {old_path} ({} keys) vs {new_path} ({} keys), threshold +{:.0}%",
        old.len(),
        new.len(),
        threshold * 100.0
    );

    // Global machine drift: the median new/old ratio over shared
    // timing keys. Computed before judging anything so each key can be
    // normalised against its own generation's baseline speed.
    let mut shared_ratios: Vec<f64> = old
        .iter()
        .filter(|(k, _)| k.ends_with("_ns"))
        .filter_map(|(k, ov)| {
            new.iter()
                .find(|(nk, _)| nk == k)
                .map(|(_, nv)| nv / ov.max(1.0))
        })
        .collect();
    let drift = if shared_ratios.len() >= 8 {
        shared_ratios.sort_by(f64::total_cmp);
        shared_ratios[shared_ratios.len() / 2]
    } else {
        1.0 // too few shared keys for a meaningful drift estimate
    };
    let normalizer = drift.clamp(0.85, 1.15);
    println!(
        "global drift: median shared-key ratio {drift:.3} -> normalizer {normalizer:.3} \
         (clamped to ±15%; attributed to container speed, divided out of every key)"
    );

    let mut regressions = Vec::new();
    let mut removed: Vec<&str> = Vec::new();
    let mut improved = 0usize;
    let mut shared = 0usize;
    for (key, old_value) in &old {
        let Some((_, new_value)) = new.iter().find(|(k, _)| k == key) else {
            removed.push(key);
            continue;
        };
        if !key.ends_with("_ns") {
            continue; // counts and ratios are informational, not timings
        }
        shared += 1;
        let ratio = new_value / old_value.max(1.0) / normalizer;
        let threshold = key_threshold(key, threshold);
        if ratio > 1.0 + threshold {
            regressions.push(format!(
                "  REGRESSED  {key}: {old_value:.0} -> {new_value:.0} ({:+.1}% after drift, \
                 band {:.0}%)",
                (ratio - 1.0) * 100.0,
                threshold * 100.0
            ));
        } else if ratio < 1.0 - threshold {
            improved += 1;
            println!(
                "  improved   {key}: {old_value:.0} -> {new_value:.0} ({:+.1}% after drift)",
                (ratio - 1.0) * 100.0
            );
        }
    }
    let added: Vec<&str> = new
        .iter()
        .filter(|(k, _)| !old.iter().any(|(ok, _)| ok == k))
        .map(|(k, _)| k.as_str())
        .collect();

    // Coverage drift is never a failure, but it must be loud: a table
    // that silently stops being emitted would otherwise pass the gate
    // by not being compared at all.
    if !removed.is_empty() {
        println!(
            "  {} key(s) removed (present in {old_path} only):",
            removed.len()
        );
        for key in &removed {
            println!("    - {key}");
        }
    }
    if !added.is_empty() {
        println!(
            "  {} key(s) added (present in {new_path} only):",
            added.len()
        );
        for key in &added {
            println!("    + {key}");
        }
    }

    println!(
        "{shared} shared timing keys: {improved} improved >{:.0}%, {} regressed >{:.0}%; \
         {} added, {} removed",
        threshold * 100.0,
        regressions.len(),
        threshold * 100.0,
        added.len(),
        removed.len()
    );
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        for line in &regressions {
            eprintln!("{line}");
        }
        ExitCode::FAILURE
    }
}

/// Parses a flat `{"key": number, ...}` object, one pair per line —
/// the exact shape `report`'s `write_json` emits.
fn parse_flat_json(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_diff: cannot read {path}: {e}"));
    let mut pairs = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue; // `{`, `}`, blank
        };
        let Some((key, value)) = rest.split_once('"') else {
            continue;
        };
        let Some(value) = value.trim().strip_prefix(':') else {
            continue;
        };
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("bench_diff: bad value for {key:?} in {path}: {e}"));
        pairs.push((key.to_owned(), value));
    }
    assert!(!pairs.is_empty(), "bench_diff: no metrics found in {path}");
    pairs
}
