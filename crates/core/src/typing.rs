//! The type system `Γ ⊢S M : A` of λS (as λC, with coercions
//! restricted to canonical forms).

use std::fmt;

use bc_syntax::{Name, Type};

use crate::term::Term;

/// A typing error for λS terms.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable was not bound in the environment.
    UnboundVariable(Name),
    /// An operator was applied to the wrong number of arguments.
    OpArity {
        /// The operator's name.
        op: &'static str,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments found.
        found: usize,
    },
    /// A term had a different type than required by its context.
    Mismatch {
        /// The type required by the context.
        expected: Type,
        /// The type the term actually has.
        found: Type,
        /// What was being checked.
        context: &'static str,
    },
    /// The function position of an application was not a function.
    NotAFunction(Type),
    /// A coercion application whose coercion does not fit the subject.
    BadCoercion {
        /// The subject's type.
        subject: Type,
        /// Rendering of the offending coercion.
        coercion: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::OpArity {
                op,
                expected,
                found,
            } => write!(
                f,
                "operator `{op}` expects {expected} arguments, found {found}"
            ),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            TypeError::NotAFunction(t) => write!(f, "cannot apply a term of type `{t}`"),
            TypeError::BadCoercion { subject, coercion } => {
                write!(
                    f,
                    "coercion `{coercion}` cannot be applied to a term of type `{subject}`"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Computes the type of a closed λS term.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of(term: &Term) -> Result<Type, TypeError> {
    type_of_in(&mut Vec::new(), term)
}

/// Computes the type of a λS term in an environment.
///
/// # Errors
///
/// Returns a [`TypeError`] if the term is not well typed.
pub fn type_of_in(env: &mut Vec<(Name, Type)>, term: &Term) -> Result<Type, TypeError> {
    match term {
        Term::Const(k) => Ok(k.base_type().ty()),
        Term::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                if !check_in(env, arg, &param.ty()) {
                    let found = type_of_in(env, arg)?;
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found,
                        context: "operator argument",
                    });
                }
            }
            Ok(result.ty())
        }
        Term::Lam(x, dom, body) => {
            env.push((x.clone(), dom.clone()));
            let cod = type_of_in(env, body);
            env.pop();
            Ok(Type::fun(dom.clone(), cod?))
        }
        Term::App(l, m) => {
            let lt = type_of_in(env, l)?;
            let mt = type_of_in(env, m)?;
            match lt {
                Type::Fun(dom, cod) => {
                    if *dom == mt || check_in(env, m, &dom) {
                        Ok((*cod).clone())
                    } else {
                        Err(TypeError::Mismatch {
                            expected: (*dom).clone(),
                            found: mt,
                            context: "function argument",
                        })
                    }
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        Term::Coerce(m, s) => {
            let mt = type_of_in(env, m)?;
            match s.synthesize() {
                Some((src, tgt)) => {
                    if src == mt || check_in(env, m, &src) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: src,
                            found: mt,
                            context: "coercion source",
                        })
                    }
                }
                None => {
                    let tgt = s.target_representative();
                    if s.check(&mt, &tgt) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::BadCoercion {
                            subject: mt,
                            coercion: s.to_string(),
                        })
                    }
                }
            }
        }
        Term::Blame(_, ty) => Ok(ty.clone()),
        Term::If(cond, then_, else_) => {
            if !check_in(env, cond, &Type::BOOL) {
                let ct = type_of_in(env, cond)?;
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: ct,
                    context: "if condition",
                });
            }
            let tt = type_of_in(env, then_)?;
            let et = type_of_in(env, else_)?;
            if tt == et || check_in(env, else_, &tt) {
                Ok(tt)
            } else if check_in(env, then_, &et) {
                Ok(et)
            } else {
                Err(TypeError::Mismatch {
                    expected: tt,
                    found: et,
                    context: "if branches",
                })
            }
        }
        Term::Let(x, m, n) => {
            let mt = type_of_in(env, m)?;
            env.push((x.clone(), mt));
            let nt = type_of_in(env, n);
            env.pop();
            nt
        }
        Term::Fix(f, x, dom, cod, body) => {
            let fun_ty = Type::fun(dom.clone(), cod.clone());
            env.push((f.clone(), fun_ty.clone()));
            env.push((x.clone(), dom.clone()));
            let bt = type_of_in(env, body);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                env.push((f.clone(), fun_ty.clone()));
                env.push((x.clone(), dom.clone()));
                let ok = check_in(env, body, cod);
                env.pop();
                env.pop();
                if !ok {
                    return Err(TypeError::Mismatch {
                        expected: cod.clone(),
                        found: bt,
                        context: "fix body",
                    });
                }
            }
            Ok(fun_ty)
        }
    }
}

/// The *checking* judgment `Γ ⊢S M : A` for a given `A`; see the λC
/// counterpart for why this differs from [`type_of`] (`blame` and `⊥`
/// are not syntax-directed). Preservation holds for this judgment.
pub fn has_type(term: &Term, ty: &Type) -> bool {
    check_in(&mut Vec::new(), term, ty)
}

fn check_in(env: &mut Vec<(Name, Type)>, term: &Term, expected: &Type) -> bool {
    match term {
        Term::Blame(_, _) => true,
        Term::Coerce(m, s) => {
            if let Some((src, tgt)) = s.synthesize() {
                tgt == *expected && check_in(env, m, &src)
            } else {
                match type_of_in(env, m) {
                    Ok(mt) => s.check(&mt, expected),
                    Err(_) => false,
                }
            }
        }
        Term::If(c, t, e) => {
            check_in(env, c, &Type::BOOL)
                && check_in(env, t, expected)
                && check_in(env, e, expected)
        }
        Term::Lam(x, dom, body) => match expected {
            Type::Fun(d, c) => {
                if **d != *dom {
                    return false;
                }
                env.push((x.clone(), dom.clone()));
                let ok = check_in(env, body, c);
                env.pop();
                ok
            }
            _ => false,
        },
        Term::Fix(f, x, dom, cod, body) => {
            let fun_ty = Type::fun(dom.clone(), cod.clone());
            if fun_ty != *expected {
                return false;
            }
            env.push((f.clone(), fun_ty));
            env.push((x.clone(), dom.clone()));
            let ok = check_in(env, body, cod);
            env.pop();
            env.pop();
            ok
        }
        Term::Let(x, m, n) => match type_of_in(env, m) {
            Ok(mt) => {
                env.push((x.clone(), mt));
                let ok = check_in(env, n, expected);
                env.pop();
                ok
            }
            Err(_) => false,
        },
        Term::App(l, m) => {
            if let Ok(Type::Fun(d, c)) = type_of_in(env, l) {
                if *c == *expected && check_in(env, m, &d) {
                    return true;
                }
            }
            // The function may be a ⊥-coerced term whose synthesised
            // type is only a representative: check it against the
            // function type demanded by the argument and the context.
            match type_of_in(env, m) {
                Ok(mt) => check_in(env, l, &Type::fun(mt, expected.clone())),
                Err(_) => false,
            }
        }
        Term::Op(op, args) => {
            let (params, result) = op.signature();
            result.ty() == *expected
                && params.len() == args.len()
                && params
                    .iter()
                    .zip(args)
                    .all(|(param, arg)| check_in(env, arg, &param.ty()))
        }
        _ => type_of_in(env, term).is_ok_and(|t| t == *expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use bc_syntax::{BaseType, Ground, Label};

    #[test]
    fn coercion_application_types() {
        let gi = Ground::Base(BaseType::Int);
        let m = Term::int(1).coerce(SpaceCoercion::inj(
            GroundCoercion::IdBase(BaseType::Int),
            gi,
        ));
        assert_eq!(type_of(&m), Ok(Type::DYN));
        let m2 = m.coerce(SpaceCoercion::proj(
            gi,
            Label::new(0),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
        ));
        assert_eq!(type_of(&m2), Ok(Type::INT));
    }

    #[test]
    fn failure_coercion_types() {
        let m = Term::int(1).coerce(SpaceCoercion::fail(
            Ground::Base(BaseType::Int),
            Label::new(0),
            Ground::Base(BaseType::Bool),
        ));
        assert_eq!(type_of(&m), Ok(Type::BOOL));
    }

    #[test]
    fn bad_coercion_is_rejected() {
        let gi = Ground::Base(BaseType::Int);
        let m = Term::bool(true).coerce(SpaceCoercion::inj(
            GroundCoercion::IdBase(BaseType::Int),
            gi,
        ));
        assert!(matches!(type_of(&m), Err(TypeError::Mismatch { .. })));
    }
}
