//! The type system `Γ ⊢S M : A` over the **compiled** λS IR: checking
//! [`STerm`] directly, so the machine-ready form is validated without
//! decompiling anything to trees.
//!
//! [`crate::typing`] is the paper-facing specification on tree terms.
//! This module is the same judgment transcribed onto arena handles:
//! type annotations are already [`TypeId`]s, coercions are
//! [`CoercionId`]s whose endpoints are synthesised node-by-node from
//! the [`CoercionArena`] (no [`crate::coercion::SpaceCoercion`] tree
//! is ever materialised), and every comparison the tree checker makes
//! structurally is an O(1) id equality. Agreement with the tree
//! checker — `type_of_interned(compile_term(M)) ≡ type_of(M)`, same
//! verdict, same resolved type, same [`TypeError`] — is validated by
//! property test.

use bc_syntax::{BaseType, Name, TNode, Type, TypeArena, TypeId};

use crate::arena::{CoercionArena, CoercionId, GNode, INode, SNode};
use crate::sterm::STerm;
use crate::typing::TypeError;

/// Synthesises the unique `s : A ⇒ B` of an interned failure-free
/// coercion (the id counterpart of
/// [`SpaceCoercion::synthesize`](crate::coercion::SpaceCoercion::synthesize)).
/// Returns `None` when the coercion contains `⊥` or is ill-typed.
pub fn coercion_synthesize(
    arena: &CoercionArena,
    types: &mut TypeArena,
    id: CoercionId,
) -> Option<(TypeId, TypeId)> {
    match arena.node(id) {
        SNode::IdDyn => {
            let d = types.dyn_ty();
            Some((d, d))
        }
        SNode::Proj(g, _, i) => {
            let (src, tgt) = inode_synthesize(arena, types, i)?;
            (src == types.ground(g)).then(|| (types.dyn_ty(), tgt))
        }
        SNode::Mid(i) => inode_synthesize(arena, types, i),
    }
}

fn inode_synthesize(
    arena: &CoercionArena,
    types: &mut TypeArena,
    i: INode,
) -> Option<(TypeId, TypeId)> {
    match i {
        INode::Inj(g, ground) => {
            let (src, tgt) = gnode_synthesize(arena, types, g)?;
            (tgt == types.ground(ground)).then(|| (src, types.dyn_ty()))
        }
        INode::Ground(g) => gnode_synthesize(arena, types, g),
        INode::Fail(_, _, _) => None,
    }
}

fn gnode_synthesize(
    arena: &CoercionArena,
    types: &mut TypeArena,
    g: GNode,
) -> Option<(TypeId, TypeId)> {
    match g {
        GNode::IdBase(b) => {
            let id = types.base(b);
            Some((id, id))
        }
        GNode::Fun(s, t) => {
            let (a_prime, a) = coercion_synthesize(arena, types, s)?;
            let (b, b_prime) = coercion_synthesize(arena, types, t)?;
            Some((types.fun(a, b), types.fun(a_prime, b_prime)))
        }
    }
}

/// Checks the typing judgment `s : A ⇒ B` on an interned coercion
/// (the id counterpart of
/// [`SpaceCoercion::check`](crate::coercion::SpaceCoercion::check)).
pub fn coercion_check(
    arena: &CoercionArena,
    types: &mut TypeArena,
    id: CoercionId,
    source: TypeId,
    target: TypeId,
) -> bool {
    match arena.node(id) {
        SNode::IdDyn => types.is_dyn(source) && types.is_dyn(target),
        SNode::Proj(g, _, i) => {
            let gid = types.ground(g);
            types.is_dyn(source) && inode_check(arena, types, i, gid, target)
        }
        SNode::Mid(i) => inode_check(arena, types, i, source, target),
    }
}

fn inode_check(
    arena: &CoercionArena,
    types: &mut TypeArena,
    i: INode,
    source: TypeId,
    target: TypeId,
) -> bool {
    match i {
        INode::Inj(g, ground) => {
            let gid = types.ground(ground);
            types.is_dyn(target) && gnode_check(arena, types, g, source, gid)
        }
        INode::Ground(g) => gnode_check(arena, types, g, source, target),
        INode::Fail(g, _, h) => {
            let gid = types.ground(g);
            g != h && !types.is_dyn(source) && types.compatible(source, gid)
        }
    }
}

fn gnode_check(
    arena: &CoercionArena,
    types: &mut TypeArena,
    g: GNode,
    source: TypeId,
    target: TypeId,
) -> bool {
    match g {
        GNode::IdBase(b) => {
            let bid = types.base(b);
            source == bid && target == bid
        }
        GNode::Fun(s, t) => match (types.node(source), types.node(target)) {
            (TNode::Fun(a, b), TNode::Fun(a2, b2)) => {
                coercion_check(arena, types, s, a2, a) && coercion_check(arena, types, t, b, b2)
            }
            _ => false,
        },
    }
}

/// A *representative* source type of an interned coercion: `⊥GpH`
/// contributes its named ground `G` where the true source is
/// unconstrained.
pub fn coercion_source_representative(
    arena: &CoercionArena,
    types: &mut TypeArena,
    id: CoercionId,
) -> TypeId {
    match arena.node(id) {
        SNode::IdDyn | SNode::Proj(_, _, _) => types.dyn_ty(),
        SNode::Mid(i) => inode_source_representative(arena, types, i),
    }
}

fn inode_source_representative(arena: &CoercionArena, types: &mut TypeArena, i: INode) -> TypeId {
    match i {
        INode::Inj(g, _) | INode::Ground(g) => gnode_representative(arena, types, g, true),
        INode::Fail(g, _, _) => types.ground(g),
    }
}

/// A *representative* target type (see
/// [`coercion_source_representative`]).
pub fn coercion_target_representative(
    arena: &CoercionArena,
    types: &mut TypeArena,
    id: CoercionId,
) -> TypeId {
    match arena.node(id) {
        SNode::IdDyn => types.dyn_ty(),
        SNode::Proj(_, _, i) | SNode::Mid(i) => inode_target_representative(arena, types, i),
    }
}

fn inode_target_representative(arena: &CoercionArena, types: &mut TypeArena, i: INode) -> TypeId {
    match i {
        INode::Inj(_, _) => types.dyn_ty(),
        INode::Ground(g) => gnode_representative(arena, types, g, false),
        INode::Fail(_, _, h) => types.ground(h),
    }
}

/// The representative of a ground coercion: its source when `source`
/// is true, its target otherwise (the two recursions of the tree
/// implementation, merged — a function coercion swaps polarity on the
/// domain).
fn gnode_representative(
    arena: &CoercionArena,
    types: &mut TypeArena,
    g: GNode,
    source: bool,
) -> TypeId {
    match g {
        GNode::IdBase(b) => types.base(b),
        GNode::Fun(s, t) => {
            let (dom, cod) = if source {
                (
                    coercion_target_representative(arena, types, s),
                    coercion_source_representative(arena, types, t),
                )
            } else {
                (
                    coercion_source_representative(arena, types, s),
                    coercion_target_representative(arena, types, t),
                )
            };
            types.fun(dom, cod)
        }
    }
}

/// Computes the type of a closed compiled λS term: the machine-ready
/// IR is validated in place, with no tree decompilation.
///
/// # Errors
///
/// Returns the same [`TypeError`] the tree checker
/// [`crate::typing::type_of`] reports on the decompiled term (tree
/// types in errors are resolved through the arena's shared-resolve
/// memo).
///
/// # Panics
///
/// Panics if the term's ids belong to different arenas (out-of-bounds
/// ids fail loudly; see the foreign-id contract in [`crate::sterm`]).
pub fn type_of_interned(
    term: &STerm,
    arena: &CoercionArena,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    type_of_interned_in(&mut Vec::new(), term, arena, types)
}

/// Computes the type of a compiled λS term in an interned environment.
///
/// # Errors
///
/// See [`type_of_interned`].
pub fn type_of_interned_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &STerm,
    arena: &CoercionArena,
    types: &mut TypeArena,
) -> Result<TypeId, TypeError> {
    match term {
        STerm::Const(k) => Ok(types.base(k.base_type())),
        STerm::Var(x) => env
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| *t)
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        STerm::Op(op, args) => {
            let (params, result) = op.signature();
            if params.len() != args.len() {
                return Err(TypeError::OpArity {
                    op: op.name(),
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in params.iter().zip(args) {
                let param_id = types.base(*param);
                if !check_interned_in(env, arg, param_id, arena, types) {
                    let found = type_of_interned_in(env, arg, arena, types)?;
                    return Err(TypeError::Mismatch {
                        expected: param.ty(),
                        found: types.resolve_shared(found),
                        context: "operator argument",
                    });
                }
            }
            Ok(types.base(result))
        }
        STerm::Lam(x, dom, body) => {
            env.push((x.clone(), *dom));
            let cod = type_of_interned_in(env, body, arena, types);
            env.pop();
            Ok(types.fun(*dom, cod?))
        }
        STerm::App(l, m) => {
            let lt = type_of_interned_in(env, l, arena, types)?;
            let mt = type_of_interned_in(env, m, arena, types)?;
            match types.node(lt) {
                TNode::Fun(dom, cod) => {
                    if dom == mt || check_interned_in(env, m, dom, arena, types) {
                        Ok(cod)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(dom),
                            found: types.resolve_shared(mt),
                            context: "function argument",
                        })
                    }
                }
                _ => Err(TypeError::NotAFunction(types.resolve_shared(lt))),
            }
        }
        STerm::Coerce(m, s) => {
            let mt = type_of_interned_in(env, m, arena, types)?;
            match coercion_synthesize(arena, types, *s) {
                Some((src, tgt)) => {
                    if src == mt || check_interned_in(env, m, src, arena, types) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::Mismatch {
                            expected: types.resolve_shared(src),
                            found: types.resolve_shared(mt),
                            context: "coercion source",
                        })
                    }
                }
                None => {
                    let tgt = coercion_target_representative(arena, types, *s);
                    if coercion_check(arena, types, *s, mt, tgt) {
                        Ok(tgt)
                    } else {
                        Err(TypeError::BadCoercion {
                            subject: types.resolve_shared(mt),
                            coercion: arena.display(*s),
                        })
                    }
                }
            }
        }
        STerm::Blame(_, ty) => Ok(*ty),
        STerm::If(cond, then_, else_) => {
            let bool_id = types.base(BaseType::Bool);
            if !check_interned_in(env, cond, bool_id, arena, types) {
                let ct = type_of_interned_in(env, cond, arena, types)?;
                return Err(TypeError::Mismatch {
                    expected: Type::BOOL,
                    found: types.resolve_shared(ct),
                    context: "if condition",
                });
            }
            let tt = type_of_interned_in(env, then_, arena, types)?;
            let et = type_of_interned_in(env, else_, arena, types)?;
            if tt == et || check_interned_in(env, else_, tt, arena, types) {
                Ok(tt)
            } else if check_interned_in(env, then_, et, arena, types) {
                Ok(et)
            } else {
                Err(TypeError::Mismatch {
                    expected: types.resolve_shared(tt),
                    found: types.resolve_shared(et),
                    context: "if branches",
                })
            }
        }
        STerm::Let(x, m, n) => {
            let mt = type_of_interned_in(env, m, arena, types)?;
            env.push((x.clone(), mt));
            let nt = type_of_interned_in(env, n, arena, types);
            env.pop();
            nt
        }
        STerm::Fix(f, x, dom, cod, body) => {
            let fun_id = types.fun(*dom, *cod);
            env.push((f.clone(), fun_id));
            env.push((x.clone(), *dom));
            let bt = type_of_interned_in(env, body, arena, types);
            env.pop();
            env.pop();
            let bt = bt?;
            if bt != *cod {
                env.push((f.clone(), fun_id));
                env.push((x.clone(), *dom));
                let ok = check_interned_in(env, body, *cod, arena, types);
                env.pop();
                env.pop();
                if !ok {
                    return Err(TypeError::Mismatch {
                        expected: types.resolve_shared(*cod),
                        found: types.resolve_shared(bt),
                        context: "fix body",
                    });
                }
            }
            Ok(fun_id)
        }
    }
}

/// The *checking* judgment `Γ ⊢S M : A` on the compiled IR; see the
/// tree counterpart [`crate::typing::has_type`] for why this differs
/// from [`type_of_interned`] (`blame` and `⊥` are not
/// syntax-directed). Preservation holds for this judgment.
pub fn has_type_interned(
    term: &STerm,
    ty: TypeId,
    arena: &CoercionArena,
    types: &mut TypeArena,
) -> bool {
    check_interned_in(&mut Vec::new(), term, ty, arena, types)
}

fn check_interned_in(
    env: &mut Vec<(Name, TypeId)>,
    term: &STerm,
    expected: TypeId,
    arena: &CoercionArena,
    types: &mut TypeArena,
) -> bool {
    match term {
        STerm::Blame(_, _) => true,
        STerm::Coerce(m, s) => {
            if let Some((src, tgt)) = coercion_synthesize(arena, types, *s) {
                tgt == expected && check_interned_in(env, m, src, arena, types)
            } else {
                match type_of_interned_in(env, m, arena, types) {
                    Ok(mt) => coercion_check(arena, types, *s, mt, expected),
                    Err(_) => false,
                }
            }
        }
        STerm::If(c, t, e) => {
            let bool_id = types.base(BaseType::Bool);
            check_interned_in(env, c, bool_id, arena, types)
                && check_interned_in(env, t, expected, arena, types)
                && check_interned_in(env, e, expected, arena, types)
        }
        STerm::Lam(x, dom, body) => match types.node(expected) {
            TNode::Fun(d, c) => {
                if d != *dom {
                    return false;
                }
                env.push((x.clone(), *dom));
                let ok = check_interned_in(env, body, c, arena, types);
                env.pop();
                ok
            }
            _ => false,
        },
        STerm::Fix(f, x, dom, cod, body) => {
            let fun_id = types.fun(*dom, *cod);
            if fun_id != expected {
                return false;
            }
            env.push((f.clone(), fun_id));
            env.push((x.clone(), *dom));
            let ok = check_interned_in(env, body, *cod, arena, types);
            env.pop();
            env.pop();
            ok
        }
        STerm::Let(x, m, n) => match type_of_interned_in(env, m, arena, types) {
            Ok(mt) => {
                env.push((x.clone(), mt));
                let ok = check_interned_in(env, n, expected, arena, types);
                env.pop();
                ok
            }
            Err(_) => false,
        },
        STerm::App(l, m) => {
            if let Ok(lt) = type_of_interned_in(env, l, arena, types) {
                if let TNode::Fun(d, c) = types.node(lt) {
                    if c == expected && check_interned_in(env, m, d, arena, types) {
                        return true;
                    }
                }
            }
            // The function may be a ⊥-coerced term whose synthesised
            // type is only a representative: check it against the
            // function type demanded by the argument and the context.
            match type_of_interned_in(env, m, arena, types) {
                Ok(mt) => {
                    let fun_id = types.fun(mt, expected);
                    check_interned_in(env, l, fun_id, arena, types)
                }
                Err(_) => false,
            }
        }
        STerm::Op(op, args) => {
            let (params, result) = op.signature();
            types.base(result) == expected
                && params.len() == args.len()
                && params.iter().zip(args).all(|(param, arg)| {
                    let param_id = types.base(*param);
                    check_interned_in(env, arg, param_id, arena, types)
                })
        }
        _ => type_of_interned_in(env, term, arena, types).is_ok_and(|t| t == expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use crate::sterm::CompileCtx;
    use crate::term::Term;
    use bc_syntax::{Ground, Label};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }

    #[test]
    fn compiled_coercion_application_types() {
        let m = Term::int(1)
            .coerce(SpaceCoercion::inj(
                GroundCoercion::IdBase(BaseType::Int),
                gi(),
            ))
            .coerce(SpaceCoercion::proj(
                gi(),
                Label::new(0),
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
            ));
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        let got = type_of_interned(&compiled, &ctx.arena, &mut ctx.types).expect("well typed");
        assert_eq!(ctx.types.resolve(got), Type::INT);
        assert_eq!(crate::typing::type_of(&m), Ok(Type::INT));
    }

    #[test]
    fn compiled_failure_coercion_types() {
        let m = Term::int(1).coerce(SpaceCoercion::fail(
            gi(),
            Label::new(0),
            Ground::Base(BaseType::Bool),
        ));
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        let got = type_of_interned(&compiled, &ctx.arena, &mut ctx.types).expect("well typed");
        assert_eq!(ctx.types.resolve(got), Type::BOOL);
    }

    #[test]
    fn compiled_bad_coercion_is_rejected_like_the_tree() {
        let m = Term::bool(true).coerce(SpaceCoercion::inj(
            GroundCoercion::IdBase(BaseType::Int),
            gi(),
        ));
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        let got = type_of_interned(&compiled, &ctx.arena, &mut ctx.types);
        let tree = crate::typing::type_of(&m);
        assert_eq!(got.unwrap_err(), tree.unwrap_err(), "same TypeError");
    }

    #[test]
    fn interned_coercion_typing_matches_tree_typing() {
        let samples = [
            SpaceCoercion::IdDyn,
            SpaceCoercion::id_base(BaseType::Int),
            SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi()),
            SpaceCoercion::proj(
                gi(),
                Label::new(0),
                Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi()),
            ),
            SpaceCoercion::fun(
                SpaceCoercion::proj(
                    gi(),
                    Label::new(1),
                    Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
                ),
                SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi()),
            ),
            SpaceCoercion::fail(gi(), Label::new(2), Ground::Fun),
        ];
        let mut arena = CoercionArena::new();
        let mut types = TypeArena::new();
        let endpoints = [Type::INT, Type::BOOL, Type::DYN, Type::dyn_fun()];
        for s in &samples {
            let id = arena.intern(s);
            let syn = coercion_synthesize(&arena, &mut types, id)
                .map(|(a, b)| (types.resolve(a), types.resolve(b)));
            assert_eq!(syn, s.synthesize(), "synthesize of {s}");
            for a in &endpoints {
                for b in &endpoints {
                    let (ia, ib) = (types.intern(a), types.intern(b));
                    assert_eq!(
                        coercion_check(&arena, &mut types, id, ia, ib),
                        s.check(a, b),
                        "{s} : {a} ⇒ {b}"
                    );
                }
            }
            let tgt = coercion_target_representative(&arena, &mut types, id);
            assert_eq!(
                types.resolve(tgt),
                s.target_representative(),
                "target rep of {s}"
            );
            let src = coercion_source_representative(&arena, &mut types, id);
            assert_eq!(
                types.resolve(src),
                s.source_representative(),
                "source rep of {s}"
            );
        }
    }
}
