//! The space-efficient coercion calculus λS — the primary contribution
//! of Siek, Thiemann, and Wadler, *Blame and Coercion: Together Again
//! for the First Time* (PLDI 2015), Figure 5.
//!
//! λS restricts coercions to a *canonical form* — a three-part grammar
//! with one canonical coercion per equivalence class of Henglein's
//! equational theory — and equips them with a ten-line structural
//! recursion [`compose()`] (`s # t`) that composes two canonical
//! coercions into a canonical coercion. Because composition preserves
//! height (Proposition 14) and canonical coercions of bounded height
//! have bounded size, a program's coercions can be merged eagerly at
//! run time without ever growing: gradually-typed programs run in
//! bounded space.
//!
//! The dynamics merge adjacent coercions *before* anything else
//! (`F[M⟨s⟩⟨t⟩] ⟶ F[M⟨s # t⟩]`), which is what restores proper tail
//! calls across typed/untyped boundaries.
//!
//! ```
//! use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
//! use bc_core::compose::compose;
//! use bc_syntax::{BaseType, Ground, Label};
//!
//! // (idInt ; Int!) # (Int?p ; idInt) = idInt — a round trip through ?
//! // collapses to the identity, in one composition step.
//! let g = Ground::Base(BaseType::Int);
//! let inj = SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), g);
//! let proj = SpaceCoercion::proj(g, Label::new(0), Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)));
//! assert_eq!(compose(&inj, &proj), SpaceCoercion::id_base(BaseType::Int));
//! ```

//! # The coercion arena
//!
//! The [`coercion`] tree grammar is the *exchange format* — what docs,
//! tests, and the translations read and write. The hot paths (the λS
//! CEK machine's frame merging, the memoized normalisation in
//! `bc-translate`, the pipeline) run on the hash-consed form in
//! [`arena`]: a [`arena::CoercionArena`] stores each distinct coercion
//! once and hands out `Copy` [`arena::CoercionId`] handles, giving
//! O(1) equality/hashing and a memoizable composition through
//! [`arena::ComposeCache`].
//!
//! The two representations are kept in lockstep by construction —
//! `intern`/`resolve` are mutually inverse and the interned
//! composition is the same ten-line recursion — and by the property
//! tests in `tests/compose_props.rs`. See the arena module docs for
//! the four interning invariants.
//!
//! # The compiled term IR
//!
//! [`sterm`] extends the same move to whole terms: [`sterm::STerm`]
//! mirrors [`Term`] with `Coerce` nodes holding [`arena::CoercionId`]
//! and type annotations holding `bc_syntax` [`bc_syntax::TypeId`]
//! handles, lowered once by [`sterm::compile_term`]. The λS CEK
//! machine runs on the compiled IR, so a boundary crossing performs
//! zero interning and zero coercion allocation — an id load plus a
//! cached O(1) merge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod coercion;
pub mod compose;
pub mod eval;
pub mod safety;
pub mod sterm;
pub mod styping;
pub mod subst;
pub mod term;
pub mod typing;

pub use arena::{
    ArenaStats, CacheStats, CoercionArena, CoercionId, ComposeCache, FrozenCoercions, MergeCtx,
};
pub use coercion::{GroundCoercion, Intermediate, SpaceCoercion};
pub use compose::compose;
pub use eval::{run_compiled, step_compiled, OutcomeC, RunC, StepC};
pub use sterm::{compile_term, decompile_term, CompileCtx, STerm};
pub use term::Term;
pub use typing::type_of;
