//! Small-step reduction `M ⟶S N` for λS (Figure 5).
//!
//! The key idea (after Herman et al. and Siek–Wadler 2010) is to
//! *combine adjacent coercions before anything else*:
//!
//! ```text
//! E[(U⟨s→t⟩) V]  ⟶ E[(U (V⟨s⟩))⟨t⟩]
//! F[U⟨idι⟩]      ⟶ F[U]
//! F[U⟨id?⟩]      ⟶ F[U]
//! F[M⟨s⟩⟨t⟩]     ⟶ F[M⟨s # t⟩]        (M need not be a value!)
//! F[U⟨⊥GpH⟩]     ⟶ blame p
//! E[blame p]     ⟶ blame p             (E ≠ □)
//! ```
//!
//! The merge rule fires on arbitrary `M`, and evaluation contexts
//! never stack two coercion frames, so at any moment each evaluation-
//! context layer carries at most one coercion whose size is bounded by
//! its height (which composition preserves, Proposition 14). That is
//! the entire space-efficiency argument, made operational.
//!
//! One liberalisation relative to the paper's context grammar: Figure
//! 5 only decorates contexts with *identity-free* coercions `f`, but
//! the term translation `|·|CS` can place `id?`/`idι` on non-values
//! (e.g. `|M⟨id_A⟩|CS`), and such terms must keep evaluating for
//! progress and for the bisimulation of §4.1 to work. We therefore
//! evaluate under any *single* coercion frame; the merge rule still
//! takes priority, so determinism and the space bound are unaffected
//! (see DESIGN.md §3).

use std::fmt;

use bc_syntax::{Constant, Label, Type, TypeArena, TypeId};

use crate::arena::{CoercionArena, ComposeCache, GNode, INode, MergeCtx, SNode};
use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use crate::sterm::STerm;
use crate::styping::type_of_interned;
use crate::subst::{subst, subst_compiled};
use crate::term::Term;
use crate::typing::{type_of, TypeError};

/// The result of attempting one reduction step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `M ⟶S N`.
    Next(Term),
    /// The term is a value.
    Value,
    /// The term is `blame p`.
    Blame(Label),
}

/// The final outcome of evaluating a term. Fuel exhaustion is not an
/// outcome — [`run`] reports it as [`RunError::FuelExhausted`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Evaluation converged to a value.
    Value(Term),
    /// Evaluation allocated blame.
    Blame(Label),
}

/// Why a fueled run produced no [`Outcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The term is not closed and well typed.
    IllTyped(TypeError),
    /// The fuel bound was reached; the term may diverge.
    FuelExhausted {
        /// Steps actually taken before fuel ran out.
        steps: u64,
        /// The largest term size observed up to the cutoff.
        peak_size: usize,
        /// The largest total coercion size observed up to the cutoff —
        /// the truncated run's space measurement.
        peak_coercion_size: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::IllTyped(e) => write!(f, "ill-typed program: {e}"),
            RunError::FuelExhausted { steps, .. } => {
                write!(f, "fuel exhausted after {steps} steps")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl From<TypeError> for RunError {
    fn from(e: TypeError) -> RunError {
        RunError::IllTyped(e)
    }
}

/// Metrics and result of a fueled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// The final outcome.
    pub outcome: Outcome,
    /// Number of reduction steps taken.
    pub steps: u64,
    /// Peak term size observed.
    pub peak_size: usize,
    /// Peak total coercion size observed — bounded in λS.
    pub peak_coercion_size: usize,
}

enum Sub {
    Stepped(Term),
    Value,
    Raise(Label),
}

/// Performs one reduction step on a closed, well-typed λS term.
///
/// Uses a throwaway merge context; callers stepping repeatedly (like
/// [`run`]) should use [`step_in`] with a persistent [`MergeCtx`] so
/// repeated coercion merges hit the compose cache.
///
/// # Panics
///
/// Panics if the term is open or ill-typed.
pub fn step(term: &Term, program_ty: &Type) -> Step {
    step_in(&mut MergeCtx::new(), term, program_ty)
}

/// [`step`] with a caller-owned arena and compose cache: the merge
/// rule `F[M⟨s⟩⟨t⟩] ⟶ F[M⟨s # t⟩]` interns `s` and `t` into
/// `ctx.arena` and memoizes the composition, so a loop crossing the
/// same boundary repeatedly composes each coercion pair once.
///
/// # Panics
///
/// Panics if the term is open or ill-typed.
pub fn step_in(ctx: &mut MergeCtx, term: &Term, program_ty: &Type) -> Step {
    if let Term::Blame(p, _) = term {
        return Step::Blame(*p);
    }
    if term.is_value() {
        return Step::Value;
    }
    match step_sub(ctx, term) {
        Sub::Stepped(t) => Step::Next(t),
        Sub::Raise(p) => Step::Next(Term::Blame(p, program_ty.clone())),
        Sub::Value => unreachable!("non-value term did not step: {term}"),
    }
}

fn step_sub(ctx: &mut MergeCtx, term: &Term) -> Sub {
    if term.is_value() {
        return Sub::Value;
    }
    match term {
        Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _) => Sub::Value,
        Term::Var(x) => panic!("evaluation reached a free variable `{x}`"),
        Term::Blame(p, _) => Sub::Raise(*p),
        Term::Op(op, args) => {
            for (i, arg) in args.iter().enumerate() {
                match step_sub(ctx, arg) {
                    Sub::Stepped(a2) => {
                        let mut args2 = args.clone();
                        args2[i] = a2;
                        return Sub::Stepped(Term::Op(*op, args2));
                    }
                    Sub::Raise(p) => return Sub::Raise(p),
                    Sub::Value => continue,
                }
            }
            let consts: Vec<Constant> = args
                .iter()
                .map(|a| match a {
                    Term::Const(k) => *k,
                    other => panic!("operator argument is not a constant: {other}"),
                })
                .collect();
            Sub::Stepped(Term::Const(op.apply(&consts)))
        }
        Term::If(cond, then_, else_) => match step_sub(ctx, cond) {
            Sub::Stepped(c2) => Sub::Stepped(Term::If(c2.into(), then_.clone(), else_.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match &**cond {
                Term::Const(Constant::Bool(true)) => Sub::Stepped((**then_).clone()),
                Term::Const(Constant::Bool(false)) => Sub::Stepped((**else_).clone()),
                other => panic!("if condition is not a boolean: {other}"),
            },
        },
        Term::Let(x, m, n) => match step_sub(ctx, m) {
            Sub::Stepped(m2) => Sub::Stepped(Term::Let(x.clone(), m2.into(), n.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => Sub::Stepped(subst(n, x, m)),
        },
        Term::App(l, m) => match step_sub(ctx, l) {
            Sub::Stepped(l2) => Sub::Stepped(Term::App(l2.into(), m.clone())),
            Sub::Raise(p) => Sub::Raise(p),
            Sub::Value => match step_sub(ctx, m) {
                Sub::Stepped(m2) => Sub::Stepped(Term::App(l.clone(), m2.into())),
                Sub::Raise(p) => Sub::Raise(p),
                Sub::Value => apply(l, m),
            },
        },
        Term::Coerce(m, t) => {
            // Merge FIRST: F[M⟨s⟩⟨t⟩] ⟶ F[M⟨s # t⟩], for any M —
            // through the interning arena, so the same pair is
            // composed structurally only once per run.
            if let Term::Coerce(inner, s) = &**m {
                return Sub::Stepped(Term::Coerce(inner.clone(), ctx.merge(s, t)));
            }
            match step_sub(ctx, m) {
                Sub::Stepped(m2) => Sub::Stepped(Term::Coerce(m2.into(), t.clone())),
                Sub::Raise(p) => Sub::Raise(p),
                Sub::Value => coerce_value(m, t),
            }
        }
    }
}

/// Contracts an application of values.
fn apply(fun: &Term, arg: &Term) -> Sub {
    match fun {
        Term::Lam(x, _, body) => Sub::Stepped(subst(body, x, arg)),
        Term::Fix(f, x, _, _, body) => {
            let unrolled = subst(body, f, fun);
            Sub::Stepped(subst(&unrolled, x, arg))
        }
        // (U⟨s→t⟩) V ⟶ (U (V⟨s⟩))⟨t⟩
        Term::Coerce(u, SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(s, t)))) => {
            let coerced_arg = arg.clone().coerce((**s).clone());
            Sub::Stepped(Term::App(u.clone(), coerced_arg.into()).coerce((**t).clone()))
        }
        other => panic!("applied a non-function value: {other}"),
    }
}

/// Reduces `U⟨s⟩` where `U` is an uncoerced value and the whole term
/// is not a value.
fn coerce_value(value: &Term, s: &SpaceCoercion) -> Sub {
    debug_assert!(value.is_uncoerced_value());
    match s {
        // F[U⟨id?⟩] ⟶ F[U]
        SpaceCoercion::IdDyn => Sub::Stepped(value.clone()),
        SpaceCoercion::Mid(i) => match i {
            // F[U⟨idι⟩] ⟶ F[U]
            Intermediate::Ground(GroundCoercion::IdBase(_)) => Sub::Stepped(value.clone()),
            // F[U⟨⊥GpH⟩] ⟶ blame p
            Intermediate::Fail(_, p, _) => Sub::Raise(*p),
            Intermediate::Ground(GroundCoercion::Fun(_, _)) | Intermediate::Inj(_, _) => {
                unreachable!("function coercions and injections of values are values")
            }
        },
        SpaceCoercion::Proj(_, _, _) => {
            unreachable!("an uncoerced value cannot have type ? (so no projection applies)")
        }
    }
}

/// Evaluates a closed, well-typed λS term for at most `fuel` steps.
///
/// # Errors
///
/// Returns [`RunError::IllTyped`] if the term is not closed and well
/// typed, and [`RunError::FuelExhausted`] (carrying the steps actually
/// taken) if the fuel bound is reached.
pub fn run(term: &Term, fuel: u64) -> Result<Run, RunError> {
    let ty = type_of(term)?;
    // One arena + compose cache for the whole run: a loop crossing
    // the same boundary on every iteration merges each coercion pair
    // structurally once and answers the rest from the cache.
    let mut ctx = MergeCtx::new();
    let mut current = term.clone();
    let mut steps = 0u64;
    let mut peak_size = current.size();
    let mut peak_coercion_size = current.coercion_size();
    loop {
        match step_in(&mut ctx, &current, &ty) {
            Step::Value => {
                return Ok(Run {
                    outcome: Outcome::Value(current),
                    steps,
                    peak_size,
                    peak_coercion_size,
                })
            }
            Step::Blame(p) => {
                return Ok(Run {
                    outcome: Outcome::Blame(p),
                    steps,
                    peak_size,
                    peak_coercion_size,
                })
            }
            Step::Next(next) => {
                // Charge fuel *before* committing the step, so a
                // zero-fuel run reports zero steps (values still
                // complete at any fuel: Step::Value returns above).
                if steps >= fuel {
                    return Err(RunError::FuelExhausted {
                        steps,
                        peak_size,
                        peak_coercion_size,
                    });
                }
                steps += 1;
                peak_size = peak_size.max(next.size());
                peak_coercion_size = peak_coercion_size.max(next.coercion_size());
                current = next;
            }
        }
    }
}

// ---------------------------------------------------------------------
// The compiled-IR small-step: Figure 5 on `STerm`
// ---------------------------------------------------------------------

/// The result of attempting one reduction step on the compiled IR.
#[derive(Debug, Clone, PartialEq)]
pub enum StepC {
    /// `M ⟶S N`.
    Next(STerm),
    /// The term is a value.
    Value,
    /// The term is `blame p`.
    Blame(Label),
}

/// The final outcome of evaluating a compiled term.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeC {
    /// Evaluation converged to a value.
    Value(STerm),
    /// Evaluation allocated blame.
    Blame(Label),
}

/// Metrics and result of a fueled compiled run. The peaks measure the
/// *implicit tree* sizes (each coercion handle weighs its resolved
/// tree), so they are number-for-number comparable with [`Run`] — the
/// tree small-step is the property-test oracle for this engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunC {
    /// The final outcome.
    pub outcome: OutcomeC,
    /// Number of reduction steps taken.
    pub steps: u64,
    /// Peak term size observed (tree-equivalent measure).
    pub peak_size: usize,
    /// Peak total coercion size observed — bounded in λS.
    pub peak_coercion_size: usize,
}

enum SubC {
    Stepped(STerm),
    Value,
    Raise(Label),
}

/// Performs one reduction step on a closed, well-typed compiled λS
/// term — [`step_in`] transcribed onto the IR the machine actually
/// runs. The merge rule composes *ids* through the arena's memoized
/// [`CoercionArena::compose`], so stepping never materialises a
/// coercion tree: a loop crossing the same boundary repeatedly is pure
/// cache hits.
///
/// # Panics
///
/// Panics if the term is open or ill-typed.
pub fn step_compiled(
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    term: &STerm,
    program_ty: TypeId,
) -> StepC {
    if let STerm::Blame(p, _) = term {
        return StepC::Blame(*p);
    }
    if term.is_value(arena) {
        return StepC::Value;
    }
    match step_sub_compiled(arena, cache, term) {
        SubC::Stepped(t) => StepC::Next(t),
        SubC::Raise(p) => StepC::Next(STerm::Blame(p, program_ty)),
        SubC::Value => unreachable!("non-value compiled term did not step"),
    }
}

fn step_sub_compiled(arena: &mut CoercionArena, cache: &mut ComposeCache, term: &STerm) -> SubC {
    if term.is_value(arena) {
        return SubC::Value;
    }
    match term {
        STerm::Const(_) | STerm::Lam(_, _, _) | STerm::Fix(_, _, _, _, _) => SubC::Value,
        STerm::Var(x) => panic!("evaluation reached a free variable `{x}`"),
        STerm::Blame(p, _) => SubC::Raise(*p),
        STerm::Op(op, args) => {
            for (i, arg) in args.iter().enumerate() {
                match step_sub_compiled(arena, cache, arg) {
                    SubC::Stepped(a2) => {
                        let mut args2 = args.clone();
                        args2[i] = a2;
                        return SubC::Stepped(STerm::Op(*op, args2));
                    }
                    SubC::Raise(p) => return SubC::Raise(p),
                    SubC::Value => continue,
                }
            }
            let consts: Vec<Constant> = args
                .iter()
                .map(|a| match a {
                    STerm::Const(k) => *k,
                    _ => panic!("operator argument is not a constant"),
                })
                .collect();
            SubC::Stepped(STerm::Const(op.apply(&consts)))
        }
        STerm::If(cond, then_, else_) => match step_sub_compiled(arena, cache, cond) {
            SubC::Stepped(c2) => SubC::Stepped(STerm::If(c2.into(), then_.clone(), else_.clone())),
            SubC::Raise(p) => SubC::Raise(p),
            SubC::Value => match &**cond {
                STerm::Const(Constant::Bool(true)) => SubC::Stepped((**then_).clone()),
                STerm::Const(Constant::Bool(false)) => SubC::Stepped((**else_).clone()),
                _ => panic!("if condition is not a boolean"),
            },
        },
        STerm::Let(x, m, n) => match step_sub_compiled(arena, cache, m) {
            SubC::Stepped(m2) => SubC::Stepped(STerm::Let(x.clone(), m2.into(), n.clone())),
            SubC::Raise(p) => SubC::Raise(p),
            SubC::Value => SubC::Stepped(subst_compiled(n, x, m)),
        },
        STerm::App(l, m) => match step_sub_compiled(arena, cache, l) {
            SubC::Stepped(l2) => SubC::Stepped(STerm::App(l2.into(), m.clone())),
            SubC::Raise(p) => SubC::Raise(p),
            SubC::Value => match step_sub_compiled(arena, cache, m) {
                SubC::Stepped(m2) => SubC::Stepped(STerm::App(l.clone(), m2.into())),
                SubC::Raise(p) => SubC::Raise(p),
                SubC::Value => apply_compiled(arena, l, m),
            },
        },
        STerm::Coerce(m, t) => {
            // Merge FIRST: F[M⟨s⟩⟨t⟩] ⟶ F[M⟨s # t⟩], for any M —
            // on ids through the memoized composition, so the same
            // pair is composed structurally only once per arena.
            if let STerm::Coerce(inner, s) = &**m {
                return SubC::Stepped(STerm::Coerce(inner.clone(), arena.compose(cache, *s, *t)));
            }
            match step_sub_compiled(arena, cache, m) {
                SubC::Stepped(m2) => SubC::Stepped(STerm::Coerce(m2.into(), *t)),
                SubC::Raise(p) => SubC::Raise(p),
                SubC::Value => coerce_value_compiled(arena, m, *t),
            }
        }
    }
}

/// Contracts an application of compiled values.
fn apply_compiled(arena: &CoercionArena, fun: &STerm, arg: &STerm) -> SubC {
    match fun {
        STerm::Lam(x, _, body) => SubC::Stepped(subst_compiled(body, x, arg)),
        STerm::Fix(f, x, _, _, body) => {
            let unrolled = subst_compiled(body, f, fun);
            SubC::Stepped(subst_compiled(&unrolled, x, arg))
        }
        // (U⟨s→t⟩) V ⟶ (U (V⟨s⟩))⟨t⟩
        STerm::Coerce(u, c) => match arena.node(*c) {
            SNode::Mid(INode::Ground(GNode::Fun(s, t))) => {
                let coerced_arg = STerm::Coerce(arg.clone().into(), s);
                SubC::Stepped(STerm::Coerce(
                    STerm::App(u.clone(), coerced_arg.into()).into(),
                    t,
                ))
            }
            _ => panic!("applied a non-function coerced value"),
        },
        _ => panic!("applied a non-function value"),
    }
}

/// Reduces `U⟨s⟩` where `U` is an uncoerced value and the whole term
/// is not a value, deciding the rule from the interned node.
fn coerce_value_compiled(
    arena: &CoercionArena,
    value: &STerm,
    s: crate::arena::CoercionId,
) -> SubC {
    debug_assert!(value.is_uncoerced_value());
    match arena.node(s) {
        // F[U⟨id?⟩] ⟶ F[U]
        SNode::IdDyn => SubC::Stepped(value.clone()),
        SNode::Mid(i) => match i {
            // F[U⟨idι⟩] ⟶ F[U]
            INode::Ground(GNode::IdBase(_)) => SubC::Stepped(value.clone()),
            // F[U⟨⊥GpH⟩] ⟶ blame p
            INode::Fail(_, p, _) => SubC::Raise(p),
            INode::Ground(GNode::Fun(_, _)) | INode::Inj(_, _) => {
                unreachable!("function coercions and injections of values are values")
            }
        },
        SNode::Proj(_, _, _) => {
            unreachable!("an uncoerced value cannot have type ? (so no projection applies)")
        }
    }
}

/// Evaluates a closed, well-typed compiled λS term for at most `fuel`
/// steps — [`run`] on the IR the machine actually executes, against
/// caller-owned arenas. This is the production engine; the tree
/// [`run`] is its property-test oracle (same outcome, same step count,
/// same space peaks — pinned by the equivalence suite in
/// `tests/`/testkit).
///
/// # Errors
///
/// Returns [`RunError::IllTyped`] if the term is not closed and well
/// typed, and [`RunError::FuelExhausted`] (carrying the steps actually
/// taken) if the fuel bound is reached.
pub fn run_compiled(
    term: &STerm,
    fuel: u64,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
    types: &mut TypeArena,
) -> Result<RunC, RunError> {
    let paused = start_compiled(term, fuel, arena, types)?;
    match resume_compiled(paused, fuel, arena, cache) {
        SliceC::Done(r) => r,
        SliceC::Parked(_) => unreachable!("a slice of the whole fuel cannot park"),
    }
}

/// A preempted compiled small-step run, parked between fuel slices.
///
/// Small-step state is just the current term plus counters: the term
/// is its own continuation, so parking holds no stack at all. The
/// program type is interned once at [`start_compiled`] and reused by
/// every slice, exactly as the unsliced [`run_compiled`] computes it
/// once up front. The `STerm` spine is `Rc`-shared, so a parked run
/// is deliberately **not** `Send` (see the machine crate's `Paused`
/// types for the measured rationale).
#[derive(Debug, Clone)]
pub struct PausedC {
    current: STerm,
    ty: TypeId,
    steps: u64,
    peak_size: usize,
    peak_coercion_size: usize,
    fuel: u64,
}

impl PausedC {
    /// Reduction steps taken so far, across all slices.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// Result of driving a compiled run for one fuel slice.
#[derive(Debug)]
pub enum SliceC {
    /// The run finished — value, blame, or fuel exhaustion.
    Done(Result<RunC, RunError>),
    /// Preempted between steps; resume to continue.
    Parked(PausedC),
}

/// Begins a resumable compiled run: interns the program type (the
/// once-per-run cost the unsliced engine also pays up front) and
/// parks before the first step.
///
/// # Errors
///
/// Returns [`RunError::IllTyped`] if the term is not closed and well
/// typed.
pub fn start_compiled(
    term: &STerm,
    fuel: u64,
    arena: &mut CoercionArena,
    types: &mut TypeArena,
) -> Result<PausedC, RunError> {
    let ty = type_of_interned(term, arena, types)?;
    let current = term.clone();
    // Tree-equivalent measures: node count includes each coercion's
    // implicit tree size, matching `Term::size`/`Term::coercion_size`.
    let peak_coercion_size = current.coercion_size(arena);
    let peak_size = current.size() + peak_coercion_size;
    Ok(PausedC {
        current,
        ty,
        steps: 0,
        peak_size,
        peak_coercion_size,
        fuel,
    })
}

/// Runs a parked compiled run for at most `slice` further steps.
///
/// Fuel and slices count the same unit (one reduction step, charged
/// before the step commits), and the park check yields to the final
/// fuel/value decision once the fuel line is reached — so a slice at
/// least as large as the remaining fuel can never park, and
/// `resume_compiled(start_compiled(t, f, ..)?, f, ..)` is exactly
/// [`run_compiled`]`(t, f, ..)`, step counts and peaks included.
///
/// # Panics
///
/// Panics if the term is open or ill-typed (checked by
/// [`start_compiled`]) or its ids are foreign to `arena`.
pub fn resume_compiled(
    paused: PausedC,
    slice: u64,
    arena: &mut CoercionArena,
    cache: &mut ComposeCache,
) -> SliceC {
    let PausedC {
        mut current,
        ty,
        mut steps,
        mut peak_size,
        mut peak_coercion_size,
        fuel,
    } = paused;
    let until = steps.saturating_add(slice);
    loop {
        // Park only strictly below the fuel line: at `steps == fuel`
        // the unsliced engine still distinguishes a value (completes)
        // from a pending step (FuelExhausted), so let the step
        // dispatch below make that call.
        if steps >= until && steps < fuel {
            return SliceC::Parked(PausedC {
                current,
                ty,
                steps,
                peak_size,
                peak_coercion_size,
                fuel,
            });
        }
        match step_compiled(arena, cache, &current, ty) {
            StepC::Value => {
                return SliceC::Done(Ok(RunC {
                    outcome: OutcomeC::Value(current),
                    steps,
                    peak_size,
                    peak_coercion_size,
                }))
            }
            StepC::Blame(p) => {
                return SliceC::Done(Ok(RunC {
                    outcome: OutcomeC::Blame(p),
                    steps,
                    peak_size,
                    peak_coercion_size,
                }))
            }
            StepC::Next(next) => {
                // Charge fuel *before* committing the step, exactly as
                // the tree engine does.
                if steps >= fuel {
                    return SliceC::Done(Err(RunError::FuelExhausted {
                        steps,
                        peak_size,
                        peak_coercion_size,
                    }));
                }
                steps += 1;
                let coercion_size = next.coercion_size(arena);
                peak_size = peak_size.max(next.size() + coercion_size);
                peak_coercion_size = peak_coercion_size.max(coercion_size);
                current = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground, Label, Op};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }
    fn id_int() -> GroundCoercion {
        GroundCoercion::IdBase(BaseType::Int)
    }

    fn eval_value(term: &Term) -> Term {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Value(v) => v,
            other => panic!("expected value, got {other:?}"),
        }
    }

    fn eval_blame(term: &Term) -> Label {
        match run(term, 10_000).expect("well typed").outcome {
            Outcome::Blame(l) => l,
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn merge_fires_before_evaluation() {
        // (1+1)⟨idInt;Int!⟩⟨Int?p;idInt⟩ first merges the coercions to
        // idInt, *then* evaluates the sum.
        let m = Term::op2(Op::Add, Term::int(1), Term::int(1))
            .coerce(SpaceCoercion::inj(id_int(), gi()))
            .coerce(SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Ground(id_int()),
            ));
        let ty = type_of(&m).unwrap();
        match step(&m, &ty) {
            Step::Next(n) => {
                assert_eq!(
                    n,
                    Term::op2(Op::Add, Term::int(1), Term::int(1))
                        .coerce(SpaceCoercion::id_base(BaseType::Int))
                );
            }
            other => panic!("expected merge step, got {other:?}"),
        }
        assert_eq!(eval_value(&m), Term::int(2));
    }

    #[test]
    fn round_trip_collapses() {
        let m = Term::int(7)
            .coerce(SpaceCoercion::inj(id_int(), gi()))
            .coerce(SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Ground(id_int()),
            ));
        assert_eq!(eval_value(&m), Term::int(7));
    }

    #[test]
    fn mismatch_produces_failure_then_blame() {
        let m = Term::int(7)
            .coerce(SpaceCoercion::inj(id_int(), gi()))
            .coerce(SpaceCoercion::proj(
                gb(),
                p(1),
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
            ));
        assert_eq!(eval_blame(&m), p(1));
    }

    #[test]
    fn function_coercion_application() {
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let s = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let t = SpaceCoercion::inj(id_int(), gi());
        let wrapped = inc.coerce(SpaceCoercion::fun(s, t));
        let m = wrapped.app(Term::int(1).coerce(SpaceCoercion::inj(id_int(), gi())));
        assert_eq!(
            eval_value(&m),
            Term::int(2).coerce(SpaceCoercion::inj(id_int(), gi()))
        );
    }

    #[test]
    fn identity_on_non_value_still_progresses() {
        // The liberalised context: (1+1)⟨idInt⟩ evaluates under the
        // identity coercion, then unwraps.
        let m = Term::op2(Op::Add, Term::int(1), Term::int(1))
            .coerce(SpaceCoercion::id_base(BaseType::Int));
        assert_eq!(eval_value(&m), Term::int(2));
    }

    #[test]
    fn bounded_coercions_under_stacking() {
        // Stacking n round-trip coercions on a value merges them pair
        // by pair; the peak coercion size stays constant.
        fn stacked(n: usize) -> Term {
            let mut m = Term::int(1);
            for k in 0..n {
                m = m
                    .coerce(SpaceCoercion::inj(id_int(), gi()))
                    .coerce(SpaceCoercion::proj(
                        gi(),
                        p(k as u32),
                        Intermediate::Ground(id_int()),
                    ));
            }
            m
        }
        let r8 = run(&stacked(8), 10_000).unwrap();
        let r64 = run(&stacked(64), 10_000).unwrap();
        assert_eq!(r8.outcome, Outcome::Value(Term::int(1)));
        assert_eq!(r64.outcome, Outcome::Value(Term::int(1)));
        // The initial term itself is linear in n, but merging keeps
        // the *growth* nil: peak equals the initial size.
        assert_eq!(r64.peak_coercion_size, stacked(64).coercion_size());
    }

    #[test]
    fn failure_blames() {
        let m = Term::int(1).coerce(SpaceCoercion::fail(gi(), p(3), gb()));
        assert_eq!(eval_blame(&m), p(3));
    }

    #[test]
    fn compiled_run_agrees_with_tree_run() {
        use crate::sterm::compile_term;

        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let s = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let t = SpaceCoercion::inj(id_int(), gi());
        let samples = [
            // Value via a wrapped function.
            inc.clone()
                .coerce(SpaceCoercion::fun(s.clone(), t.clone()))
                .app(Term::int(1).coerce(SpaceCoercion::inj(id_int(), gi()))),
            // Blame via a ground mismatch.
            Term::int(7)
                .coerce(SpaceCoercion::inj(id_int(), gi()))
                .coerce(SpaceCoercion::proj(
                    gb(),
                    p(1),
                    Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
                )),
            // Merge-heavy stacking.
            Term::int(1)
                .coerce(SpaceCoercion::inj(id_int(), gi()))
                .coerce(SpaceCoercion::proj(
                    gi(),
                    p(2),
                    Intermediate::Ground(id_int()),
                ))
                .coerce(SpaceCoercion::inj(id_int(), gi()))
                .coerce(SpaceCoercion::proj(
                    gi(),
                    p(3),
                    Intermediate::Ground(id_int()),
                )),
        ];
        for m in &samples {
            let tree = run(m, 10_000).unwrap();
            let mut arena = CoercionArena::new();
            let mut cache = ComposeCache::new();
            let mut types = TypeArena::new();
            let st = compile_term(m, &mut arena, &mut types);
            let compiled = run_compiled(&st, 10_000, &mut arena, &mut cache, &mut types).unwrap();
            match (&tree.outcome, &compiled.outcome) {
                (Outcome::Value(v), OutcomeC::Value(cv)) => {
                    assert_eq!(
                        crate::sterm::decompile_term(cv, &arena, &types),
                        *v,
                        "outcome of {m}"
                    );
                }
                (Outcome::Blame(l), OutcomeC::Blame(cl)) => assert_eq!(l, cl, "blame of {m}"),
                (a, b) => panic!("outcomes diverge on {m}: {a:?} vs {b:?}"),
            }
            assert_eq!(tree.steps, compiled.steps, "steps of {m}");
            assert_eq!(tree.peak_size, compiled.peak_size, "peak size of {m}");
            assert_eq!(
                tree.peak_coercion_size, compiled.peak_coercion_size,
                "peak coercion size of {m}"
            );
        }
    }

    #[test]
    fn sliced_compiled_run_is_identical_to_unsliced() {
        use crate::sterm::compile_term;

        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let s = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let t = SpaceCoercion::inj(id_int(), gi());
        let samples = [
            inc.clone()
                .coerce(SpaceCoercion::fun(s.clone(), t.clone()))
                .app(Term::int(1).coerce(SpaceCoercion::inj(id_int(), gi()))),
            Term::int(7)
                .coerce(SpaceCoercion::inj(id_int(), gi()))
                .coerce(SpaceCoercion::proj(
                    gb(),
                    p(1),
                    Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
                )),
        ];
        // Fuel bounds chosen to exercise completion *and* exhaustion
        // (tiny fuels make even short runs time out), so the slice
        // loop must reproduce both outcomes and their step accounting.
        for fuel in [1u64, 2, 3, 10_000] {
            for m in &samples {
                let unsliced = {
                    let mut arena = CoercionArena::new();
                    let mut cache = ComposeCache::new();
                    let mut types = TypeArena::new();
                    let st = compile_term(m, &mut arena, &mut types);
                    run_compiled(&st, fuel, &mut arena, &mut cache, &mut types)
                };
                for slice in [1u64, 2, 7, fuel] {
                    let mut arena = CoercionArena::new();
                    let mut cache = ComposeCache::new();
                    let mut types = TypeArena::new();
                    let st = compile_term(m, &mut arena, &mut types);
                    let mut paused = start_compiled(&st, fuel, &mut arena, &mut types)
                        .expect("samples are well typed");
                    let mut last_steps = 0;
                    let sliced = loop {
                        match resume_compiled(paused, slice, &mut arena, &mut cache) {
                            SliceC::Done(result) => break result,
                            SliceC::Parked(next) => {
                                assert!(
                                    next.steps() >= last_steps && next.steps() < fuel,
                                    "parked runs advance and stay below the fuel line"
                                );
                                last_steps = next.steps();
                                paused = next;
                            }
                        }
                    };
                    // Identical to the letter: outcome, step count,
                    // fuel-exhaustion accounting, and space peaks.
                    assert_eq!(unsliced, sliced, "slice {slice}, fuel {fuel} of {m}");
                }
            }
        }
    }

    #[test]
    fn compiled_run_rejects_ill_typed_terms() {
        use crate::sterm::compile_term;
        let bad = Term::op2(Op::Add, Term::int(1), Term::Const(Constant::Bool(true)));
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let mut types = TypeArena::new();
        let st = compile_term(&bad, &mut arena, &mut types);
        assert!(matches!(
            run_compiled(&st, 10, &mut arena, &mut cache, &mut types),
            Err(RunError::IllTyped(_))
        ));
    }

    #[test]
    fn preservation_along_a_run() {
        let inc = Term::lam(
            "x",
            Type::INT,
            Term::op2(Op::Add, Term::var("x"), Term::int(1)),
        );
        let s = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let t = SpaceCoercion::inj(id_int(), gi());
        let m = inc
            .coerce(SpaceCoercion::fun(s, t))
            .app(Term::int(1).coerce(SpaceCoercion::inj(id_int(), gi())))
            .coerce(SpaceCoercion::proj(
                gi(),
                p(4),
                Intermediate::Ground(id_int()),
            ));
        let ty = type_of(&m).unwrap();
        let mut cur = m;
        let mut ctx = MergeCtx::new();
        loop {
            match step_in(&mut ctx, &cur, &ty) {
                Step::Next(n) => {
                    assert_eq!(type_of(&n), Ok(ty.clone()), "preservation at {n}");
                    cur = n;
                }
                Step::Value => {
                    assert_eq!(cur, Term::int(2));
                    break;
                }
                Step::Blame(l) => panic!("unexpected blame {l}"),
            }
        }
    }
}
