//! A hash-consing arena for λS coercions, with memoized composition.
//!
//! The space-efficiency theorem makes `s # t` the hottest operation in
//! the whole system: the λS machine composes coercions on *every*
//! merged frame and every proxied value, and boundary-crossing loops
//! compose the same handful of coercions millions of times. The tree
//! representation in [`crate::coercion`] pays an O(size) clone and an
//! O(size) structural comparison each time.
//!
//! This module interns coercions instead. A [`CoercionArena`] stores
//! each distinct coercion node exactly once and hands out copyable
//! [`CoercionId`] handles, so that
//!
//! * **equality is O(1)** — two interned coercions are equal iff their
//!   ids are equal (hash-consing canonicity);
//! * **structure is shared** — a function coercion's domain and
//!   codomain are ids into the same arena, so composing deep coercions
//!   allocates only the nodes that are actually new;
//! * **composition memoizes** — a [`ComposeCache`] keyed on the id
//!   pair `(s, t)` makes every repeated composition a single hash
//!   lookup.
//!
//! The tree types remain the *exchange format*: [`CoercionArena::intern`]
//! accepts a [`SpaceCoercion`] and [`CoercionArena::resolve`] rebuilds
//! one, so the paper-facing grammar in docs and tests stays readable.
//!
//! # Interning invariants
//!
//! 1. *Canonicity*: for every arena `A` and trees `s`, `t`:
//!    `A.intern(s) == A.intern(t)` iff `s == t` (structurally). In
//!    particular interning the same coercion twice returns the same
//!    id.
//! 2. *Round trip*: `A.resolve(A.intern(s)) == s`.
//! 3. *Stability*: ids are never invalidated; an arena only grows.
//!    (Ids are **not** meaningful across arenas.)
//! 4. *Agreement*: `A.resolve(A.compose(cache, a, b))` equals
//!    `compose(&A.resolve(a), &A.resolve(b))` — the interned
//!    composition is the ten-line recursion of Figure 5, transcribed
//!    onto nodes (validated by property test).
//!
//! ```
//! use bc_core::arena::{ComposeCache, CoercionArena};
//! use bc_core::compose::compose;
//! use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
//! use bc_syntax::{BaseType, Ground, Label};
//!
//! let mut arena = CoercionArena::new();
//! let mut cache = ComposeCache::new();
//! let g = Ground::Base(BaseType::Int);
//! let inj = SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), g);
//! let proj = SpaceCoercion::proj(g, Label::new(0), Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)));
//!
//! let a = arena.intern(&inj);
//! let b = arena.intern(&proj);
//! assert_eq!(a, arena.intern(&inj)); // same coercion, same id
//!
//! let ab = arena.compose(&mut cache, a, b);
//! assert_eq!(arena.resolve(ab), compose(&inj, &proj)); // agreement
//! assert_eq!(arena.compose(&mut cache, a, b), ab);     // cache hit
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::BuildHasher;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use bc_syntax::{
    AppendLog, AtomicIndex, BaseType, ClockMap, FxBuildHasher, Ground, Label, TNode, Type,
    TypeArena, TypeId,
};

use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};

/// A handle to an interned space-efficient coercion: a dense index
/// into a [`CoercionArena`]. `Copy + Eq + Hash`; equal ids denote
/// structurally equal coercions within one arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoercionId(u32);

impl CoercionId {
    /// The raw index (for metrics and debugging).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoercionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interned space-efficient coercion node — [`SpaceCoercion`] with
/// function children replaced by [`CoercionId`]s. `Copy`, so machine
/// code can match on nodes without touching the arena twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SNode {
    /// `id?`.
    IdDyn,
    /// `G?p ; i`.
    Proj(Ground, Label, INode),
    /// An intermediate coercion `i`.
    Mid(INode),
}

/// An interned intermediate coercion `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum INode {
    /// `g ; G!`.
    Inj(GNode, Ground),
    /// A ground coercion `g`.
    Ground(GNode),
    /// `⊥GpH`.
    Fail(Ground, Label, Ground),
}

/// An interned ground coercion `g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GNode {
    /// `idι`.
    IdBase(BaseType),
    /// `s → t`, children interned.
    Fun(CoercionId, CoercionId),
}

/// Per-node facts computed once at interning time.
#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    height: u32,
    /// Implicit *tree* size of the node. u64 + saturating arithmetic:
    /// structural sharing lets the id-level `fun()` API build
    /// DAG-shaped coercions whose tree size is exponential in the
    /// number of interned nodes, which would wrap a u32.
    size: u64,
}

/// Interning counters of a [`CoercionArena`]: how much tree-walking
/// and hash-probing work the arena has absorbed, and how often it was
/// answered by an already-interned node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct coercion nodes stored (both tiers, for an overlay).
    pub nodes: usize,
    /// Tree-interning operations performed (one per [`SpaceCoercion`]
    /// node walked by [`CoercionArena::intern`]). The compiled λS term
    /// IR exists to drive this to zero at run time.
    pub tree_interns: u64,
    /// Node interns answered by the hash-consing index (node already
    /// present — in either tier).
    pub node_hits: u64,
    /// Node interns that stored a new node.
    pub node_misses: u64,
    /// The subset of [`ArenaStats::node_hits`] answered by the frozen
    /// base tier's index (always zero for an arena without a base).
    pub base_hits: u64,
}

/// The append-only concurrent storage behind every [`FrozenCoercions`]
/// view: coercion nodes, their metadata, the hash-cons index, and the
/// frozen composition pairs, in [`AppendLog`]s probed through
/// [`AtomicIndex`]es (the same primitives as the type slab in
/// `bc_syntax::slab`).
///
/// One slab serves an entire epoch lineage: freezing an overlay over a
/// view of this slab appends only the overlay's genuinely new rows
/// (O(overlay)) and returns a view with higher watermarks. Entries
/// below a published watermark are immutable and pointer-stable
/// forever; readers never lock, and the `writer` mutex only serializes
/// appenders.
struct CoercionSlab {
    nodes: AppendLog<SNode>,
    meta: AppendLog<NodeMeta>,
    node_index: AtomicIndex,
    /// The frozen composition table, as append-ordered
    /// `((s, t), s # t)` rows: eviction-free (the base tier never
    /// evicts, only grows).
    pairs: AppendLog<((CoercionId, CoercionId), CoercionId)>,
    pair_index: AtomicIndex,
    hasher: FxBuildHasher,
    /// Serializes appenders (freezes of overlays over this slab).
    writer: Mutex<()>,
}

impl CoercionSlab {
    fn new() -> CoercionSlab {
        CoercionSlab {
            nodes: AppendLog::new(),
            meta: AppendLog::new(),
            node_index: AtomicIndex::new(),
            pairs: AppendLog::new(),
            pair_index: AtomicIndex::new(),
            hasher: FxBuildHasher::default(),
            writer: Mutex::new(()),
        }
    }

    /// Lock-free hash-cons probe among slab ids below `below` (a view
    /// watermark, or `usize::MAX` for writer-side probes).
    fn probe_node(&self, node: &SNode, below: usize) -> Option<CoercionId> {
        let hash = self.hasher.hash_one(node);
        self.node_index
            .get(hash, |id| {
                (id as usize) < below && *self.nodes.get(id as usize) == *node
            })
            .map(CoercionId)
    }

    /// Lock-free composition-pair probe among rows below `below`.
    fn probe_pair(&self, key: &(CoercionId, CoercionId), below: usize) -> Option<CoercionId> {
        let hash = self.hasher.hash_one(key);
        self.pair_index
            .get(hash, |row| {
                (row as usize) < below && self.pairs.get(row as usize).0 == *key
            })
            .map(|row| self.pairs.get(row as usize).1)
    }

    /// Appends a node known to be absent (writer lock held, or slab
    /// not yet shared).
    fn append_node(&self, node: SNode, meta: NodeMeta) -> CoercionId {
        let id = self.nodes.push(node);
        self.meta.push(meta);
        self.node_index
            .insert(self.hasher.hash_one(node), id as u32);
        CoercionId(id as u32)
    }

    /// Appends a composition pair known to be absent (writer lock
    /// held, or slab not yet shared).
    fn append_pair(&self, key: (CoercionId, CoercionId), result: CoercionId) {
        let row = self.pairs.push((key, result));
        self.pair_index
            .insert(self.hasher.hash_one(key), row as u32);
    }
}

/// Maps a freezing overlay's id into slab coordinates: base ids are
/// already slab ids; local ids go through the remap table built as
/// the overlay's nodes are appended.
fn map_id(id: CoercionId, base_len: usize, remap: &[CoercionId]) -> CoercionId {
    let i = id.index();
    if i < base_len {
        id
    } else {
        remap[i - base_len]
    }
}

/// [`map_id`] pushed through a node's structure (only
/// [`GNode::Fun`] holds child ids).
fn map_node(node: SNode, base_len: usize, remap: &[CoercionId]) -> SNode {
    let mg = |g: GNode| match g {
        GNode::Fun(s, t) => GNode::Fun(map_id(s, base_len, remap), map_id(t, base_len, remap)),
        leaf => leaf,
    };
    let mi = |i: INode| match i {
        INode::Inj(g, ground) => INode::Inj(mg(g), ground),
        INode::Ground(g) => INode::Ground(mg(g)),
        fail => fail,
    };
    match node {
        SNode::IdDyn => SNode::IdDyn,
        SNode::Proj(g, p, i) => SNode::Proj(g, p, mi(i)),
        SNode::Mid(i) => SNode::Mid(mi(i)),
    }
}

/// A frozen, read-only view of a [`CoercionArena`] *and* the
/// composition pairs its [`ComposeCache`] had memoized — the shared
/// base tier of the two-tier interning scheme.
///
/// A view is a pair of **watermarks** (nodes, pair rows) over an
/// append-only concurrent slab. Freezing a flat arena
/// ([`CoercionArena::freeze`]) builds a fresh slab; freezing an
/// *overlay* **appends** its genuinely new nodes and pairs to the
/// base's slab — O(overlay), not O(base) — so the result
/// [`extends`](FrozenCoercions::extends) the base by construction and
/// superseded views stay valid forever. `Send + Sync`; readers below
/// the watermark are wait-free.
///
/// # Id-offset contract
///
/// Ids `0..len()` denote frozen nodes and mean the same coercion in
/// every overlay over this base; overlay-local ids (`>= len()`) are
/// private to the overlay that minted them. Every frozen compose pair
/// maps base ids to a base id (compositions were interned before the
/// freeze), so the pair table is sound in every overlay.
#[derive(Clone)]
pub struct FrozenCoercions {
    slab: Arc<CoercionSlab>,
    /// Nodes visible to this view: slab ids `0..nodes_mark`.
    nodes_mark: usize,
    /// Pair rows visible to this view: rows `0..pairs_mark`.
    pairs_mark: usize,
    /// Slab node count when this view's freeze began appending (zero
    /// for a flat build); see [`FrozenCoercions::contiguous_over`].
    appended_from: usize,
}

impl fmt::Debug for FrozenCoercions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenCoercions")
            .field("nodes", &self.nodes_mark)
            .field("pairs", &self.pairs_mark)
            .finish()
    }
}

impl FrozenCoercions {
    /// Number of frozen coercion nodes (the id offset of every
    /// overlay built over this base).
    pub fn len(&self) -> usize {
        self.nodes_mark
    }

    /// Whether the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes_mark == 0
    }

    /// Number of frozen composition pairs.
    pub fn pairs_len(&self) -> usize {
        self.pairs_mark
    }

    /// Whether this snapshot *extends* `other`: every node of `other`
    /// appears here, at the same id — the id-stability condition for
    /// hot-swapping one base for another. Freezing an overlay appends
    /// to its base's slab and never re-assigns ids, so a re-frozen
    /// overlay extends its base **by construction** and the check is
    /// O(1) (same slab, watermarks at least as high). Views over
    /// different slabs never extend each other.
    pub fn extends(&self, other: &FrozenCoercions) -> bool {
        Arc::ptr_eq(&self.slab, &other.slab)
            && other.nodes_mark <= self.nodes_mark
            && other.pairs_mark <= self.pairs_mark
    }

    /// Whether this view's freeze appended *contiguously* over
    /// `other` (same slab, no sibling freeze in between): when true,
    /// the freezing overlay's local ids were assigned verbatim, so
    /// ids minted by the frozen session stay valid against this view.
    /// See `FrozenTypes::contiguous_over` in `bc_syntax` for the full
    /// contract; the pool's serialized promotions always satisfy it.
    pub fn contiguous_over(&self, other: &FrozenCoercions) -> bool {
        Arc::ptr_eq(&self.slab, &other.slab) && self.appended_from == other.nodes_mark
    }

    /// The node behind a visible id (callers stay below `len()`).
    fn node_at(&self, i: usize) -> SNode {
        debug_assert!(i < self.nodes_mark, "read past the view watermark");
        *self.slab.nodes.get(i)
    }

    /// The metadata behind a visible id.
    fn meta_at(&self, i: usize) -> NodeMeta {
        debug_assert!(i < self.nodes_mark, "read past the view watermark");
        *self.slab.meta.get(i)
    }

    /// Hash-cons probe filtered to this view's watermark: nodes that
    /// only exist above it (appended by later freezes) read as absent,
    /// so over-watermark slab ids never leak into sessions keyed to
    /// this view.
    fn lookup_node(&self, node: &SNode) -> Option<CoercionId> {
        self.slab.probe_node(node, self.nodes_mark)
    }

    /// Composition-pair probe filtered to this view's watermark.
    fn lookup_pair(&self, key: &(CoercionId, CoercionId)) -> Option<CoercionId> {
        self.slab.probe_pair(key, self.pairs_mark)
    }
}

/// A hash-consing interner for λS coercions.
///
/// See the [module docs](self) for the interning invariants.
#[derive(Debug)]
pub struct CoercionArena {
    /// The frozen base tier, when this arena is an overlay (see
    /// [`FrozenCoercions`]); `None` for a flat arena.
    base: Option<Arc<FrozenCoercions>>,
    /// `base.len()`, cached (zero for a flat arena): the id offset of
    /// the local tier.
    base_len: usize,
    /// Local (overlay) nodes; global id = `base_len` + local index.
    nodes: Vec<SNode>,
    meta: Vec<NodeMeta>,
    /// The hash-consing index of the *local* tier (the base has its
    /// own frozen index, probed first). Fx-hashed: keys are small
    /// `Copy` nodes (discriminants plus ids), so hashing must not
    /// dominate the probe.
    index: HashMap<SNode, CoercionId, bc_syntax::FxBuildHasher>,
    stats: ArenaStats,
    /// Identity of this id-space, used to catch a [`ComposeCache`]
    /// being replayed against an arena it was not built with. A clone
    /// starts as an identical snapshot but may diverge (intern
    /// different nodes), so it gets a *fresh* generation; clone an
    /// arena together with its cache via [`CoercionArena::clone_pair`].
    generation: u64,
}

impl Clone for CoercionArena {
    fn clone(&self) -> CoercionArena {
        CoercionArena {
            base: self.base.clone(),
            base_len: self.base_len,
            nodes: self.nodes.clone(),
            meta: self.meta.clone(),
            index: self.index.clone(),
            stats: self.stats,
            // Fresh identity: the clone's id-space diverges from the
            // original as soon as either side interns something new,
            // so caches must not flow between them.
            generation: next_generation(),
        }
    }
}

fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_GENERATION: AtomicU64 = AtomicU64::new(0);
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

impl Default for CoercionArena {
    fn default() -> CoercionArena {
        CoercionArena {
            base: None,
            base_len: 0,
            nodes: Vec::new(),
            meta: Vec::new(),
            index: HashMap::default(),
            stats: ArenaStats::default(),
            generation: next_generation(),
        }
    }
}

/// Hit/miss/eviction counters of a [`ComposeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Compositions answered from the cache (either tier).
    pub hits: u64,
    /// Compositions computed structurally (then cached).
    pub misses: u64,
    /// Memoized pairs evicted by the second-chance policy.
    pub evictions: u64,
    /// The subset of [`CacheStats::hits`] answered by the frozen base
    /// tier's pair table (always zero for a cache without a base).
    pub base_hits: u64,
}

/// A memo table for interned composition, keyed on the id pair, with
/// size-capped **second-chance eviction**.
///
/// Kept separate from the arena so callers control its lifetime (e.g.
/// one cache per machine run, or one long-lived cache per compiled
/// program).
///
/// # Eviction
///
/// The cache holds at most [`ComposeCache::capacity`] pairs (default
/// [`ComposeCache::DEFAULT_CAPACITY`]), evicted by the shared
/// second-chance [`ClockMap`] (the same engine behind the
/// `TypeArena` verdict tables). Program coercions have bounded height
/// and therefore bounded distinct pairs, so steady-state workloads
/// never evict; the cap exists for long-lived multi-tenant servers
/// interning adversarial inputs, where the working set must not grow
/// without bound. Eviction is *safe*: a dropped pair is simply
/// recomputed (and re-cached) on next use.
///
/// A cache binds to the first arena it is used with: replaying it
/// against a *different* arena would answer lookups with ids from the
/// wrong id-space (silently wrong coercions), so
/// [`CoercionArena::compose`] panics on the mismatch instead.
#[derive(Debug, Clone)]
pub struct ComposeCache {
    /// The frozen pair table of the base tier, when this cache backs
    /// an overlay arena; consulted before the local clock. Must be
    /// the same snapshot the arena was built over (checked on every
    /// [`CoercionArena::compose`]).
    base: Option<Arc<FrozenCoercions>>,
    /// Memoized pairs behind the shared second-chance eviction engine.
    pairs: ClockMap<(CoercionId, CoercionId), CoercionId>,
    stats: CacheStats,
    /// Generation of the arena this cache's ids belong to (bound on
    /// first use).
    owner: Option<u64>,
}

impl Default for ComposeCache {
    fn default() -> ComposeCache {
        ComposeCache::with_capacity(ComposeCache::DEFAULT_CAPACITY)
    }
}

impl ComposeCache {
    /// The default pair cap: far above any bounded-height program's
    /// working set (which the λS space theorem keeps small), yet a
    /// hard ceiling on a server interning unboundedly many tenants.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// An empty cache with the default capacity.
    pub fn new() -> ComposeCache {
        ComposeCache::default()
    }

    /// An empty cache holding at most `capacity` memoized pairs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a cache that cannot hold a single
    /// pair would make every composition a miss *and* an eviction).
    pub fn with_capacity(capacity: usize) -> ComposeCache {
        assert!(capacity > 0, "ComposeCache capacity must be at least 1");
        ComposeCache {
            base: None,
            pairs: ClockMap::with_capacity(capacity),
            stats: CacheStats::default(),
            owner: None,
        }
    }

    /// An empty cache layered over a frozen base: compositions the
    /// base had memoized are answered from its (shared, read-only)
    /// pair table; only new pairs occupy the local, size-capped
    /// clock. Use together with an arena built by
    /// [`CoercionArena::with_base`] over the *same* snapshot —
    /// [`CoercionArena::compose`] checks the pairing.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_base(base: Arc<FrozenCoercions>, capacity: usize) -> ComposeCache {
        let mut cache = ComposeCache::with_capacity(capacity);
        cache.base = Some(base);
        cache
    }

    /// The maximum number of memoized pairs.
    pub fn capacity(&self) -> usize {
        self.pairs.capacity()
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Hit/miss/eviction counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            evictions: self.pairs.evictions(),
            ..self.stats
        }
    }

    /// Looks up a memoized pair, marking it recently used.
    fn lookup(&mut self, key: (CoercionId, CoercionId)) -> Option<CoercionId> {
        self.pairs.lookup(&key)
    }

    /// Inserts a freshly computed pair, evicting per second-chance if
    /// the cache is full (see [`ClockMap::insert`] for the admission
    /// and recursive-reinsert subtleties).
    fn insert(&mut self, key: (CoercionId, CoercionId), result: CoercionId) {
        self.pairs.insert(key, result);
    }
}

impl CoercionArena {
    /// An empty arena.
    pub fn new() -> CoercionArena {
        CoercionArena::default()
    }

    /// An overlay arena over a frozen base (fresh generation): every
    /// intern consults the shared, read-only base first and stores
    /// only genuinely new nodes locally, with ids offset past the
    /// base (see [`FrozenCoercions`] for the id-offset contract).
    /// Pair it with a cache from [`ComposeCache::with_base`] over the
    /// same snapshot.
    pub fn with_base(base: Arc<FrozenCoercions>) -> CoercionArena {
        let base_len = base.len();
        CoercionArena {
            base: Some(base),
            base_len,
            ..CoercionArena::default()
        }
    }

    /// Freezes the arena's nodes, metadata, and index — together with
    /// every composition pair `cache` has memoized — into an
    /// immutable, thread-shareable view.
    ///
    /// A flat arena builds a fresh slab. An **overlay** arena
    /// *appends* its genuinely new rows to its base's slab —
    /// O(overlay), regardless of base size — and returns a view with
    /// higher watermarks; the result
    /// [`extends`](FrozenCoercions::extends) the base by construction.
    /// Appenders over one slab serialize on its writer lock; a freeze
    /// racing a sibling's dedups against the sibling's rows. For a
    /// freeze into fresh, independent storage see
    /// [`CoercionArena::freeze_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `cache` is bound to a *different* arena (its pairs
    /// would freeze foreign ids into the snapshot).
    pub fn freeze(&self, cache: &ComposeCache) -> FrozenCoercions {
        self.assert_cache_owner(cache, "freeze");
        match &self.base {
            None => self.freeze_flat(cache),
            Some(base) => self.freeze_append(base, cache),
        }
    }

    /// Freezes into a **fresh, independent slab**, flattening both
    /// tiers with ids preserved verbatim — the clone-on-promote
    /// semantics the append path replaced: O(base + overlay), no
    /// sharing with the base's lineage. The oracle the append path is
    /// property-tested against.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is bound to a different arena.
    pub fn freeze_flat(&self, cache: &ComposeCache) -> FrozenCoercions {
        self.assert_cache_owner(cache, "freeze_flat");
        let slab = CoercionSlab::new();
        if let Some(base) = &self.base {
            for i in 0..base.nodes_mark {
                slab.append_node(base.node_at(i), base.meta_at(i));
            }
            for row in 0..base.pairs_mark {
                let (key, result) = *base.slab.pairs.get(row);
                slab.append_pair(key, result);
            }
        }
        for (k, node) in self.nodes.iter().enumerate() {
            let id = slab.append_node(*node, self.meta[k]);
            debug_assert_eq!(
                id.index(),
                self.base_len + k,
                "flat freeze re-assigned an id"
            );
        }
        // Local cache pairs are disjoint from the copied base rows: a
        // base-answered composition returns before it can be cached
        // locally.
        for (&key, &result) in cache.pairs.iter() {
            debug_assert!(slab.probe_pair(&key, usize::MAX).is_none());
            slab.append_pair(key, result);
        }
        let nodes_mark = slab.nodes.len();
        let pairs_mark = slab.pairs.len();
        FrozenCoercions {
            slab: Arc::new(slab),
            nodes_mark,
            pairs_mark,
            appended_from: 0,
        }
    }

    /// The O(overlay) freeze: appends local nodes and memoized pairs
    /// to the base's slab under its writer lock. Local ids append
    /// verbatim when no sibling froze first (the promotion path);
    /// otherwise they are remapped bottom-up (children precede
    /// parents in the local tier) and deduped against sibling rows.
    fn freeze_append(&self, base: &FrozenCoercions, cache: &ComposeCache) -> FrozenCoercions {
        let slab = &base.slab;
        let _writer = slab
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let appended_from = slab.nodes.len();
        let mut remap: Vec<CoercionId> = Vec::with_capacity(self.nodes.len());
        for (k, node) in self.nodes.iter().enumerate() {
            let mapped = map_node(*node, self.base_len, &remap);
            // Writer-side probe: unfiltered, so sibling-appended rows
            // above our base watermark dedup instead of duplicating.
            let id = match slab.probe_node(&mapped, usize::MAX) {
                Some(id) => id,
                // Metadata is id-free (heights and sizes), so the
                // session's copy is valid for the remapped node.
                None => slab.append_node(mapped, self.meta[k]),
            };
            remap.push(id);
        }
        for (&(a, b), &r) in cache.pairs.iter() {
            let key = (
                map_id(a, self.base_len, &remap),
                map_id(b, self.base_len, &remap),
            );
            let result = map_id(r, self.base_len, &remap);
            match slab.probe_pair(&key, usize::MAX) {
                // Hash-consing makes the composite's id a function of
                // the operands' structure, so a sibling's row for the
                // same pair must agree.
                Some(prev) => debug_assert_eq!(
                    prev, result,
                    "conflicting composition for {key:?}: composition is pure"
                ),
                None => slab.append_pair(key, result),
            }
        }
        FrozenCoercions {
            slab: Arc::clone(&base.slab),
            nodes_mark: slab.nodes.len(),
            pairs_mark: slab.pairs.len(),
            appended_from,
        }
    }

    /// The shared owner guard of the freeze entry points.
    fn assert_cache_owner(&self, cache: &ComposeCache, what: &str) {
        assert!(
            cache.owner.is_none() || cache.owner == Some(self.generation),
            "CoercionArena::{what} called with a ComposeCache bound to a different arena"
        );
    }

    /// Number of nodes in the frozen base tier (zero for a flat
    /// arena).
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of nodes interned *locally*, past the base tier. For an
    /// overlay serving inputs the base was warmed on, this staying at
    /// zero is the base-sharing guarantee.
    pub fn local_len(&self) -> usize {
        self.nodes.len()
    }

    /// The frozen base view this arena overlays (`None` for a flat
    /// arena). Compare a fresh [`CoercionArena::freeze`] result
    /// against it with [`FrozenCoercions::contiguous_over`] to learn
    /// whether the freeze appended this arena's local ids verbatim.
    pub fn base_view(&self) -> Option<&Arc<FrozenCoercions>> {
        self.base.as_ref()
    }

    /// Clones this arena *together with* a cache bound to it,
    /// re-binding the cloned cache to the clone's fresh generation.
    /// This is the only supported way to duplicate a warm arena+cache
    /// pair: cloning them separately yields a pair that panics on
    /// first use (the clone has a new generation, precisely so a
    /// cache can never be replayed across diverged clones).
    ///
    /// # Panics
    ///
    /// Panics if the cache is already bound to a *different* arena —
    /// re-binding it here would launder foreign ids past the
    /// generation guard.
    pub fn clone_pair(&self, cache: &ComposeCache) -> (CoercionArena, ComposeCache) {
        assert!(
            cache.owner.is_none() || cache.owner == Some(self.generation),
            "clone_pair called with a ComposeCache bound to a different CoercionArena"
        );
        let arena = self.clone();
        let mut cache = cache.clone();
        if cache.owner.is_some() {
            cache.owner = Some(arena.generation);
        }
        (arena, cache)
    }

    /// Number of distinct coercions interned (both tiers).
    pub fn len(&self) -> usize {
        self.base_len + self.nodes.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interning and reuse counters so far.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.len(),
            ..self.stats
        }
    }

    /// Interns a node whose children are already interned, returning
    /// the id of the unique stored copy — from the frozen base when
    /// the node is already there, locally otherwise.
    pub fn intern_node(&mut self, node: SNode) -> CoercionId {
        if let Some(base) = &self.base {
            if let Some(id) = base.lookup_node(&node) {
                self.stats.node_hits += 1;
                self.stats.base_hits += 1;
                return id;
            }
        }
        if let Some(&id) = self.index.get(&node) {
            self.stats.node_hits += 1;
            return id;
        }
        self.stats.node_misses += 1;
        let id = CoercionId(
            u32::try_from(self.base_len + self.nodes.len())
                .expect("more than u32::MAX distinct coercions"),
        );
        let meta = self.compute_meta(&node);
        self.nodes.push(node);
        self.meta.push(meta);
        self.index.insert(node, id);
        id
    }

    /// Per-node metadata across both tiers.
    fn meta_of(&self, id: CoercionId) -> NodeMeta {
        let i = id.index();
        if i < self.base_len {
            self.base
                .as_ref()
                .expect("base ids imply a base")
                .meta_at(i)
        } else {
            self.meta[i - self.base_len]
        }
    }

    fn compute_meta(&self, node: &SNode) -> NodeMeta {
        let imeta = |i: &INode| -> NodeMeta {
            let gmeta = |g: &GNode| -> NodeMeta {
                match g {
                    GNode::IdBase(_) => NodeMeta { height: 1, size: 1 },
                    GNode::Fun(s, t) => {
                        let (ms, mt) = (self.meta_of(*s), self.meta_of(*t));
                        NodeMeta {
                            height: ms.height.max(mt.height).saturating_add(1),
                            size: ms.size.saturating_add(mt.size).saturating_add(1),
                        }
                    }
                }
            };
            match i {
                INode::Inj(g, _) => {
                    let m = gmeta(g);
                    NodeMeta {
                        height: m.height,
                        size: m.size.saturating_add(1),
                    }
                }
                INode::Ground(g) => gmeta(g),
                INode::Fail(_, _, _) => NodeMeta { height: 1, size: 1 },
            }
        };
        match node {
            SNode::IdDyn => NodeMeta { height: 1, size: 1 },
            SNode::Proj(_, _, i) => {
                let m = imeta(i);
                NodeMeta {
                    height: m.height,
                    size: m.size.saturating_add(1),
                }
            }
            SNode::Mid(i) => imeta(i),
        }
    }

    /// Interns a tree coercion (recursively interning function
    /// children), returning its canonical id.
    pub fn intern(&mut self, s: &SpaceCoercion) -> CoercionId {
        self.stats.tree_interns += 1;
        let node = match s {
            SpaceCoercion::IdDyn => SNode::IdDyn,
            SpaceCoercion::Proj(g, p, i) => SNode::Proj(*g, *p, self.intern_intermediate(i)),
            SpaceCoercion::Mid(i) => SNode::Mid(self.intern_intermediate(i)),
        };
        self.intern_node(node)
    }

    fn intern_intermediate(&mut self, i: &Intermediate) -> INode {
        match i {
            Intermediate::Inj(g, ground) => INode::Inj(self.intern_ground(g), *ground),
            Intermediate::Ground(g) => INode::Ground(self.intern_ground(g)),
            Intermediate::Fail(g, p, h) => INode::Fail(*g, *p, *h),
        }
    }

    fn intern_ground(&mut self, g: &GroundCoercion) -> GNode {
        match g {
            GroundCoercion::IdBase(b) => GNode::IdBase(*b),
            GroundCoercion::Fun(s, t) => GNode::Fun(self.intern(s), self.intern(t)),
        }
    }

    /// A shallow view of the interned node (children remain ids),
    /// consulting the frozen base tier for ids below the offset.
    ///
    /// # Panics
    ///
    /// Panics if the id came from a different arena and is out of
    /// bounds (ids are only meaningful within their own arena).
    pub fn node(&self, id: CoercionId) -> SNode {
        let i = id.index();
        if i < self.base_len {
            self.base
                .as_ref()
                .expect("base ids imply a base")
                .node_at(i)
        } else {
            self.nodes[i - self.base_len]
        }
    }

    /// Rebuilds the tree form of an interned coercion (the exchange
    /// format; see invariant 2: `resolve ∘ intern = id`).
    pub fn resolve(&self, id: CoercionId) -> SpaceCoercion {
        match self.node(id) {
            SNode::IdDyn => SpaceCoercion::IdDyn,
            SNode::Proj(g, p, i) => SpaceCoercion::Proj(g, p, self.resolve_intermediate(i)),
            SNode::Mid(i) => SpaceCoercion::Mid(self.resolve_intermediate(i)),
        }
    }

    fn resolve_intermediate(&self, i: INode) -> Intermediate {
        match i {
            INode::Inj(g, ground) => Intermediate::Inj(self.resolve_ground(g), ground),
            INode::Ground(g) => Intermediate::Ground(self.resolve_ground(g)),
            INode::Fail(g, p, h) => Intermediate::Fail(g, p, h),
        }
    }

    fn resolve_ground(&self, g: GNode) -> GroundCoercion {
        match g {
            GNode::IdBase(b) => GroundCoercion::IdBase(b),
            GNode::Fun(s, t) => {
                GroundCoercion::Fun(Rc::new(self.resolve(s)), Rc::new(self.resolve(t)))
            }
        }
    }

    // ------------------------------------------------------------------
    // Constructors (the canonical-form smart constructors, interned).
    // ------------------------------------------------------------------

    /// `id?`.
    pub fn id_dyn(&mut self) -> CoercionId {
        self.intern_node(SNode::IdDyn)
    }

    /// `idι`.
    pub fn id_base(&mut self, b: BaseType) -> CoercionId {
        self.intern_node(SNode::Mid(INode::Ground(GNode::IdBase(b))))
    }

    /// The canonical identity at an arbitrary type (`id?`, `idι`, or
    /// `id_A → id_B`).
    pub fn id(&mut self, ty: &Type) -> CoercionId {
        match ty {
            Type::Dyn => self.id_dyn(),
            Type::Base(b) => self.id_base(*b),
            Type::Fun(a, b) => {
                let dom = self.id(a);
                let cod = self.id(b);
                self.fun(dom, cod)
            }
        }
    }

    /// [`CoercionArena::id`] on an interned type: the canonical
    /// identity coercion computed directly from [`TNode`]s, with no
    /// type tree in sight.
    pub fn id_interned(&mut self, ty: TypeId, types: &TypeArena) -> CoercionId {
        match types.node(ty) {
            TNode::Dyn => self.id_dyn(),
            TNode::Base(b) => self.id_base(b),
            TNode::Fun(a, b) => {
                let dom = self.id_interned(a, types);
                let cod = self.id_interned(b, types);
                self.fun(dom, cod)
            }
        }
    }

    /// `s → t` from interned children.
    pub fn fun(&mut self, dom: CoercionId, cod: CoercionId) -> CoercionId {
        self.intern_node(SNode::Mid(INode::Ground(GNode::Fun(dom, cod))))
    }

    /// The normalised injection `|G!| = idG ; G!`.
    pub fn inj_ground(&mut self, g: Ground) -> CoercionId {
        let idg = self.ground_identity(g);
        self.intern_node(SNode::Mid(INode::Inj(idg, g)))
    }

    /// The normalised projection `|G?p| = G?p ; idG`.
    pub fn proj_ground(&mut self, g: Ground, p: Label) -> CoercionId {
        let idg = self.ground_identity(g);
        self.intern_node(SNode::Proj(g, p, INode::Ground(idg)))
    }

    /// `⊥GpH`.
    ///
    /// # Panics
    ///
    /// Panics if `G = H` (no failure between equal grounds).
    pub fn fail(&mut self, g: Ground, p: Label, h: Ground) -> CoercionId {
        assert_ne!(g, h, "⊥GpH requires G ≠ H");
        self.intern_node(SNode::Mid(INode::Fail(g, p, h)))
    }

    fn ground_identity(&mut self, g: Ground) -> GNode {
        match g {
            Ground::Base(b) => GNode::IdBase(b),
            Ground::Fun => {
                let d = self.id_dyn();
                GNode::Fun(d, d)
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-node queries (O(1) where precomputed).
    // ------------------------------------------------------------------

    /// The height `‖s‖` (precomputed; O(1)).
    pub fn height(&self, id: CoercionId) -> usize {
        self.meta_of(id).height as usize
    }

    /// The number of syntax nodes of the coercion's tree form
    /// (precomputed; O(1)). Saturates at `usize::MAX` for DAG-shaped
    /// coercions whose implicit tree would not fit in memory.
    pub fn size(&self, id: CoercionId) -> usize {
        usize::try_from(self.meta_of(id).size).unwrap_or(usize::MAX)
    }

    /// Whether the coercion is `id?` or `idι`.
    pub fn is_identity(&self, id: CoercionId) -> bool {
        matches!(
            self.node(id),
            SNode::IdDyn | SNode::Mid(INode::Ground(GNode::IdBase(_)))
        )
    }

    /// Whether the interned coercion is safe for `q` (mentions no
    /// label equal to `q`), without rebuilding the tree.
    pub fn safe_for(&self, id: CoercionId, q: Label) -> bool {
        let gsafe = |g: GNode| match g {
            GNode::IdBase(_) => true,
            GNode::Fun(s, t) => self.safe_for(s, q) && self.safe_for(t, q),
        };
        let isafe = |i: INode| match i {
            INode::Inj(g, _) => gsafe(g),
            INode::Ground(g) => gsafe(g),
            INode::Fail(_, p, _) => p != q,
        };
        match self.node(id) {
            SNode::IdDyn => true,
            SNode::Proj(_, p, i) => p != q && isafe(i),
            SNode::Mid(i) => isafe(i),
        }
    }

    // ------------------------------------------------------------------
    // Composition.
    // ------------------------------------------------------------------

    /// Composes two interned canonical coercions through the memo
    /// cache: `s # t` as a single hash lookup when the pair has been
    /// seen before, and the structural recursion of Figure 5 (caching
    /// every inner function-child composition too) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the coercions are not composable, exactly as
    /// [`crate::compose::compose`] does; this cannot happen for
    /// well-typed terms.
    pub fn compose(
        &mut self,
        cache: &mut ComposeCache,
        a: CoercionId,
        b: CoercionId,
    ) -> CoercionId {
        // The frozen tiers must be the very same snapshot: a cache
        // carrying base pairs from a different base would answer with
        // ids from the wrong id-space.
        let bases_agree = match (&self.base, &cache.base) {
            (None, None) => true,
            (Some(mine), Some(theirs)) => Arc::ptr_eq(mine, theirs),
            _ => false,
        };
        assert!(
            bases_agree,
            "ComposeCache and CoercionArena disagree about their frozen base: \
             build both over the same Arc<FrozenCoercions>"
        );
        match cache.owner {
            None => cache.owner = Some(self.generation),
            Some(owner) => assert_eq!(
                owner, self.generation,
                "ComposeCache replayed against a different CoercionArena: \
                 cached ids belong to another id-space"
            ),
        }
        if let Some(base) = &cache.base {
            if let Some(r) = base.lookup_pair(&(a, b)) {
                cache.stats.hits += 1;
                cache.stats.base_hits += 1;
                return r;
            }
        }
        if let Some(r) = cache.lookup((a, b)) {
            cache.stats.hits += 1;
            return r;
        }
        cache.stats.misses += 1;
        let r = match self.node(a) {
            // id? # t = t
            SNode::IdDyn => b,
            // (G?p ; i) # t = G?p ; (i # t)
            SNode::Proj(g, p, i) => {
                let i2 = self.compose_intermediate(cache, i, b);
                self.intern_node(SNode::Proj(g, p, i2))
            }
            SNode::Mid(i) => {
                let i2 = self.compose_intermediate(cache, i, b);
                self.intern_node(SNode::Mid(i2))
            }
        };
        cache.insert((a, b), r);
        r
    }

    fn compose_intermediate(&mut self, cache: &mut ComposeCache, i: INode, t: CoercionId) -> INode {
        match i {
            // ⊥GpH # s = ⊥GpH
            INode::Fail(_, _, _) => i,
            INode::Inj(g, ground) => match self.node(t) {
                // (g ; G!) # id? = g ; G!
                SNode::IdDyn => INode::Inj(g, ground),
                SNode::Proj(ground2, p, i2) => {
                    if ground == ground2 {
                        // (g ; G!) # (G?p ; i) = g # i
                        self.compose_ground_intermediate(cache, g, i2)
                    } else {
                        // (g ; G!) # (H?p ; i) = ⊥GpH   (G ≠ H)
                        INode::Fail(ground, p, ground2)
                    }
                }
                SNode::Mid(_) => {
                    unreachable!("(g ; G!) targets ?, but the right operand does not accept ?")
                }
            },
            INode::Ground(g) => match self.node(t) {
                SNode::Mid(i2) => self.compose_ground_intermediate(cache, g, i2),
                SNode::IdDyn | SNode::Proj(_, _, _) => {
                    unreachable!(
                        "ground coercion targets a non-? type, but the right operand accepts ?"
                    )
                }
            },
        }
    }

    fn compose_ground_intermediate(
        &mut self,
        cache: &mut ComposeCache,
        g: GNode,
        i: INode,
    ) -> INode {
        match i {
            // g # (h ; H!) = (g # h) ; H!
            INode::Inj(h, ground) => INode::Inj(self.compose_ground(cache, g, h), ground),
            INode::Ground(h) => INode::Ground(self.compose_ground(cache, g, h)),
            // g # ⊥GpH = ⊥GpH
            INode::Fail(_, _, _) => i,
        }
    }

    fn compose_ground(&mut self, cache: &mut ComposeCache, g: GNode, h: GNode) -> GNode {
        match (g, h) {
            // idι # idι = idι
            (GNode::IdBase(a), GNode::IdBase(b)) => {
                debug_assert_eq!(a, b, "composed identities at different base types");
                GNode::IdBase(a)
            }
            // (s → t) # (s' → t') = (s' # s) → (t # t')
            (GNode::Fun(s, t), GNode::Fun(s2, t2)) => {
                let dom = self.compose(cache, s2, s);
                let cod = self.compose(cache, t, t2);
                GNode::Fun(dom, cod)
            }
            _ => unreachable!("composed a base identity with a function coercion"),
        }
    }

    /// Composes two tree coercions through the arena: intern, cached
    /// compose, resolve. Used by callers that keep trees at rest but
    /// want memoized merging (e.g. the λS small-step `run` loop).
    pub fn compose_trees(
        &mut self,
        cache: &mut ComposeCache,
        s: &SpaceCoercion,
        t: &SpaceCoercion,
    ) -> SpaceCoercion {
        let a = self.intern(s);
        let b = self.intern(t);
        let r = self.compose(cache, a, b);
        self.resolve(r)
    }

    /// Renders an interned coercion in the paper grammar.
    pub fn display(&self, id: CoercionId) -> String {
        self.resolve(id).to_string()
    }
}

/// An arena paired with its compose cache — the state a single
/// evaluation thread carries around.
#[derive(Debug, Default)]
pub struct MergeCtx {
    /// The interner.
    pub arena: CoercionArena,
    /// The memoized composition table.
    pub cache: ComposeCache,
}

impl Clone for MergeCtx {
    fn clone(&self) -> MergeCtx {
        let (arena, cache) = self.arena.clone_pair(&self.cache);
        MergeCtx { arena, cache }
    }
}

impl MergeCtx {
    /// An empty context.
    pub fn new() -> MergeCtx {
        MergeCtx::default()
    }

    /// Memoized `s # t` on trees (see
    /// [`CoercionArena::compose_trees`]).
    pub fn merge(&mut self, s: &SpaceCoercion, t: &SpaceCoercion) -> SpaceCoercion {
        self.arena.compose_trees(&mut self.cache, s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose;

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }
    fn id_int() -> GroundCoercion {
        GroundCoercion::IdBase(BaseType::Int)
    }

    fn samples() -> Vec<SpaceCoercion> {
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        vec![
            SpaceCoercion::IdDyn,
            SpaceCoercion::id_base(BaseType::Int),
            inj.clone(),
            proj.clone(),
            SpaceCoercion::fun(inj.clone(), proj.clone()),
            SpaceCoercion::fun(
                SpaceCoercion::fun(proj.clone(), inj.clone()),
                SpaceCoercion::IdDyn,
            ),
            SpaceCoercion::fail(gi(), p(3), gb()),
            SpaceCoercion::proj(gi(), p(1), Intermediate::Fail(gi(), p(2), gb())),
        ]
    }

    #[test]
    fn interning_is_canonical() {
        let mut arena = CoercionArena::new();
        for s in samples() {
            let a = arena.intern(&s);
            let b = arena.intern(&s);
            assert_eq!(a, b, "same tree must intern to same id: {s}");
            assert_eq!(arena.resolve(a), s, "round trip of {s}");
        }
        // Distinct trees intern to distinct ids.
        let ids: Vec<_> = samples().iter().map(|s| arena.intern(s)).collect();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn structural_sharing_dedups_children() {
        let mut arena = CoercionArena::new();
        // (id? → id?) and id? share the id? node.
        let f = SpaceCoercion::fun(SpaceCoercion::IdDyn, SpaceCoercion::IdDyn);
        arena.intern(&f);
        let n = arena.len();
        arena.intern(&SpaceCoercion::IdDyn);
        assert_eq!(arena.len(), n, "id? was already interned as a child");
    }

    #[test]
    fn metadata_matches_tree_queries() {
        let mut arena = CoercionArena::new();
        for s in samples() {
            let id = arena.intern(&s);
            assert_eq!(arena.height(id), s.height(), "height of {s}");
            assert_eq!(arena.size(id), s.size(), "size of {s}");
            assert_eq!(arena.is_identity(id), s.is_identity(), "identity of {s}");
            for q in [p(0), p(1), p(2), p(3), p(2).complement()] {
                assert_eq!(
                    arena.safe_for(id, q),
                    s.safe_for(q),
                    "safety of {s} for {q}"
                );
            }
        }
    }

    #[test]
    fn interned_compose_agrees_with_tree_compose() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let pairs = [
            (SpaceCoercion::IdDyn, proj.clone()),
            (inj.clone(), SpaceCoercion::IdDyn),
            (inj.clone(), proj.clone()),
            (
                SpaceCoercion::fun(inj.clone(), inj.clone()),
                SpaceCoercion::fun(proj.clone(), proj.clone()),
            ),
            (
                SpaceCoercion::fail(gi(), p(2), gb()),
                SpaceCoercion::id_base(BaseType::Bool),
            ),
        ];
        for (s, t) in &pairs {
            let a = arena.intern(s);
            let b = arena.intern(t);
            let ab = arena.compose(&mut cache, a, b);
            assert_eq!(
                arena.resolve(ab),
                compose(s, t),
                "interned compose of {s} # {t}"
            );
        }
    }

    #[test]
    fn compose_results_are_themselves_interned() {
        // The composite's id must be the same id interning the tree
        // composite yields — no duplicate storage.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let a = arena.intern(&inj);
        let b = arena.intern(&proj);
        let ab = arena.compose(&mut cache, a, b);
        assert_eq!(ab, arena.intern(&compose(&inj, &proj)));
    }

    #[test]
    fn cache_memoizes_pairs() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let a = arena.intern(&SpaceCoercion::inj(id_int(), gi()));
        let b = arena.intern(&SpaceCoercion::proj(
            gi(),
            p(0),
            Intermediate::Ground(id_int()),
        ));
        let r1 = arena.compose(&mut cache, a, b);
        let misses = cache.stats().misses;
        let r2 = arena.compose(&mut cache, a, b);
        assert_eq!(r1, r2);
        assert_eq!(
            cache.stats().misses,
            misses,
            "second call must not recompute"
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), misses as usize);
    }

    #[test]
    #[should_panic(expected = "different CoercionArena")]
    fn cache_rejects_a_foreign_arena() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let a = arena.intern(&SpaceCoercion::id_base(BaseType::Int));
        arena.compose(&mut cache, a, a);
        // A fresh arena has a different id-space; replaying the warm
        // cache against it must fail loudly, not answer wrongly.
        let mut other = CoercionArena::new();
        let b = other.intern(&SpaceCoercion::id_base(BaseType::Int));
        other.compose(&mut cache, b, b);
    }

    #[test]
    fn clone_pair_keeps_the_cache_valid() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let a = arena.intern(&SpaceCoercion::id_base(BaseType::Int));
        let r = arena.compose(&mut cache, a, a);
        // Cloning through clone_pair re-binds the cache to the
        // clone's generation: the pair keeps working together.
        let (mut arena2, mut cache2) = arena.clone_pair(&cache);
        assert_eq!(arena2.compose(&mut cache2, a, a), r);
        assert_eq!(cache2.stats().hits, cache.stats().hits + 1);
    }

    #[test]
    #[should_panic(expected = "bound to a different CoercionArena")]
    fn clone_pair_rejects_a_foreign_cache() {
        // A cache bound to arena B must not be re-bindable onto a
        // clone of arena A — that would launder B's ids past the
        // generation guard.
        let mut a = CoercionArena::new();
        let mut b = CoercionArena::new();
        let mut cache_b = ComposeCache::new();
        let id = b.intern(&SpaceCoercion::id_base(BaseType::Int));
        b.compose(&mut cache_b, id, id);
        a.intern(&SpaceCoercion::IdDyn);
        let _ = a.clone_pair(&cache_b);
    }

    #[test]
    #[should_panic(expected = "different CoercionArena")]
    fn cache_rejects_a_diverged_clone() {
        // The scenario the generation guard exists for: clone the
        // arena but keep the original's cache. The clone may intern
        // different nodes, so its ids need not mean the same thing;
        // mixing must fail loudly instead of resolving wrongly.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let a = arena.intern(&SpaceCoercion::id_base(BaseType::Int));
        arena.compose(&mut cache, a, a);
        let mut clone = arena.clone();
        clone.compose(&mut cache, a, a);
    }

    #[test]
    fn dag_shaped_coercions_saturate_instead_of_overflowing() {
        // fun(x, x) doubles the implicit tree size each level; 80
        // levels is ~2^80 nodes, far beyond u64-tree territory for a
        // u32 but fine for saturating u64 metadata.
        let mut arena = CoercionArena::new();
        let mut x = arena.id_dyn();
        for _ in 0..80 {
            x = arena.fun(x, x);
        }
        assert!(arena.size(x) > 0);
        assert_eq!(arena.height(x), 81);
    }

    #[test]
    fn merge_ctx_composes_trees() {
        let mut ctx = MergeCtx::new();
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        assert_eq!(ctx.merge(&inj, &proj), compose(&inj, &proj));
        // Second merge of the same pair is answered by the cache.
        assert_eq!(ctx.merge(&inj, &proj), compose(&inj, &proj));
        assert!(ctx.cache.stats().hits >= 1);
    }

    #[test]
    fn constructors_match_normalisation() {
        let mut arena = CoercionArena::new();
        // |Int!| = idInt ; Int!
        let inj = arena.inj_ground(gi());
        assert_eq!(arena.resolve(inj), SpaceCoercion::inj(id_int(), gi()));
        // |G?p| = G?p ; idG
        let proj = arena.proj_ground(gi(), p(0));
        assert_eq!(
            arena.resolve(proj),
            SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()))
        );
        // id at a function type.
        let ii = Type::fun(Type::INT, Type::DYN);
        let idii = arena.id(&ii);
        assert_eq!(arena.resolve(idii), SpaceCoercion::id(&ii));
    }

    #[test]
    #[should_panic(expected = "⊥GpH requires G ≠ H")]
    fn fail_rejects_equal_grounds() {
        CoercionArena::new().fail(gi(), p(0), gi());
    }

    /// Builds a family of distinct identity coercions at increasingly
    /// nested function types (each composes with itself).
    fn distinct_ids(arena: &mut CoercionArena, n: usize) -> Vec<CoercionId> {
        let mut ty = Type::fun(Type::INT, Type::INT);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(arena.id(&ty));
            ty = Type::fun(ty, Type::INT);
        }
        out
    }

    #[test]
    fn second_chance_eviction_caps_the_cache() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::with_capacity(4);
        assert_eq!(cache.capacity(), 4);
        for id in distinct_ids(&mut arena, 12) {
            arena.compose(&mut cache, id, id);
        }
        assert!(cache.len() <= 4, "cache grew to {}", cache.len());
        assert!(
            cache.stats().evictions > 0,
            "filling past capacity must evict: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn eviction_is_safe_to_recompute() {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::with_capacity(2);
        let ids = distinct_ids(&mut arena, 10);
        let first = ids[0];
        let r = arena.compose(&mut cache, first, first);
        // Flush the cache with unrelated pairs…
        for id in &ids[1..] {
            arena.compose(&mut cache, *id, *id);
        }
        assert!(cache.stats().evictions > 0);
        // …then the evicted pair recomputes to the very same id.
        assert_eq!(arena.compose(&mut cache, first, first), r);
    }

    #[test]
    fn hot_pairs_mostly_survive_the_clock_sweep() {
        // Pairs chosen so each composition inserts exactly one cache
        // entry (no function recursion). A single reference bit gives
        // a hit-every-round pair a second chance at each inspection,
        // but not unconditional immunity (when every resident is
        // referenced, the sweep's wrap can still claim it): the
        // guarantee to test is that the hot pair is answered from the
        // cache for the overwhelming majority of its touches, not
        // recomputed per touch.
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::with_capacity(8);
        let inj = arena.inj_ground(gi());
        let hot_proj = arena.proj_ground(gi(), p(0));
        let rounds = 16u32;
        arena.compose(&mut cache, inj, hot_proj);
        for k in 1..=rounds {
            // Touch the hot pair between every insertion: its
            // reference bit keeps earning it second chances.
            arena.compose(&mut cache, inj, hot_proj);
            let proj = arena.proj_ground(gi(), p(k));
            arena.compose(&mut cache, inj, proj);
        }
        let stats = cache.stats();
        // Every cold pair is a miss (`rounds` of them, plus the first
        // hot compose); of the `rounds` hot touches, at most a couple
        // may fall to the wrap.
        let hot_misses = stats.misses - u64::from(rounds) - 1;
        assert!(
            hot_misses <= u64::from(rounds) / 4,
            "hot pair recomputed {hot_misses} times in {rounds} touches: {stats:?}"
        );
        assert!(stats.hits >= u64::from(rounds) - hot_misses);
        assert!(stats.evictions > 0, "cold pairs must have cycled");
    }

    #[test]
    fn new_pairs_are_admitted_to_a_hot_cache() {
        // Entries are inserted with their reference bit set, so even a
        // cache saturated with constantly-hit pairs admits a new pair
        // (it is not the sweep's immediate victim).
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::with_capacity(2);
        let inj = arena.inj_ground(gi());
        let hot1 = arena.proj_ground(gi(), p(0));
        let hot2 = arena.proj_ground(gi(), p(1));
        arena.compose(&mut cache, inj, hot1);
        arena.compose(&mut cache, inj, hot2);
        // Keep both hot, then insert a newcomer.
        arena.compose(&mut cache, inj, hot1);
        arena.compose(&mut cache, inj, hot2);
        let newcomer = arena.proj_ground(gi(), p(2));
        arena.compose(&mut cache, inj, newcomer);
        let misses = cache.stats().misses;
        arena.compose(&mut cache, inj, newcomer);
        assert_eq!(
            cache.stats().misses,
            misses,
            "the newcomer must have been admitted, not evicted on insert"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        ComposeCache::with_capacity(0);
    }

    fn _frozen_coercions_is_send_sync(f: FrozenCoercions) -> impl Send + Sync {
        f
    }

    /// A warm arena+cache over the sample coercions and their
    /// composable pairs, frozen.
    fn warm_base() -> Arc<FrozenCoercions> {
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        for s in samples() {
            arena.intern(&s);
        }
        let inj = arena.intern(&SpaceCoercion::inj(id_int(), gi()));
        let proj = arena.intern(&SpaceCoercion::proj(
            gi(),
            p(0),
            Intermediate::Ground(id_int()),
        ));
        arena.compose(&mut cache, inj, proj);
        let idd = arena.id_dyn();
        arena.compose(&mut cache, idd, proj);
        Arc::new(arena.freeze(&cache))
    }

    #[test]
    fn overlay_answers_warm_inputs_entirely_from_the_base() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(Arc::clone(&base));
        assert_eq!(overlay.base_len(), base.len());
        // Re-interning the frozen trees stores nothing locally and
        // returns base ids.
        for s in samples() {
            let id = overlay.intern(&s);
            assert!(id.index() < base.len(), "{s} must resolve to a base id");
            assert_eq!(overlay.resolve(id), s, "round trip through the base");
        }
        assert_eq!(overlay.local_len(), 0, "warm inputs must intern nothing");
        assert!(overlay.stats().base_hits > 0);
        assert_eq!(overlay.stats().node_misses, 0);
    }

    #[test]
    fn overlay_compose_hits_the_frozen_pair_table() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(Arc::clone(&base));
        let mut cache = ComposeCache::with_base(Arc::clone(&base), 1 << 10);
        let a = overlay.intern(&SpaceCoercion::inj(id_int(), gi()));
        let b = overlay.intern(&SpaceCoercion::proj(
            gi(),
            p(0),
            Intermediate::Ground(id_int()),
        ));
        let r = overlay.compose(&mut cache, a, b);
        let stats = cache.stats();
        assert_eq!(stats.base_hits, 1, "the warm pair lives in the base");
        assert_eq!(stats.misses, 0);
        assert_eq!(
            overlay.resolve(r),
            compose(
                &SpaceCoercion::inj(id_int(), gi()),
                &SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()))
            )
        );
        // A pair the base never saw is computed locally (and cached
        // locally) — over operands from both tiers.
        let novel = overlay.proj_ground(gb(), p(7));
        assert!(novel.index() >= base.len(), "new node is overlay-local");
        let inj_b = overlay.inj_ground(gb());
        overlay.compose(&mut cache, inj_b, novel);
        assert!(cache.stats().misses > 0);
    }

    #[test]
    fn overlay_compose_agrees_with_flat_compose() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(Arc::clone(&base));
        let mut ocache = ComposeCache::with_base(base, 1 << 10);
        let mut flat = CoercionArena::new();
        let mut fcache = ComposeCache::new();
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let pairs = [
            (SpaceCoercion::IdDyn, proj.clone()),
            (inj.clone(), proj.clone()),
            (
                SpaceCoercion::fun(inj.clone(), inj.clone()),
                SpaceCoercion::fun(proj.clone(), proj.clone()),
            ),
        ];
        for (s, t) in &pairs {
            let (oa, ob) = (overlay.intern(s), overlay.intern(t));
            let (fa, fb) = (flat.intern(s), flat.intern(t));
            let or = overlay.compose(&mut ocache, oa, ob);
            let fr = flat.compose(&mut fcache, fa, fb);
            assert_eq!(overlay.resolve(or), flat.resolve(fr), "{s} # {t}");
        }
    }

    #[test]
    #[should_panic(expected = "disagree about their frozen base")]
    fn overlay_arena_rejects_a_flat_cache() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(base);
        let mut cache = ComposeCache::new();
        let a = overlay.intern(&SpaceCoercion::id_base(BaseType::Int));
        overlay.compose(&mut cache, a, a);
    }

    #[test]
    #[should_panic(expected = "disagree about their frozen base")]
    fn overlay_cache_rejects_a_different_base() {
        // Two separately frozen snapshots are different id-spaces even
        // if structurally identical; mixing them must fail loudly.
        let mut overlay = CoercionArena::with_base(warm_base());
        let mut cache = ComposeCache::with_base(warm_base(), 1 << 10);
        let a = overlay.intern(&SpaceCoercion::id_base(BaseType::Int));
        overlay.compose(&mut cache, a, a);
    }

    #[test]
    fn freezing_an_overlay_flattens_both_tiers() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(Arc::clone(&base));
        let mut cache = ComposeCache::with_base(Arc::clone(&base), 1 << 10);
        let novel_proj = overlay.proj_ground(gb(), p(9));
        let novel_inj = overlay.inj_ground(gb());
        let composed = overlay.compose(&mut cache, novel_inj, novel_proj);
        let refrozen = Arc::new(overlay.freeze(&cache));
        assert_eq!(refrozen.len(), overlay.len());
        assert!(refrozen.pairs_len() > base.pairs_len());

        let mut second = CoercionArena::with_base(Arc::clone(&refrozen));
        let mut second_cache = ComposeCache::with_base(refrozen, 1 << 10);
        // The overlay's local nodes are base nodes of the new
        // snapshot, and its memoized pair answers from the frozen
        // table.
        assert_eq!(second.proj_ground(gb(), p(9)), novel_proj);
        assert_eq!(second.local_len(), 0);
        assert_eq!(
            second.compose(&mut second_cache, novel_inj, novel_proj),
            composed
        );
        assert_eq!(second_cache.stats().base_hits, 1);
    }

    #[test]
    fn refreezing_an_overlay_extends_its_base() {
        let base = warm_base();
        let mut overlay = CoercionArena::with_base(Arc::clone(&base));
        let cache = ComposeCache::with_base(Arc::clone(&base), 1 << 10);
        overlay.proj_ground(gb(), p(11));
        let refrozen = overlay.freeze(&cache);
        // Appending preserves every base id verbatim, so the new
        // snapshot extends the old one (and trivially itself) — the
        // condition that lets a serving pool hot-swap `base` for
        // `refrozen` without invalidating a single outstanding id.
        assert!(refrozen.extends(&base));
        assert!(refrozen.extends(&refrozen));
        assert!(!base.extends(&refrozen), "extension is strictly larger");
        assert!(refrozen.contiguous_over(&base), "no sibling froze first");
        // A sibling freezing *after* refrozen appends onto the same
        // slab: freezes over one base serialize into one id space, so
        // the later view subsumes the earlier one (but not vice
        // versa), and it is not contiguous over the base (refrozen's
        // rows landed first, so the sibling's local ids were
        // remapped).
        let mut sibling = CoercionArena::with_base(Arc::clone(&base));
        let sibling_cache = ComposeCache::with_base(Arc::clone(&base), 1 << 10);
        sibling.proj_ground(gb(), p(12));
        let other = sibling.freeze(&sibling_cache);
        assert!(other.extends(&base));
        assert!(other.extends(&refrozen), "later sibling subsumes earlier");
        assert!(!refrozen.extends(&other));
        assert!(!other.contiguous_over(&base));
        // An independent lineage (fresh flat freeze) never extends.
        let detached = overlay.freeze_flat(&cache);
        assert_eq!(detached.len(), overlay.len());
        assert!(!detached.extends(&base), "different slab, no extension");
        assert!(!detached.contiguous_over(&base));
    }

    #[test]
    fn arena_stats_count_interning_work() {
        let mut arena = CoercionArena::new();
        assert_eq!(arena.stats(), ArenaStats::default());
        let inj = SpaceCoercion::inj(id_int(), gi());
        arena.intern(&inj);
        let s1 = arena.stats();
        assert!(s1.tree_interns >= 1);
        assert!(s1.node_misses >= 1);
        assert_eq!(s1.nodes, arena.len());
        // Re-interning walks the tree again (tree_interns grows) but
        // stores nothing new (all node hits).
        arena.intern(&inj);
        let s2 = arena.stats();
        assert!(s2.tree_interns > s1.tree_interns);
        assert_eq!(s2.node_misses, s1.node_misses);
        assert!(s2.node_hits > s1.node_hits);
        assert_eq!(s2.nodes, s1.nodes);
    }
}
