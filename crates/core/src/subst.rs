//! Capture-avoiding substitution for λS terms (mirrors
//! `bc_lambda_b::subst`).

use std::collections::HashSet;
use std::rc::Rc;

use bc_syntax::fresh::fresh_avoiding;
use bc_syntax::Name;

use crate::sterm::STerm;
use crate::term::Term;

/// The set of free variables of a term.
pub fn free_vars(term: &Term) -> HashSet<Name> {
    fn go(t: &Term, bound: &mut Vec<Name>, out: &mut HashSet<Name>) {
        match t {
            Term::Const(_) | Term::Blame(_, _) => {}
            Term::Var(x) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            Term::Op(_, args) => args.iter().for_each(|a| go(a, bound, out)),
            Term::Lam(x, _, b) => {
                bound.push(x.clone());
                go(b, bound, out);
                bound.pop();
            }
            Term::Fix(f, x, _, _, b) => {
                bound.push(f.clone());
                bound.push(x.clone());
                go(b, bound, out);
                bound.pop();
                bound.pop();
            }
            Term::App(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            Term::Coerce(m, _) => go(m, bound, out),
            Term::If(a, b, c) => {
                go(a, bound, out);
                go(b, bound, out);
                go(c, bound, out);
            }
            Term::Let(x, m, n) => {
                go(m, bound, out);
                bound.push(x.clone());
                go(n, bound, out);
                bound.pop();
            }
        }
    }
    let mut out = HashSet::new();
    go(term, &mut Vec::new(), &mut out);
    out
}

/// Capture-avoiding substitution: replaces free occurrences of `x` in
/// `term` by `value`, renaming binders as needed.
pub fn subst(term: &Term, x: &Name, value: &Term) -> Term {
    let fv = free_vars(value);
    subst_go(term, x, value, &fv)
}

fn subst_go(term: &Term, x: &Name, value: &Term, fv: &HashSet<Name>) -> Term {
    match term {
        Term::Const(_) | Term::Blame(_, _) => term.clone(),
        Term::Var(y) => {
            if y == x {
                value.clone()
            } else {
                term.clone()
            }
        }
        Term::Op(op, args) => Term::Op(
            *op,
            args.iter().map(|a| subst_go(a, x, value, fv)).collect(),
        ),
        Term::Lam(y, ty, body) => {
            if y == x {
                term.clone()
            } else if fv.contains(y) {
                let (y2, body2) = rename_binder(y, body, fv, &[x]);
                Term::Lam(y2, ty.clone(), Rc::new(subst_go(&body2, x, value, fv)))
            } else {
                Term::Lam(y.clone(), ty.clone(), Rc::new(subst_go(body, x, value, fv)))
            }
        }
        Term::Fix(f, y, dom, cod, body) => {
            if f == x || y == x {
                term.clone()
            } else if fv.contains(f) || fv.contains(y) {
                let mut avoid: HashSet<Name> = fv.clone();
                avoid.extend(free_vars(body));
                avoid.insert(x.clone());
                avoid.insert(y.clone());
                let f2 = fresh_avoiding(f, &avoid);
                avoid.insert(f2.clone());
                let y2 = fresh_avoiding(y, &avoid);
                let body2 = subst(
                    &subst(body, f, &Term::Var(f2.clone())),
                    y,
                    &Term::Var(y2.clone()),
                );
                Term::Fix(
                    f2,
                    y2,
                    dom.clone(),
                    cod.clone(),
                    Rc::new(subst_go(&body2, x, value, fv)),
                )
            } else {
                Term::Fix(
                    f.clone(),
                    y.clone(),
                    dom.clone(),
                    cod.clone(),
                    Rc::new(subst_go(body, x, value, fv)),
                )
            }
        }
        Term::App(a, b) => Term::App(
            Rc::new(subst_go(a, x, value, fv)),
            Rc::new(subst_go(b, x, value, fv)),
        ),
        Term::Coerce(m, s) => Term::Coerce(Rc::new(subst_go(m, x, value, fv)), s.clone()),
        Term::If(a, b, c) => Term::If(
            Rc::new(subst_go(a, x, value, fv)),
            Rc::new(subst_go(b, x, value, fv)),
            Rc::new(subst_go(c, x, value, fv)),
        ),
        Term::Let(y, m, n) => {
            let m2 = subst_go(m, x, value, fv);
            if y == x {
                Term::Let(y.clone(), Rc::new(m2), n.clone())
            } else if fv.contains(y) {
                let (y2, n2) = rename_binder(y, n, fv, &[x]);
                Term::Let(y2, Rc::new(m2), Rc::new(subst_go(&n2, x, value, fv)))
            } else {
                Term::Let(y.clone(), Rc::new(m2), Rc::new(subst_go(n, x, value, fv)))
            }
        }
    }
}

/// The set of free variables of a compiled term (mirrors
/// [`free_vars`]; coercion and type handles bind nothing).
pub fn free_vars_compiled(term: &STerm) -> HashSet<Name> {
    fn go(t: &STerm, bound: &mut Vec<Name>, out: &mut HashSet<Name>) {
        match t {
            STerm::Const(_) | STerm::Blame(_, _) => {}
            STerm::Var(x) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            STerm::Op(_, args) => args.iter().for_each(|a| go(a, bound, out)),
            STerm::Lam(x, _, b) => {
                bound.push(x.clone());
                go(b, bound, out);
                bound.pop();
            }
            STerm::Fix(f, x, _, _, b) => {
                bound.push(f.clone());
                bound.push(x.clone());
                go(b, bound, out);
                bound.pop();
                bound.pop();
            }
            STerm::App(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            STerm::Coerce(m, _) => go(m, bound, out),
            STerm::If(a, b, c) => {
                go(a, bound, out);
                go(b, bound, out);
                go(c, bound, out);
            }
            STerm::Let(x, m, n) => {
                go(m, bound, out);
                bound.push(x.clone());
                go(n, bound, out);
                bound.pop();
            }
        }
    }
    let mut out = HashSet::new();
    go(term, &mut Vec::new(), &mut out);
    out
}

/// Capture-avoiding substitution on the compiled IR: [`subst`]
/// transcribed onto [`STerm`], with coercion and type handles copied
/// as the plain words they are.
pub fn subst_compiled(term: &STerm, x: &Name, value: &STerm) -> STerm {
    let fv = free_vars_compiled(value);
    subst_compiled_go(term, x, value, &fv)
}

fn subst_compiled_go(term: &STerm, x: &Name, value: &STerm, fv: &HashSet<Name>) -> STerm {
    match term {
        STerm::Const(_) | STerm::Blame(_, _) => term.clone(),
        STerm::Var(y) => {
            if y == x {
                value.clone()
            } else {
                term.clone()
            }
        }
        STerm::Op(op, args) => STerm::Op(
            *op,
            args.iter()
                .map(|a| subst_compiled_go(a, x, value, fv))
                .collect(),
        ),
        STerm::Lam(y, ty, body) => {
            if y == x {
                term.clone()
            } else if fv.contains(y) {
                let (y2, body2) = rename_binder_compiled(y, body, fv, &[x]);
                STerm::Lam(y2, *ty, Rc::new(subst_compiled_go(&body2, x, value, fv)))
            } else {
                STerm::Lam(
                    y.clone(),
                    *ty,
                    Rc::new(subst_compiled_go(body, x, value, fv)),
                )
            }
        }
        STerm::Fix(f, y, dom, cod, body) => {
            if f == x || y == x {
                term.clone()
            } else if fv.contains(f) || fv.contains(y) {
                let mut avoid: HashSet<Name> = fv.clone();
                avoid.extend(free_vars_compiled(body));
                avoid.insert(x.clone());
                avoid.insert(y.clone());
                let f2 = fresh_avoiding(f, &avoid);
                avoid.insert(f2.clone());
                let y2 = fresh_avoiding(y, &avoid);
                let body2 = subst_compiled(
                    &subst_compiled(body, f, &STerm::Var(f2.clone())),
                    y,
                    &STerm::Var(y2.clone()),
                );
                STerm::Fix(
                    f2,
                    y2,
                    *dom,
                    *cod,
                    Rc::new(subst_compiled_go(&body2, x, value, fv)),
                )
            } else {
                STerm::Fix(
                    f.clone(),
                    y.clone(),
                    *dom,
                    *cod,
                    Rc::new(subst_compiled_go(body, x, value, fv)),
                )
            }
        }
        STerm::App(a, b) => STerm::App(
            Rc::new(subst_compiled_go(a, x, value, fv)),
            Rc::new(subst_compiled_go(b, x, value, fv)),
        ),
        STerm::Coerce(m, s) => STerm::Coerce(Rc::new(subst_compiled_go(m, x, value, fv)), *s),
        STerm::If(a, b, c) => STerm::If(
            Rc::new(subst_compiled_go(a, x, value, fv)),
            Rc::new(subst_compiled_go(b, x, value, fv)),
            Rc::new(subst_compiled_go(c, x, value, fv)),
        ),
        STerm::Let(y, m, n) => {
            let m2 = subst_compiled_go(m, x, value, fv);
            if y == x {
                STerm::Let(y.clone(), Rc::new(m2), n.clone())
            } else if fv.contains(y) {
                let (y2, n2) = rename_binder_compiled(y, n, fv, &[x]);
                STerm::Let(
                    y2,
                    Rc::new(m2),
                    Rc::new(subst_compiled_go(&n2, x, value, fv)),
                )
            } else {
                STerm::Let(
                    y.clone(),
                    Rc::new(m2),
                    Rc::new(subst_compiled_go(n, x, value, fv)),
                )
            }
        }
    }
}

fn rename_binder_compiled(
    y: &Name,
    body: &STerm,
    fv: &HashSet<Name>,
    extra: &[&Name],
) -> (Name, STerm) {
    let mut avoid: HashSet<Name> = fv.clone();
    avoid.extend(free_vars_compiled(body));
    for e in extra {
        avoid.insert((*e).clone());
    }
    avoid.insert(y.clone());
    let y2 = fresh_avoiding(y, &avoid);
    let body2 = subst_compiled(body, y, &STerm::Var(y2.clone()));
    (y2, body2)
}

fn rename_binder(y: &Name, body: &Term, fv: &HashSet<Name>, extra: &[&Name]) -> (Name, Term) {
    let mut avoid: HashSet<Name> = fv.clone();
    avoid.extend(free_vars(body));
    for e in extra {
        avoid.insert((*e).clone());
    }
    avoid.insert(y.clone());
    let y2 = fresh_avoiding(y, &avoid);
    let body2 = subst(body, y, &Term::Var(y2.clone()));
    (y2, body2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::Type;

    #[test]
    fn capture_is_avoided() {
        let t = Term::lam("y", Type::INT, Term::var("x"));
        let r = subst(&t, &Name::from("x"), &Term::var("y"));
        match r {
            Term::Lam(y2, _, body) => {
                assert_ne!(&*y2, "y");
                assert_eq!(*body, Term::var("y"));
            }
            other => panic!("expected lambda, got {other}"),
        }
    }
}
