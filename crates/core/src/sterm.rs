//! The compiled λS term IR: [`Term`] with every tree payload replaced
//! by an arena handle.
//!
//! [`Term`] is the paper-facing λS grammar — its `Coerce` nodes carry
//! [`SpaceCoercion`](crate::coercion::SpaceCoercion) trees and its
//! binders carry [`Type`](bc_syntax::Type) trees. That
//! is the right exchange format, but it makes every *evaluation* of a
//! coercion node pay an O(size) hash walk to re-intern the same tree
//! into the arena (the machine's dominant residual per-crossing cost),
//! and every cloned annotation an allocation.
//!
//! [`STerm`] is the same term, *compiled*: `Coerce` holds a `Copy`
//! [`CoercionId`] and type annotations hold `Copy` [`TypeId`]s, both
//! minted once by [`compile_term`]. A machine running on [`STerm`]
//! performs **zero interning and zero coercion allocation** at a
//! boundary crossing — the coercion is an id load, and the merge with
//! an adjacent frame is a cached O(1) composition.
//!
//! The lowering is a straight structural walk; [`decompile_term`]
//! inverts it (resolving ids back to trees), and the two are mutually
//! inverse by property test. Compiling is idempotent in the arenas:
//! compiling the same term twice yields structurally equal [`STerm`]s
//! with identical ids (hash-consing canonicity, end to end).
//!
//! ```
//! use bc_core::arena::CoercionArena;
//! use bc_core::sterm::{compile_term, decompile_term};
//! use bc_core::{SpaceCoercion, Term};
//! use bc_syntax::{Type, TypeArena};
//!
//! let m = Term::int(1).coerce(SpaceCoercion::id_base(bc_syntax::BaseType::Int));
//! let mut arena = CoercionArena::new();
//! let mut types = TypeArena::new();
//! let compiled = compile_term(&m, &mut arena, &mut types);
//! assert_eq!(decompile_term(&compiled, &arena, &types), m);
//! assert_eq!(compile_term(&m, &mut arena, &mut types), compiled);
//! ```

use std::rc::Rc;

use bc_syntax::{Constant, Label, Name, Op, TypeArena, TypeId};

use crate::arena::{CoercionArena, CoercionId};
use crate::term::Term;

/// A compiled λS term: the [`Term`] grammar with coercions as
/// [`CoercionId`]s and type annotations as [`TypeId`]s.
///
/// Ids are only meaningful together with the [`CoercionArena`] and
/// [`TypeArena`] that [`compile_term`] interned them into. The spine
/// is `Rc` on purpose — and therefore deliberately **not** `Send`:
/// the reduction path clones spine nodes constantly, and switching to
/// atomic refcounts costs the λS machine ~30% end to end (measured on
/// the compiled boundary loop). Lowered programs stay inside the
/// session that lowered them; what travels between threads is the
/// compiled λB term, whose `Arc` spine is cloned rarely.
#[derive(Debug, Clone, PartialEq)]
pub enum STerm {
    /// A constant `k`.
    Const(Constant),
    /// An operator application.
    Op(Op, Vec<STerm>),
    /// A variable.
    Var(Name),
    /// An abstraction `λx:A. N`.
    Lam(Name, TypeId, Rc<STerm>),
    /// An application `L M`.
    App(Rc<STerm>, Rc<STerm>),
    /// A coercion application `M⟨s⟩` — the boundary crossing, now a
    /// `Copy` handle instead of a tree.
    Coerce(Rc<STerm>, CoercionId),
    /// Allocated blame (carries its type, as in λB).
    Blame(Label, TypeId),
    /// A conditional.
    If(Rc<STerm>, Rc<STerm>, Rc<STerm>),
    /// A let binding.
    Let(Name, Rc<STerm>, Rc<STerm>),
    /// A recursive function `fix f (x:A):B. N`.
    Fix(Name, Name, TypeId, TypeId, Rc<STerm>),
}

impl STerm {
    /// The number of syntax nodes in the compiled term (each interned
    /// coercion or type handle counts as one node — they are one word
    /// at run time regardless of their tree size).
    pub fn size(&self) -> usize {
        match self {
            STerm::Const(_) | STerm::Var(_) | STerm::Blame(_, _) => 1,
            STerm::Op(_, args) => 1 + args.iter().map(STerm::size).sum::<usize>(),
            STerm::Lam(_, _, b) | STerm::Fix(_, _, _, _, b) => 1 + b.size(),
            STerm::Coerce(m, _) => 1 + m.size(),
            STerm::App(a, b) | STerm::Let(_, a, b) => 1 + a.size() + b.size(),
            STerm::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// The number of `Coerce` nodes — the boundary crossings a single
    /// pass over the term will hit at most once each.
    pub fn coercion_nodes(&self) -> usize {
        match self {
            STerm::Const(_) | STerm::Var(_) | STerm::Blame(_, _) => 0,
            STerm::Op(_, args) => args.iter().map(STerm::coercion_nodes).sum(),
            STerm::Lam(_, _, b) | STerm::Fix(_, _, _, _, b) => b.coercion_nodes(),
            STerm::Coerce(m, _) => 1 + m.coercion_nodes(),
            STerm::App(a, b) | STerm::Let(_, a, b) => a.coercion_nodes() + b.coercion_nodes(),
            STerm::If(a, b, c) => a.coercion_nodes() + b.coercion_nodes() + c.coercion_nodes(),
        }
    }

    /// The total implicit *tree* size of all coercions in the term —
    /// the λS space metric, equal to
    /// [`Term::coercion_size`](crate::term::Term::coercion_size) of
    /// the decompiled tree (each handle weighs its resolved tree, not
    /// one word).
    pub fn coercion_size(&self, arena: &CoercionArena) -> usize {
        match self {
            STerm::Const(_) | STerm::Var(_) | STerm::Blame(_, _) => 0,
            STerm::Op(_, args) => args.iter().map(|a| a.coercion_size(arena)).sum(),
            STerm::Lam(_, _, b) | STerm::Fix(_, _, _, _, b) => b.coercion_size(arena),
            STerm::Coerce(m, s) => m.coercion_size(arena) + arena.size(*s),
            STerm::App(a, b) | STerm::Let(_, a, b) => {
                a.coercion_size(arena) + b.coercion_size(arena)
            }
            STerm::If(a, b, c) => {
                a.coercion_size(arena) + b.coercion_size(arena) + c.coercion_size(arena)
            }
        }
    }

    /// Whether the term is an *uncoerced value* `U ::= k | λx:A.N`
    /// (including `fix`) — the compiled counterpart of
    /// [`Term::is_uncoerced_value`](crate::term::Term::is_uncoerced_value).
    pub fn is_uncoerced_value(&self) -> bool {
        matches!(
            self,
            STerm::Const(_) | STerm::Lam(_, _, _) | STerm::Fix(_, _, _, _, _)
        )
    }

    /// Whether the term is a value `V ::= U | U⟨s→t⟩ | U⟨g;G!⟩`
    /// (Figure 5), deciding the coercion shape from its interned node
    /// — the compiled counterpart of
    /// [`Term::is_value`](crate::term::Term::is_value).
    pub fn is_value(&self, arena: &CoercionArena) -> bool {
        use crate::arena::{GNode, INode, SNode};
        match self {
            _ if self.is_uncoerced_value() => true,
            STerm::Coerce(u, s) => {
                u.is_uncoerced_value()
                    && matches!(
                        arena.node(*s),
                        SNode::Mid(INode::Ground(GNode::Fun(_, _))) | SNode::Mid(INode::Inj(_, _))
                    )
            }
            _ => false,
        }
    }

    /// Renders the compiled term in the paper grammar by resolving its
    /// handles through the arenas.
    pub fn display(&self, arena: &CoercionArena, types: &TypeArena) -> String {
        decompile_term(self, arena, types).to_string()
    }
}

/// Lowers a λS tree term into the compiled IR, interning every
/// coercion into `arena` and every type annotation into `types`.
///
/// Each distinct coercion is hash-walked once *at compile time*; the
/// produced [`STerm`] evaluates with no interning at all. Compiling is
/// idempotent: the same term always lowers to the same ids within one
/// arena pair.
pub fn compile_term(term: &Term, arena: &mut CoercionArena, types: &mut TypeArena) -> STerm {
    match term {
        Term::Const(k) => STerm::Const(*k),
        Term::Op(op, args) => STerm::Op(
            *op,
            args.iter().map(|a| compile_term(a, arena, types)).collect(),
        ),
        Term::Var(x) => STerm::Var(x.clone()),
        Term::Lam(x, ty, b) => STerm::Lam(
            x.clone(),
            types.intern(ty),
            compile_term(b, arena, types).into(),
        ),
        Term::App(a, b) => STerm::App(
            compile_term(a, arena, types).into(),
            compile_term(b, arena, types).into(),
        ),
        Term::Coerce(m, s) => STerm::Coerce(compile_term(m, arena, types).into(), arena.intern(s)),
        Term::Blame(p, ty) => STerm::Blame(*p, types.intern(ty)),
        Term::If(c, t, e) => STerm::If(
            compile_term(c, arena, types).into(),
            compile_term(t, arena, types).into(),
            compile_term(e, arena, types).into(),
        ),
        Term::Let(x, m, n) => STerm::Let(
            x.clone(),
            compile_term(m, arena, types).into(),
            compile_term(n, arena, types).into(),
        ),
        Term::Fix(f, x, dom, cod, b) => STerm::Fix(
            f.clone(),
            x.clone(),
            types.intern(dom),
            types.intern(cod),
            compile_term(b, arena, types).into(),
        ),
    }
}

/// Rebuilds the tree term from the compiled IR (the inverse of
/// [`compile_term`]; the exchange format for printing and tests).
pub fn decompile_term(term: &STerm, arena: &CoercionArena, types: &TypeArena) -> Term {
    match term {
        STerm::Const(k) => Term::Const(*k),
        STerm::Op(op, args) => Term::Op(
            *op,
            args.iter()
                .map(|a| decompile_term(a, arena, types))
                .collect(),
        ),
        STerm::Var(x) => Term::Var(x.clone()),
        STerm::Lam(x, ty, b) => Term::Lam(
            x.clone(),
            types.resolve(*ty),
            decompile_term(b, arena, types).into(),
        ),
        STerm::App(a, b) => Term::App(
            decompile_term(a, arena, types).into(),
            decompile_term(b, arena, types).into(),
        ),
        STerm::Coerce(m, s) => {
            Term::Coerce(decompile_term(m, arena, types).into(), arena.resolve(*s))
        }
        STerm::Blame(p, ty) => Term::Blame(*p, types.resolve(*ty)),
        STerm::If(c, t, e) => Term::If(
            decompile_term(c, arena, types).into(),
            decompile_term(t, arena, types).into(),
            decompile_term(e, arena, types).into(),
        ),
        STerm::Let(x, m, n) => Term::Let(
            x.clone(),
            decompile_term(m, arena, types).into(),
            decompile_term(n, arena, types).into(),
        ),
        STerm::Fix(f, x, dom, cod, b) => Term::Fix(
            f.clone(),
            x.clone(),
            types.resolve(*dom),
            types.resolve(*cod),
            decompile_term(b, arena, types).into(),
        ),
    }
}

/// A coercion arena, type arena, and compose cache bundled together —
/// everything a compiled program needs to evaluate. The one-stop state
/// for callers that would otherwise thread three `&mut`s.
#[derive(Debug, Clone, Default)]
pub struct CompileCtx {
    /// The coercion interner.
    pub arena: CoercionArena,
    /// The memoized composition table over `arena`'s ids.
    pub cache: crate::arena::ComposeCache,
    /// The type interner.
    pub types: TypeArena,
}

impl CompileCtx {
    /// An empty context.
    pub fn new() -> CompileCtx {
        CompileCtx::default()
    }

    /// Lowers a term into this context's arenas.
    pub fn compile(&mut self, term: &Term) -> STerm {
        compile_term(term, &mut self.arena, &mut self.types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use bc_syntax::{BaseType, Ground, Type};

    fn sample() -> Term {
        let gi = Ground::Base(BaseType::Int);
        let inj = SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi);
        let proj = SpaceCoercion::proj(
            gi,
            Label::new(0),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
        );
        Term::let_(
            "f",
            Term::lam("x", Type::INT, Term::var("x").coerce(inj)),
            Term::var("f").app(Term::int(3)).coerce(proj),
        )
    }

    #[test]
    fn compile_round_trips() {
        let m = sample();
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        assert_eq!(decompile_term(&compiled, &ctx.arena, &ctx.types), m);
    }

    #[test]
    fn compiling_twice_is_idempotent_in_the_arenas() {
        let m = sample();
        let mut ctx = CompileCtx::new();
        let first = ctx.compile(&m);
        let nodes = ctx.arena.len();
        let tnodes = ctx.types.len();
        let second = ctx.compile(&m);
        assert_eq!(first, second, "same ids, same structure");
        assert_eq!(ctx.arena.len(), nodes, "no new coercion nodes");
        assert_eq!(ctx.types.len(), tnodes, "no new type nodes");
    }

    #[test]
    fn coerce_ids_match_direct_interning() {
        let gi = Ground::Base(BaseType::Int);
        let inj = SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi);
        let m = Term::int(1).coerce(inj.clone());
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        let STerm::Coerce(_, id) = compiled else {
            panic!("compiled a Coerce to something else");
        };
        assert_eq!(id, ctx.arena.intern(&inj));
    }

    #[test]
    fn size_counts_handles_as_single_nodes() {
        let m = sample();
        let mut ctx = CompileCtx::new();
        let compiled = ctx.compile(&m);
        assert_eq!(compiled.coercion_nodes(), 2);
        // The compiled term is never larger than the tree term.
        assert!(compiled.size() <= m.size());
        assert_eq!(compiled.display(&ctx.arena, &ctx.types), m.to_string());
    }
}
