//! Terms of the space-efficient calculus λS (Figure 5).

use std::fmt;
use std::rc::Rc;

use bc_syntax::{Constant, Label, Name, Op, Type};

use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};

/// Terms `L, M, N` of λS: as λC, but coercions are restricted to
/// space-efficient (canonical) coercions.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A constant `k`.
    Const(Constant),
    /// An operator application.
    Op(Op, Vec<Term>),
    /// A variable.
    Var(Name),
    /// An abstraction `λx:A. N`.
    Lam(Name, Type, Rc<Term>),
    /// An application `L M`.
    App(Rc<Term>, Rc<Term>),
    /// A coercion application `M⟨s⟩`.
    Coerce(Rc<Term>, SpaceCoercion),
    /// Allocated blame (carries its type; see λB).
    Blame(Label, Type),
    /// A conditional.
    If(Rc<Term>, Rc<Term>, Rc<Term>),
    /// A let binding.
    Let(Name, Rc<Term>, Rc<Term>),
    /// A recursive function `fix f (x:A):B. N`.
    Fix(Name, Name, Type, Type, Rc<Term>),
}

impl Term {
    /// An integer constant.
    pub fn int(n: i64) -> Term {
        Term::Const(Constant::Int(n))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::Const(Constant::Bool(b))
    }

    /// A variable.
    pub fn var(name: &str) -> Term {
        Term::Var(Name::from(name))
    }

    /// An abstraction `λname:ty. body`.
    pub fn lam(name: &str, ty: Type, body: Term) -> Term {
        Term::Lam(Name::from(name), ty, Rc::new(body))
    }

    /// An application `self arg`.
    #[must_use]
    pub fn app(self, arg: Term) -> Term {
        Term::App(Rc::new(self), Rc::new(arg))
    }

    /// The coercion application `self⟨s⟩`.
    #[must_use]
    pub fn coerce(self, s: SpaceCoercion) -> Term {
        Term::Coerce(Rc::new(self), s)
    }

    /// A binary operator application.
    pub fn op2(op: Op, lhs: Term, rhs: Term) -> Term {
        Term::Op(op, vec![lhs, rhs])
    }

    /// A conditional.
    pub fn ite(cond: Term, then_: Term, else_: Term) -> Term {
        Term::If(Rc::new(cond), Rc::new(then_), Rc::new(else_))
    }

    /// A let binding.
    pub fn let_(name: &str, bound: Term, body: Term) -> Term {
        Term::Let(Name::from(name), Rc::new(bound), Rc::new(body))
    }

    /// A recursive function.
    pub fn fix(fun: &str, arg: &str, dom: Type, cod: Type, body: Term) -> Term {
        Term::Fix(Name::from(fun), Name::from(arg), dom, cod, Rc::new(body))
    }

    /// Whether the term is an *uncoerced value* `U ::= k | λx:A.N`
    /// (including `fix`, our standard recursive function value).
    pub fn is_uncoerced_value(&self) -> bool {
        matches!(
            self,
            Term::Const(_) | Term::Lam(_, _, _) | Term::Fix(_, _, _, _, _)
        )
    }

    /// Whether the term is a value `V ::= U | U⟨s→t⟩ | U⟨g;G!⟩`
    /// (Figure 5): at most one top-level coercion, which must be a
    /// function coercion or an injection.
    pub fn is_value(&self) -> bool {
        match self {
            _ if self.is_uncoerced_value() => true,
            Term::Coerce(u, s) => {
                u.is_uncoerced_value()
                    && matches!(
                        s,
                        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(_, _)))
                            | SpaceCoercion::Mid(Intermediate::Inj(_, _))
                    )
            }
            _ => false,
        }
    }

    /// The number of syntax nodes in the term.
    pub fn size(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 1,
            Term::Op(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => 1 + b.size(),
            Term::Coerce(m, s) => 1 + m.size() + s.size(),
            Term::App(a, b) | Term::Let(_, a, b) => 1 + a.size() + b.size(),
            Term::If(a, b, c) => 1 + a.size() + b.size() + c.size(),
        }
    }

    /// The total size of all coercions in the term — the λS space
    /// metric, which stays bounded where λB/λC grow.
    pub fn coercion_size(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) | Term::Blame(_, _) => 0,
            Term::Op(_, args) => args.iter().map(Term::coercion_size).sum(),
            Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => b.coercion_size(),
            Term::Coerce(m, s) => m.coercion_size() + s.size(),
            Term::App(a, b) | Term::Let(_, a, b) => a.coercion_size() + b.coercion_size(),
            Term::If(a, b, c) => a.coercion_size() + b.coercion_size() + c.coercion_size(),
        }
    }
}

impl From<Constant> for Term {
    fn from(k: Constant) -> Term {
        Term::Const(k)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(k) => write!(f, "{k}"),
            Term::Var(x) => write!(f, "{x}"),
            Term::Op(op, args) => {
                write!(f, "{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Term::Lam(x, ty, b) => write!(f, "(fun ({x} : {ty}) => {b})"),
            Term::App(a, b) => write!(f, "({a} {b})"),
            Term::Coerce(m, s) => write!(f, "{m}<{s}>"),
            Term::Blame(p, _) => write!(f, "blame {p}"),
            Term::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Term::Let(x, m, n) => write!(f, "(let {x} = {m} in {n})"),
            Term::Fix(g, x, dom, cod, b) => {
                write!(f, "(fix {g} ({x} : {dom}) : {cod} => {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground};

    #[test]
    fn value_forms() {
        let gi = Ground::Base(BaseType::Int);
        let id_int = GroundCoercion::IdBase(BaseType::Int);
        // U and U⟨g;G!⟩ are values.
        assert!(Term::int(1).is_value());
        assert!(Term::int(1)
            .coerce(SpaceCoercion::inj(id_int.clone(), gi))
            .is_value());
        // U⟨s→t⟩ is a value.
        assert!(Term::lam("x", Type::DYN, Term::var("x"))
            .coerce(SpaceCoercion::fun(
                SpaceCoercion::IdDyn,
                SpaceCoercion::IdDyn
            ))
            .is_value());
        // U⟨idι⟩ is a redex, not a value.
        assert!(!Term::int(1)
            .coerce(SpaceCoercion::id_base(BaseType::Int))
            .is_value());
        // A doubly-coerced term is never a value (it must merge).
        let v = Term::int(1)
            .coerce(SpaceCoercion::inj(id_int, gi))
            .coerce(SpaceCoercion::IdDyn);
        assert!(!v.is_value());
    }

    #[test]
    fn metrics() {
        let gi = Ground::Base(BaseType::Int);
        let m = Term::int(1).coerce(SpaceCoercion::inj(
            GroundCoercion::IdBase(BaseType::Int),
            gi,
        ));
        assert_eq!(m.coercion_size(), 2);
        assert_eq!(m.size(), 4);
    }
}
