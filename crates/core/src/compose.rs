//! The composition operator `s # t` (Figure 5) — the heart of λS.
//!
//! A ten-line structural recursion over the canonical grammar:
//!
//! ```text
//! idι # idι              = idι
//! (s → t) # (s' → t')    = (s' # s) → (t # t')
//! id? # t                = t
//! (g ; G!) # id?         = g ; G!
//! (G?p ; i) # t          = G?p ; (i # t)
//! g # (h ; H!)           = (g # h) ; H!
//! (g ; G!) # (G?p ; i)   = g # i
//! (g ; G!) # (H?p ; i)   = ⊥GpH          (G ≠ H)
//! ⊥GpH # s               = ⊥GpH
//! g # ⊥GpH               = ⊥GpH
//! ```
//!
//! Unlike Siek–Wadler 2010's threesome meet (whose correctness "is not
//! immediate") and Greenberg 2013's non-structural recursion (whose
//! totality takes four pages), each equation here is directly justified
//! by Henglein's equational theory, and termination is a structural
//! induction: every recursive call shrinks the combined size of the
//! arguments.
//!
//! Composition preserves height (Proposition 14, validated by property
//! test), which is what bounds the run-time size of merged coercions.
//!
//! This module is the tree-level *specification* of composition. The
//! hot paths (the λS machine's frame merging, memoized normalisation)
//! run the same recursion over hash-consed nodes with a memo table —
//! see [`crate::arena::CoercionArena::compose`]; the property tests in
//! `tests/compose_props.rs` check the two agree on random canonical
//! coercions.

use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};

/// Composes two canonical coercions: if `s : A ⇒ B` and `t : B ⇒ C`
/// then `s # t : A ⇒ C`, and `s # t` is the canonical form of the λC
/// composition `s ; t`.
///
/// # Panics
///
/// Panics if the coercions are not composable (no middle type `B`
/// exists); this cannot happen for well-typed terms. Use
/// [`try_compose`] for a checked variant.
pub fn compose(s: &SpaceCoercion, t: &SpaceCoercion) -> SpaceCoercion {
    match s {
        // id? # t = t
        SpaceCoercion::IdDyn => t.clone(),
        // (G?p ; i) # t = G?p ; (i # t)
        SpaceCoercion::Proj(g, p, i) => SpaceCoercion::Proj(*g, *p, compose_intermediate(i, t)),
        SpaceCoercion::Mid(i) => SpaceCoercion::Mid(compose_intermediate(i, t)),
    }
}

/// Composes an intermediate coercion with a space-efficient coercion;
/// the result is again intermediate (the source is unchanged, and an
/// intermediate source is never `?` — Lemma 13).
fn compose_intermediate(i: &Intermediate, t: &SpaceCoercion) -> Intermediate {
    match i {
        // ⊥GpH # s = ⊥GpH
        Intermediate::Fail(g, p, h) => Intermediate::Fail(*g, *p, *h),
        Intermediate::Inj(g, ground) => match t {
            // (g ; G!) # id? = g ; G!
            SpaceCoercion::IdDyn => Intermediate::Inj(g.clone(), *ground),
            SpaceCoercion::Proj(ground2, p, i2) => {
                if ground == ground2 {
                    // (g ; G!) # (G?p ; i) = g # i
                    compose_ground_intermediate(g, i2)
                } else {
                    // (g ; G!) # (H?p ; i) = ⊥GpH   (G ≠ H)
                    Intermediate::Fail(*ground, *p, *ground2)
                }
            }
            SpaceCoercion::Mid(_) => {
                unreachable!("(g ; G!) targets ?, but `{t}` does not accept ?")
            }
        },
        Intermediate::Ground(g) => match t {
            SpaceCoercion::Mid(i2) => compose_ground_intermediate(g, i2),
            SpaceCoercion::IdDyn | SpaceCoercion::Proj(_, _, _) => {
                unreachable!("ground coercion targets a non-? type, but `{t}` accepts ?")
            }
        },
    }
}

/// Composes a ground coercion with an intermediate coercion.
fn compose_ground_intermediate(g: &GroundCoercion, i: &Intermediate) -> Intermediate {
    match i {
        // g # (h ; H!) = (g # h) ; H!
        Intermediate::Inj(h, ground) => Intermediate::Inj(compose_ground(g, h), *ground),
        Intermediate::Ground(h) => Intermediate::Ground(compose_ground(g, h)),
        // g # ⊥GpH = ⊥GpH
        Intermediate::Fail(g2, p, h2) => Intermediate::Fail(*g2, *p, *h2),
    }
}

/// Composes two ground coercions.
fn compose_ground(g: &GroundCoercion, h: &GroundCoercion) -> GroundCoercion {
    match (g, h) {
        // idι # idι = idι
        (GroundCoercion::IdBase(a), GroundCoercion::IdBase(b)) => {
            debug_assert_eq!(a, b, "composed identities at different base types");
            GroundCoercion::IdBase(*a)
        }
        // (s → t) # (s' → t') = (s' # s) → (t # t')
        (GroundCoercion::Fun(s, t), GroundCoercion::Fun(s2, t2)) => {
            GroundCoercion::Fun(compose(s2, s).into(), compose(t, t2).into())
        }
        _ => unreachable!("composed a base identity with a function coercion"),
    }
}

/// Checked composition: returns `None` instead of panicking when the
/// two coercions do not share a middle type.
pub fn try_compose(s: &SpaceCoercion, t: &SpaceCoercion) -> Option<SpaceCoercion> {
    if composable(s, t) {
        Some(compose(s, t))
    } else {
        None
    }
}

/// Whether `s # t` is defined: `s`'s target constraints match `t`'s
/// source constraints.
pub fn composable(s: &SpaceCoercion, t: &SpaceCoercion) -> bool {
    match (s.synthesize(), t.synthesize()) {
        (Some((_, b)), Some((b2, _))) => b == b2,
        // One side contains ⊥. Approximate by checking the reachable
        // constraints; the failure absorbs whatever follows.
        (None, _) | (_, None) => {
            fn target_accepts_dyn(t: &SpaceCoercion) -> bool {
                matches!(t, SpaceCoercion::IdDyn | SpaceCoercion::Proj(_, _, _))
            }
            match s {
                // A failure's target is unconstrained: anything composes.
                SpaceCoercion::Mid(Intermediate::Fail(_, _, _)) => true,
                SpaceCoercion::Proj(_, _, Intermediate::Fail(_, _, _)) => true,
                SpaceCoercion::Mid(Intermediate::Inj(_, _))
                | SpaceCoercion::Proj(_, _, Intermediate::Inj(_, _)) => target_accepts_dyn(t),
                _ => !target_accepts_dyn(t),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground, Label, Type};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }
    fn id_int() -> GroundCoercion {
        GroundCoercion::IdBase(BaseType::Int)
    }

    #[test]
    fn identity_laws() {
        // id? # t = t and (g;G!) # id? = g;G!.
        let t = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        assert_eq!(compose(&SpaceCoercion::IdDyn, &t), t);
        let inj = SpaceCoercion::inj(id_int(), gi());
        assert_eq!(compose(&inj, &SpaceCoercion::IdDyn), inj);
        // idι # idι = idι.
        assert_eq!(
            compose(
                &SpaceCoercion::id_base(BaseType::Int),
                &SpaceCoercion::id_base(BaseType::Int)
            ),
            SpaceCoercion::id_base(BaseType::Int)
        );
    }

    #[test]
    fn matched_injection_projection_collapses() {
        // (idInt ; Int!) # (Int?p ; idInt) = idInt
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        assert_eq!(compose(&inj, &proj), SpaceCoercion::id_base(BaseType::Int));
    }

    #[test]
    fn mismatched_injection_projection_fails() {
        // (idInt ; Int!) # (Bool?p ; idBool) = ⊥ Int p Bool
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(
            gb(),
            p(1),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
        );
        assert_eq!(
            compose(&inj, &proj),
            SpaceCoercion::Mid(Intermediate::Fail(gi(), p(1), gb()))
        );
    }

    #[test]
    fn function_composition_swaps_domains() {
        // (s→t) # (s'→t') = (s'#s) → (t#t'): watch the domain swap.
        let inj = SpaceCoercion::inj(id_int(), gi()); // Int ⇒ ?
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int())); // ? ⇒ Int
                                                                                    // f1 : (? → Int) ⇒ (Int → ?) ... composed with its inverse
        let f1 = SpaceCoercion::fun(inj.clone(), inj.clone());
        let f2 = SpaceCoercion::fun(proj.clone(), proj.clone());
        // f1 : A→B ⇒ A'→B' with domain coercion inj : Int ⇒ ?.
        let composed = compose(&f1, &f2);
        // Domain: proj # inj = (Int?p ; idInt ; Int!)… i.e. a
        // projection followed by an injection; range: inj # proj = id.
        match composed {
            SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(dom, cod))) => {
                assert_eq!(
                    *dom,
                    SpaceCoercion::proj(gi(), p(0), Intermediate::Inj(id_int(), gi()))
                );
                assert_eq!(*cod, SpaceCoercion::id_base(BaseType::Int));
            }
            other => panic!("expected function coercion, got {other}"),
        }
    }

    #[test]
    fn failure_absorbs_both_sides() {
        let fail = SpaceCoercion::fail(gi(), p(2), gb());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        // ⊥ # s = ⊥ (with s accepting ⊥'s unconstrained target).
        assert_eq!(
            compose(&fail, &SpaceCoercion::id_base(BaseType::Bool)),
            fail
        );
        // g # ⊥ = ⊥.
        assert_eq!(compose(&SpaceCoercion::id_base(BaseType::Int), &fail), fail);
        // Projection prefix is preserved: (G?p ; i) # t = G?p ; (i # t).
        let s = compose(&proj, &fail);
        assert_eq!(
            s,
            SpaceCoercion::proj(gi(), p(0), Intermediate::Fail(gi(), p(2), gb()))
        );
    }

    #[test]
    fn composition_is_well_typed() {
        // s : A ⇒ B, t : B ⇒ C gives s # t : A ⇒ C.
        let s = SpaceCoercion::inj(id_int(), gi()); // Int ⇒ ?
        let t = SpaceCoercion::proj(
            gb(),
            p(0),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
        ); // ? ⇒ Bool
        let st = compose(&s, &t); // Int ⇒ Bool (a failure)
        assert!(st.check(&Type::INT, &Type::BOOL));
    }

    #[test]
    fn height_preservation_examples() {
        // Proposition 14 on a nest of function coercions.
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let f1 = SpaceCoercion::fun(inj.clone(), proj.clone());
        let f2 = SpaceCoercion::fun(proj.clone(), inj.clone());
        let composed = compose(&f1, &f2);
        assert!(composed.height() <= f1.height().max(f2.height()));
    }

    #[test]
    fn try_compose_rejects_mismatches() {
        let inj = SpaceCoercion::inj(id_int(), gi()); // Int ⇒ ?
        assert!(try_compose(&inj, &SpaceCoercion::id_base(BaseType::Int)).is_none());
        assert!(try_compose(&inj, &SpaceCoercion::IdDyn).is_some());
        assert!(try_compose(&SpaceCoercion::id_base(BaseType::Int), &inj).is_some());
    }
}
