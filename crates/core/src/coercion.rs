//! Space-efficient coercions: the canonical-form grammar of Figure 5.
//!
//! ```text
//! s, t ::= id? | (G?p ; i) | i          (space-efficient coercions)
//! i    ::= (g ; G!) | g | ⊥GpH          (intermediate coercions)
//! g, h ::= idι | (s → t)                (ground coercions)
//! ```
//!
//! There is exactly one space-efficient coercion per equivalence class
//! of λC coercions with respect to Henglein's equational theory; the
//! grammar is chosen so that composition ([`crate::compose::compose`])
//! is a short structural recursion.

use std::fmt;
use std::rc::Rc;

use bc_lambda_c::coercion::Coercion;
use bc_syntax::{BaseType, Ground, Label, Type};

/// Space-efficient coercions `s, t`.
///
/// This tree form is the exchange format; hot paths intern it into a
/// [`crate::arena::CoercionArena`] for O(1) equality and memoized
/// composition. `Eq`/`Hash` are structural, matching the interner's
/// canonicity invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpaceCoercion {
    /// The identity at the dynamic type, `id?`.
    IdDyn,
    /// A projection followed by an intermediate coercion, `G?p ; i`.
    Proj(Ground, Label, Intermediate),
    /// Just an intermediate coercion `i`.
    Mid(Intermediate),
}

/// Intermediate coercions `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Intermediate {
    /// A ground coercion followed by an injection, `g ; G!`.
    Inj(GroundCoercion, Ground),
    /// Just a ground coercion `g`.
    Ground(GroundCoercion),
    /// The failure coercion `⊥GpH`.
    Fail(Ground, Label, Ground),
}

/// Ground coercions `g, h`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroundCoercion {
    /// The identity at a base type, `idι`.
    IdBase(BaseType),
    /// A function coercion `s → t` between space-efficient coercions.
    Fun(Rc<SpaceCoercion>, Rc<SpaceCoercion>),
}

impl SpaceCoercion {
    /// The identity coercion at a base type, `idι`.
    pub fn id_base(b: BaseType) -> SpaceCoercion {
        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::IdBase(b)))
    }

    /// The canonical identity coercion at an arbitrary type: `id?` at
    /// `?`, `idι` at base types, and `id_A → id_B` at function types.
    pub fn id(ty: &Type) -> SpaceCoercion {
        match ty {
            Type::Dyn => SpaceCoercion::IdDyn,
            Type::Base(b) => SpaceCoercion::id_base(*b),
            Type::Fun(a, b) => SpaceCoercion::fun(SpaceCoercion::id(a), SpaceCoercion::id(b)),
        }
    }

    /// The function coercion `dom → cod` as a space-efficient coercion.
    pub fn fun(dom: SpaceCoercion, cod: SpaceCoercion) -> SpaceCoercion {
        SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::Fun(
            Rc::new(dom),
            Rc::new(cod),
        )))
    }

    /// `g ; G!` — a ground coercion followed by an injection.
    pub fn inj(g: GroundCoercion, ground: Ground) -> SpaceCoercion {
        SpaceCoercion::Mid(Intermediate::Inj(g, ground))
    }

    /// `G?p ; i` — a projection followed by an intermediate coercion.
    pub fn proj(ground: Ground, label: Label, i: Intermediate) -> SpaceCoercion {
        SpaceCoercion::Proj(ground, label, i)
    }

    /// The failure `⊥GpH`.
    ///
    /// # Panics
    ///
    /// Panics if `G = H`.
    pub fn fail(g: Ground, p: Label, h: Ground) -> SpaceCoercion {
        assert_ne!(g, h, "⊥GpH requires G ≠ H");
        SpaceCoercion::Mid(Intermediate::Fail(g, p, h))
    }

    /// Whether this is an identity coercion (`id?` or `idι`); the
    /// non-identities are the paper's *identity-free* coercions `f`,
    /// which may decorate evaluation contexts.
    pub fn is_identity(&self) -> bool {
        matches!(
            self,
            SpaceCoercion::IdDyn
                | SpaceCoercion::Mid(Intermediate::Ground(GroundCoercion::IdBase(_)))
        )
    }

    /// Synthesises `s : A ⇒ B` when the coercion contains no failure.
    pub fn synthesize(&self) -> Option<(Type, Type)> {
        match self {
            SpaceCoercion::IdDyn => Some((Type::Dyn, Type::Dyn)),
            SpaceCoercion::Proj(g, _, i) => {
                let (src, tgt) = i.synthesize()?;
                if src == g.ty() {
                    Some((Type::Dyn, tgt))
                } else {
                    None
                }
            }
            SpaceCoercion::Mid(i) => i.synthesize(),
        }
    }

    /// Checks the typing judgment `s : A ⇒ B`.
    pub fn check(&self, source: &Type, target: &Type) -> bool {
        match self {
            SpaceCoercion::IdDyn => source.is_dyn() && target.is_dyn(),
            SpaceCoercion::Proj(g, _, i) => source.is_dyn() && i.check(&g.ty(), target),
            SpaceCoercion::Mid(i) => i.check(source, target),
        }
    }

    /// A *representative* source type: a type `A` with `s : A ⇒ B`
    /// for some `B`. `⊥GpH` contributes its named ground `G` where the
    /// true source is unconstrained.
    pub fn source_representative(&self) -> Type {
        match self {
            SpaceCoercion::IdDyn | SpaceCoercion::Proj(_, _, _) => Type::Dyn,
            SpaceCoercion::Mid(i) => i.source_representative(),
        }
    }

    /// A *representative* target type (see
    /// [`SpaceCoercion::source_representative`]).
    pub fn target_representative(&self) -> Type {
        match self {
            SpaceCoercion::IdDyn => Type::Dyn,
            SpaceCoercion::Proj(_, _, i) | SpaceCoercion::Mid(i) => i.target_representative(),
        }
    }

    /// The height `‖s‖`, matching the λC height of the corresponding
    /// coercion: compositions take the max, function coercions add
    /// one.
    pub fn height(&self) -> usize {
        match self {
            SpaceCoercion::IdDyn => 1,
            SpaceCoercion::Proj(_, _, i) => i.height(),
            SpaceCoercion::Mid(i) => i.height(),
        }
    }

    /// The number of syntax nodes. A space-efficient coercion contains
    /// at most two compositions per layer, so size is bounded by a
    /// function of height: `size(s) ≤ 3·(2^height − 1)` (validated by
    /// property test).
    pub fn size(&self) -> usize {
        match self {
            SpaceCoercion::IdDyn => 1,
            SpaceCoercion::Proj(_, _, i) => 1 + i.size(),
            SpaceCoercion::Mid(i) => i.size(),
        }
    }

    /// Whether `s safeS q`: as in λC, the coercion is safe for `q` iff
    /// it does not mention `q`.
    pub fn safe_for(&self, q: Label) -> bool {
        match self {
            SpaceCoercion::IdDyn => true,
            SpaceCoercion::Proj(_, p, i) => *p != q && i.safe_for(q),
            SpaceCoercion::Mid(i) => i.safe_for(q),
        }
    }

    /// Every blame label mentioned, in syntactic order.
    pub fn labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels(&self, out: &mut Vec<Label>) {
        match self {
            SpaceCoercion::IdDyn => {}
            SpaceCoercion::Proj(_, p, i) => {
                out.push(*p);
                i.collect_labels(out);
            }
            SpaceCoercion::Mid(i) => i.collect_labels(out),
        }
    }

    /// The inclusion `|s|SC` of space-efficient coercions into λC
    /// coercions — "trivial, since each space-efficient coercion is a
    /// coercion" (§4.1).
    pub fn to_coercion(&self) -> Coercion {
        match self {
            SpaceCoercion::IdDyn => Coercion::id(Type::Dyn),
            SpaceCoercion::Proj(g, p, i) => Coercion::proj(*g, *p).seq(i.to_coercion()),
            SpaceCoercion::Mid(i) => i.to_coercion(),
        }
    }
}

impl Intermediate {
    fn synthesize(&self) -> Option<(Type, Type)> {
        match self {
            Intermediate::Inj(g, ground) => {
                let (src, tgt) = g.synthesize()?;
                if tgt == ground.ty() {
                    Some((src, Type::Dyn))
                } else {
                    None
                }
            }
            Intermediate::Ground(g) => g.synthesize(),
            Intermediate::Fail(_, _, _) => None,
        }
    }

    fn check(&self, source: &Type, target: &Type) -> bool {
        match self {
            Intermediate::Inj(g, ground) => target.is_dyn() && g.check(source, &ground.ty()),
            Intermediate::Ground(g) => g.check(source, target),
            Intermediate::Fail(g, _, h) => g != h && !source.is_dyn() && source.compatible(&g.ty()),
        }
    }

    fn height(&self) -> usize {
        match self {
            Intermediate::Inj(g, _) => g.height(),
            Intermediate::Ground(g) => g.height(),
            Intermediate::Fail(_, _, _) => 1,
        }
    }

    fn size(&self) -> usize {
        match self {
            Intermediate::Inj(g, _) => 1 + g.size(),
            Intermediate::Ground(g) => g.size(),
            Intermediate::Fail(_, _, _) => 1,
        }
    }

    fn safe_for(&self, q: Label) -> bool {
        match self {
            Intermediate::Inj(g, _) => g.safe_for(q),
            Intermediate::Ground(g) => g.safe_for(q),
            Intermediate::Fail(_, p, _) => *p != q,
        }
    }

    fn collect_labels(&self, out: &mut Vec<Label>) {
        match self {
            Intermediate::Inj(g, _) => g.collect_labels(out),
            Intermediate::Ground(g) => g.collect_labels(out),
            Intermediate::Fail(_, p, _) => out.push(*p),
        }
    }

    fn source_representative(&self) -> Type {
        match self {
            Intermediate::Inj(g, _) | Intermediate::Ground(g) => g.source_representative(),
            Intermediate::Fail(g, _, _) => g.ty(),
        }
    }

    fn target_representative(&self) -> Type {
        match self {
            Intermediate::Inj(_, _) => Type::Dyn,
            Intermediate::Ground(g) => g.target_representative(),
            Intermediate::Fail(_, _, h) => h.ty(),
        }
    }

    /// The inclusion into λC coercions.
    pub fn to_coercion(&self) -> Coercion {
        match self {
            Intermediate::Inj(g, ground) => g.to_coercion().seq(Coercion::inj(*ground)),
            Intermediate::Ground(g) => g.to_coercion(),
            Intermediate::Fail(g, p, h) => Coercion::fail(*g, *p, *h),
        }
    }
}

impl GroundCoercion {
    fn synthesize(&self) -> Option<(Type, Type)> {
        match self {
            GroundCoercion::IdBase(b) => Some((b.ty(), b.ty())),
            GroundCoercion::Fun(s, t) => {
                let (a_prime, a) = s.synthesize()?;
                let (b, b_prime) = t.synthesize()?;
                Some((Type::fun(a, b), Type::fun(a_prime, b_prime)))
            }
        }
    }

    fn check(&self, source: &Type, target: &Type) -> bool {
        match self {
            GroundCoercion::IdBase(b) => *source == b.ty() && *target == b.ty(),
            GroundCoercion::Fun(s, t) => match (source, target) {
                (Type::Fun(a, b), Type::Fun(a2, b2)) => s.check(a2, a) && t.check(b, b2),
                _ => false,
            },
        }
    }

    fn height(&self) -> usize {
        match self {
            GroundCoercion::IdBase(_) => 1,
            GroundCoercion::Fun(s, t) => 1 + s.height().max(t.height()),
        }
    }

    fn size(&self) -> usize {
        match self {
            GroundCoercion::IdBase(_) => 1,
            GroundCoercion::Fun(s, t) => 1 + s.size() + t.size(),
        }
    }

    fn safe_for(&self, q: Label) -> bool {
        match self {
            GroundCoercion::IdBase(_) => true,
            GroundCoercion::Fun(s, t) => s.safe_for(q) && t.safe_for(q),
        }
    }

    fn collect_labels(&self, out: &mut Vec<Label>) {
        match self {
            GroundCoercion::IdBase(_) => {}
            GroundCoercion::Fun(s, t) => {
                s.collect_labels(out);
                t.collect_labels(out);
            }
        }
    }

    fn source_representative(&self) -> Type {
        match self {
            GroundCoercion::IdBase(b) => b.ty(),
            GroundCoercion::Fun(s, t) => {
                Type::fun(s.target_representative(), t.source_representative())
            }
        }
    }

    fn target_representative(&self) -> Type {
        match self {
            GroundCoercion::IdBase(b) => b.ty(),
            GroundCoercion::Fun(s, t) => {
                Type::fun(s.source_representative(), t.target_representative())
            }
        }
    }

    /// The inclusion into λC coercions.
    pub fn to_coercion(&self) -> Coercion {
        match self {
            GroundCoercion::IdBase(b) => Coercion::id(b.ty()),
            GroundCoercion::Fun(s, t) => Coercion::fun(s.to_coercion(), t.to_coercion()),
        }
    }
}

impl fmt::Display for SpaceCoercion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceCoercion::IdDyn => f.write_str("id?"),
            SpaceCoercion::Proj(g, p, i) => write!(f, "(({g})?{p} ; {i})"),
            SpaceCoercion::Mid(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Intermediate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intermediate::Inj(g, ground) => write!(f, "({g} ; ({ground})!)"),
            Intermediate::Ground(g) => write!(f, "{g}"),
            Intermediate::Fail(g, p, h) => write!(f, "⊥[{g},{p},{h}]"),
        }
    }
}

impl fmt::Display for GroundCoercion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundCoercion::IdBase(b) => write!(f, "id{b}"),
            GroundCoercion::Fun(s, t) => write!(f, "({s} -> {t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    #[test]
    fn canonical_identities() {
        assert_eq!(SpaceCoercion::id(&Type::DYN), SpaceCoercion::IdDyn);
        assert!(SpaceCoercion::id(&Type::INT).check(&Type::INT, &Type::INT));
        let ii = Type::fun(Type::INT, Type::INT);
        assert!(SpaceCoercion::id(&ii).check(&ii, &ii));
        assert!(!SpaceCoercion::id(&ii).is_identity());
        assert!(SpaceCoercion::IdDyn.is_identity());
        assert!(SpaceCoercion::id_base(BaseType::Int).is_identity());
    }

    #[test]
    fn source_and_target_lemma() {
        // Lemma 13: an intermediate coercion's source is never ?;
        // a ground coercion's source and target are never ? and both
        // are compatible with the same unique ground type.
        let samples: Vec<SpaceCoercion> = vec![
            SpaceCoercion::id_base(BaseType::Int),
            SpaceCoercion::inj(
                GroundCoercion::IdBase(BaseType::Bool),
                Ground::Base(BaseType::Bool),
            ),
            SpaceCoercion::fun(SpaceCoercion::IdDyn, SpaceCoercion::IdDyn),
        ];
        for s in &samples {
            if let SpaceCoercion::Mid(i) = s {
                let (src, _) = i.synthesize().expect("no failures in samples");
                assert!(!src.is_dyn(), "{s}");
            }
        }
        // Ground coercion endpoints share their ground type.
        let g = GroundCoercion::Fun(Rc::new(SpaceCoercion::IdDyn), Rc::new(SpaceCoercion::IdDyn));
        let (src, tgt) = g.synthesize().unwrap();
        assert_eq!(src.ground_of(), tgt.ground_of());
    }

    #[test]
    fn typing_of_projection_form() {
        // Int?p ; idInt : ? ⇒ Int
        let s = SpaceCoercion::proj(
            gi(),
            p(0),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Int)),
        );
        assert!(s.check(&Type::DYN, &Type::INT));
        assert_eq!(s.synthesize(), Some((Type::DYN, Type::INT)));
        // idInt ; Int! : Int ⇒ ?
        let t = SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi());
        assert!(t.check(&Type::INT, &Type::DYN));
    }

    #[test]
    fn height_and_size() {
        let s = SpaceCoercion::fun(
            SpaceCoercion::IdDyn,
            SpaceCoercion::fun(SpaceCoercion::IdDyn, SpaceCoercion::IdDyn),
        );
        assert_eq!(s.height(), 3);
        assert!(s.size() <= 3 * (2usize.pow(3) - 1));
    }

    #[test]
    fn inclusion_into_lambda_c_types_the_same() {
        let s = SpaceCoercion::proj(
            gi(),
            p(0),
            Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi()),
        );
        let c = s.to_coercion();
        assert!(c.check(&Type::DYN, &Type::DYN));
        assert!(s.check(&Type::DYN, &Type::DYN));
    }

    #[test]
    fn safety_matches_label_mention() {
        let s = SpaceCoercion::proj(gi(), p(3), Intermediate::Fail(gi(), p(4), Ground::Fun));
        assert!(!s.safe_for(p(3)));
        assert!(!s.safe_for(p(4)));
        assert!(s.safe_for(p(5)));
        assert_eq!(s.labels(), vec![p(3), p(4)]);
    }
}
