//! Blame safety `M safeS q` for λS — as λC, a term is safe for `q`
//! iff none of its coercions mention `q` (Figure 3, applied mutatis
//! mutandis per §4).

use bc_syntax::Label;

use crate::term::Term;

/// Whether `M safeS q`.
pub fn term_safe_for(term: &Term, q: Label) -> bool {
    match term {
        Term::Const(_) | Term::Var(_) => true,
        Term::Blame(p, _) => *p != q,
        Term::Op(_, args) => args.iter().all(|a| term_safe_for(a, q)),
        Term::Lam(_, _, b) | Term::Fix(_, _, _, _, b) => term_safe_for(b, q),
        Term::Coerce(m, s) => term_safe_for(m, q) && s.safe_for(q),
        Term::App(a, b) | Term::Let(_, a, b) => term_safe_for(a, q) && term_safe_for(b, q),
        Term::If(a, b, c) => term_safe_for(a, q) && term_safe_for(b, q) && term_safe_for(c, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
    use crate::eval;
    use crate::typing::type_of;
    use bc_syntax::{BaseType, Ground, Label};

    #[test]
    fn interned_safety_agrees_with_tree_safety() {
        let gi = Ground::Base(BaseType::Int);
        let s = SpaceCoercion::proj(
            gi,
            Label::new(3),
            Intermediate::Fail(gi, Label::new(4), Ground::Fun),
        );
        let mut arena = crate::arena::CoercionArena::new();
        let id = arena.intern(&s);
        for q in [Label::new(3), Label::new(4), Label::new(5)] {
            assert_eq!(arena.safe_for(id, q), s.safe_for(q), "{q}");
        }
    }

    #[test]
    fn safety_is_preserved_by_merging() {
        // Composition can only *lose* labels, never invent them, so
        // safety is preserved by the merge rule.
        let gi = Ground::Base(BaseType::Int);
        let gb = Ground::Base(BaseType::Bool);
        let q = Label::new(1);
        let r = Label::new(2);
        let m = Term::int(7)
            .coerce(SpaceCoercion::inj(
                GroundCoercion::IdBase(BaseType::Int),
                gi,
            ))
            .coerce(SpaceCoercion::proj(
                gb,
                q,
                Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
            ));
        assert!(!term_safe_for(&m, q));
        assert!(term_safe_for(&m, r));
        let ty = type_of(&m).unwrap();
        let mut cur = m;
        let mut ctx = crate::arena::MergeCtx::new();
        loop {
            match eval::step_in(&mut ctx, &cur, &ty) {
                eval::Step::Next(n) => {
                    assert!(term_safe_for(&n, r), "safety preserved at {n}");
                    cur = n;
                }
                eval::Step::Blame(l) => {
                    assert_eq!(l, q);
                    break;
                }
                eval::Step::Value => panic!("expected blame"),
            }
        }
    }
}
