//! Property-based tests for the λS composition operator `#`
//! (experiment E11 of DESIGN.md): Proposition 14 (height preservation),
//! the size-bounded-by-height corollary, associativity, identity laws,
//! typing, and canonicity — all over randomly generated canonical
//! coercions.

use bc_core::coercion::SpaceCoercion;
use bc_core::compose::compose;
use bc_syntax::Type;
use bc_testkit::Gen;
use proptest::prelude::*;

/// Generates a composable pair `s : A ⇒ B`, `t : B ⇒ C`.
fn composable_pair(gen: &mut Gen) -> (SpaceCoercion, Type, SpaceCoercion, Type, Type) {
    let src = gen.ty(2);
    let (s, mid) = gen.space_from(&src, 3);
    let (t, tgt) = gen.space_from(&mid, 3);
    (s, src, t, mid, tgt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Proposition 14: ‖s # t‖ ≤ max(‖s‖, ‖t‖).
    #[test]
    fn height_bound(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert!(
            st.height() <= s.height().max(t.height()),
            "‖{s} # {t}‖ = {} > max({}, {})",
            st.height(), s.height(), t.height()
        );
    }

    /// A space-efficient coercion of height h has size ≤ 3·(2^h − 1):
    /// bounded height implies bounded size, the other half of the
    /// space-efficiency argument.
    #[test]
    fn size_bounded_by_height(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, _) = gen.space_from(&src, 4);
        let h = s.height() as u32;
        prop_assert!(
            s.size() <= 3 * (2usize.pow(h) - 1),
            "size({s}) = {} exceeds the bound for height {h}",
            s.size()
        );
    }

    /// Composition is associative — the property whose absence makes
    /// naive coercion normalisation painful, and which canonical forms
    /// get for free.
    #[test]
    fn associativity(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, mid1) = gen.space_from(&src, 3);
        let (t, mid2) = gen.space_from(&mid1, 3);
        let (u, _) = gen.space_from(&mid2, 3);
        let left = compose(&compose(&s, &t), &u);
        let right = compose(&s, &compose(&t, &u));
        prop_assert_eq!(left, right);
    }

    /// `id # s = s = s # id` at the appropriate types.
    #[test]
    fn identity_laws(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, tgt) = gen.space_from(&src, 3);
        prop_assert_eq!(compose(&SpaceCoercion::id(&src), &s), s.clone());
        prop_assert_eq!(compose(&s, &SpaceCoercion::id(&tgt)), s);
    }

    /// `s : A ⇒ B` and `t : B ⇒ C` give `s # t : A ⇒ C`.
    #[test]
    fn composition_preserves_typing(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, src, t, _, tgt) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert!(st.check(&src, &tgt), "{} at {} => {}", st, src, tgt);
    }

    /// Composition of canonical forms is canonical: including the
    /// result into λC and re-normalising is the identity.
    #[test]
    fn composition_is_canonical(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert_eq!(bc_translate::coercion_to_space(&st.to_coercion()), st);
    }

    /// Labels of the composite are a subset of the operands' labels:
    /// composition never invents blame (safety preservation).
    #[test]
    fn no_new_labels(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        let mut allowed = s.labels();
        allowed.extend(t.labels());
        for l in st.labels() {
            prop_assert!(allowed.contains(&l), "label {} appeared from nowhere", l);
        }
    }

    /// `#` agrees with λC composition under normalisation:
    /// `|  |s|SC ; |t|SC  |CS = s # t`.
    #[test]
    fn agrees_with_lambda_c_composition(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let via_c = bc_translate::coercion_to_space(
            &s.to_coercion().seq(t.to_coercion()),
        );
        prop_assert_eq!(via_c, compose(&s, &t));
    }
}
