//! Property-based tests for the λS composition operator `#`
//! (experiment E11 of DESIGN.md): Proposition 14 (height preservation),
//! the size-bounded-by-height corollary, associativity, identity laws,
//! typing, and canonicity — all over randomly generated canonical
//! coercions.
//!
//! The second half checks the hash-consing arena against the tree
//! specification: `intern`/`resolve` are mutually inverse, interned
//! composition agrees with tree composition, and composing through
//! the [`ComposeCache`] equals composing without it.

use bc_core::arena::{CoercionArena, ComposeCache};
use bc_core::coercion::SpaceCoercion;
use bc_core::compose::compose;
use bc_syntax::Type;
use bc_testkit::Gen;
use proptest::prelude::*;

/// Generates a composable pair `s : A ⇒ B`, `t : B ⇒ C`.
fn composable_pair(gen: &mut Gen) -> (SpaceCoercion, Type, SpaceCoercion, Type, Type) {
    let src = gen.ty(2);
    let (s, mid) = gen.space_from(&src, 3);
    let (t, tgt) = gen.space_from(&mid, 3);
    (s, src, t, mid, tgt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Proposition 14: ‖s # t‖ ≤ max(‖s‖, ‖t‖).
    #[test]
    fn height_bound(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert!(
            st.height() <= s.height().max(t.height()),
            "‖{s} # {t}‖ = {} > max({}, {})",
            st.height(), s.height(), t.height()
        );
    }

    /// A space-efficient coercion of height h has size ≤ 3·(2^h − 1):
    /// bounded height implies bounded size, the other half of the
    /// space-efficiency argument.
    #[test]
    fn size_bounded_by_height(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, _) = gen.space_from(&src, 4);
        let h = s.height() as u32;
        prop_assert!(
            s.size() <= 3 * (2usize.pow(h) - 1),
            "size({s}) = {} exceeds the bound for height {h}",
            s.size()
        );
    }

    /// Composition is associative — the property whose absence makes
    /// naive coercion normalisation painful, and which canonical forms
    /// get for free.
    #[test]
    fn associativity(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, mid1) = gen.space_from(&src, 3);
        let (t, mid2) = gen.space_from(&mid1, 3);
        let (u, _) = gen.space_from(&mid2, 3);
        let left = compose(&compose(&s, &t), &u);
        let right = compose(&s, &compose(&t, &u));
        prop_assert_eq!(left, right);
    }

    /// `id # s = s = s # id` at the appropriate types.
    #[test]
    fn identity_laws(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, tgt) = gen.space_from(&src, 3);
        prop_assert_eq!(compose(&SpaceCoercion::id(&src), &s), s.clone());
        prop_assert_eq!(compose(&s, &SpaceCoercion::id(&tgt)), s);
    }

    /// `s : A ⇒ B` and `t : B ⇒ C` give `s # t : A ⇒ C`.
    #[test]
    fn composition_preserves_typing(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, src, t, _, tgt) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert!(st.check(&src, &tgt), "{} at {} => {}", st, src, tgt);
    }

    /// Composition of canonical forms is canonical: including the
    /// result into λC and re-normalising is the identity.
    #[test]
    fn composition_is_canonical(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        prop_assert_eq!(bc_translate::coercion_to_space(&st.to_coercion()), st);
    }

    /// Labels of the composite are a subset of the operands' labels:
    /// composition never invents blame (safety preservation).
    #[test]
    fn no_new_labels(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let st = compose(&s, &t);
        let mut allowed = s.labels();
        allowed.extend(t.labels());
        for l in st.labels() {
            prop_assert!(allowed.contains(&l), "label {} appeared from nowhere", l);
        }
    }

    /// `#` agrees with λC composition under normalisation:
    /// `|  |s|SC ; |t|SC  |CS = s # t`.
    #[test]
    fn agrees_with_lambda_c_composition(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let via_c = bc_translate::coercion_to_space(
            &s.to_coercion().seq(t.to_coercion()),
        );
        prop_assert_eq!(via_c, compose(&s, &t));
    }

    /// Invariant 2 of the arena: `resolve ∘ intern = id`, and interning
    /// twice yields the same id (canonicity, invariant 1).
    #[test]
    fn intern_resolve_is_the_identity(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let src = gen.ty(2);
        let (s, _) = gen.space_from(&src, 4);
        let mut arena = CoercionArena::new();
        let id = arena.intern(&s);
        prop_assert_eq!(arena.resolve(id), s.clone(), "resolve ∘ intern on {}", s);
        prop_assert_eq!(arena.intern(&s), id, "re-interning {} changed its id", s);
        // Precomputed metadata matches the tree queries.
        prop_assert_eq!(arena.height(id), s.height());
        prop_assert_eq!(arena.size(id), s.size());
    }

    /// Invariant 4: interned composition agrees with tree composition
    /// on randomized composable pairs.
    #[test]
    fn interned_compose_agrees_with_tree_compose(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let (s, _, t, _, _) = composable_pair(&mut gen);
        let mut arena = CoercionArena::new();
        let mut cache = ComposeCache::new();
        let a = arena.intern(&s);
        let b = arena.intern(&t);
        let ab = arena.compose(&mut cache, a, b);
        prop_assert_eq!(
            arena.resolve(ab),
            compose(&s, &t),
            "interned {} # {} diverged from the tree recursion", s, t
        );
        // The composite is itself canonical in the arena: interning
        // the tree composite returns the very same id.
        prop_assert_eq!(arena.intern(&compose(&s, &t)), ab);
    }

    /// Compose-via-cache equals compose-without-cache: a warm cache
    /// answers with exactly the id a cold arena computes, for every
    /// pair — including pairs revisited in any order.
    #[test]
    fn cached_compose_equals_uncached_compose(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        // One warm arena+cache reused across several pairs…
        let mut warm_arena = CoercionArena::new();
        let mut warm_cache = ComposeCache::new();
        let mut pairs = Vec::new();
        for _ in 0..4 {
            let (s, _, t, _, _) = composable_pair(&mut gen);
            pairs.push((s, t));
        }
        // …revisit every pair twice (second visit hits the cache).
        for _round in 0..2 {
            for (s, t) in &pairs {
                let a = warm_arena.intern(s);
                let b = warm_arena.intern(t);
                let cached = warm_arena.compose(&mut warm_cache, a, b);
                // A cold arena with a fresh cache is "without cache":
                // every composition is computed structurally.
                let mut cold_arena = CoercionArena::new();
                let mut cold_cache = ComposeCache::new();
                let ca = cold_arena.intern(s);
                let cb = cold_arena.intern(t);
                let uncached = cold_arena.compose(&mut cold_cache, ca, cb);
                prop_assert_eq!(
                    warm_arena.resolve(cached),
                    cold_arena.resolve(uncached),
                    "cache changed the result of {} # {}", s, t
                );
            }
        }
        let stats = warm_cache.stats();
        prop_assert!(stats.hits >= pairs.len() as u64, "second round must hit: {:?}", stats);
    }
}
