//! Garcia 2013's *supercoercions* and their interpretation `N(·)`
//! into coercions (§6.3 of the PLDI 2015 paper).
//!
//! Garcia derives threesomes from coercions via ten supercoercion
//! constructors; their composition function has *sixty* cases and "was
//! too large to publish". The PLDI 2015 point is that the λS
//! composition subsumes it in ten lines — which we demonstrate by
//! composing supercoercions as `|N(c̈₁) ; N(c̈₂)|CS`.
//!
//! One adaptation: Garcia's `Fail^l` does not record ground types, but
//! our `⊥GpH` does (they are needed for the λS canonical form), so the
//! failure constructors here carry their grounds explicitly; `N(·)` is
//! otherwise the table from the paper, with Garcia's right-to-left `∘`
//! rendered as left-to-right `;`.

use std::fmt;
use std::rc::Rc;

use bc_core::coercion::SpaceCoercion;
use bc_lambda_c::coercion::Coercion;
use bc_syntax::{BaseType, Ground, Label, Type};
use bc_translate::coercion_to_space;

/// Garcia's atomic types `P` (a base type or `?`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicType {
    /// A base type.
    Base(BaseType),
    /// The dynamic type.
    Dyn,
}

impl AtomicType {
    /// As an ordinary type.
    pub fn ty(self) -> Type {
        match self {
            AtomicType::Base(b) => b.ty(),
            AtomicType::Dyn => Type::Dyn,
        }
    }
}

/// The ten supercoercion constructors `c̈`.
#[derive(Debug, Clone, PartialEq)]
pub enum Supercoercion {
    /// `ι_P` — identity at an atomic type.
    IdAtomic(AtomicType),
    /// `Fail^l` — outright failure (grounds made explicit; see module
    /// docs).
    Fail {
        /// Blame label.
        label: Label,
        /// Source ground type.
        source: Ground,
        /// The ground type the failed projection named.
        target: Ground,
    },
    /// `Fail^{l₁ G l₂}` = `Fail^{l₁} ∘ G?^{l₂}` — project, then fail.
    FailProj {
        /// Blame label of the failure.
        label: Label,
        /// The ground type projected at.
        ground: Ground,
        /// Label of the leading projection.
        proj_label: Label,
        /// The ground type the failure names.
        target: Ground,
    },
    /// `G!` — injection.
    Inj(Ground),
    /// `G?^l` — projection.
    Proj(Ground, Label),
    /// `G?^l!` = `G! ∘ G?^l` — project and re-inject.
    ProjInj(Ground, Label),
    /// `c̈₁ → c̈₂` — function supercoercion.
    Fun(Rc<Supercoercion>, Rc<Supercoercion>),
    /// `c̈₁ !→ c̈₂` = `(?→?)! ∘ (c̈₁ → c̈₂)`.
    FunInj(Rc<Supercoercion>, Rc<Supercoercion>),
    /// `c̈₁ →?^l c̈₂` = `(c̈₁ → c̈₂) ∘ (?→?)?^l`.
    FunProj(Label, Rc<Supercoercion>, Rc<Supercoercion>),
    /// `c̈₁ !→?^l c̈₂` = `(?→?)! ∘ (c̈₁ → c̈₂) ∘ (?→?)?^l`.
    FunProjInj(Label, Rc<Supercoercion>, Rc<Supercoercion>),
}

impl Supercoercion {
    /// The interpretation `N(·)` into λC coercions (the table of
    /// §6.3, with `∘` read right-to-left and rendered as `;`).
    pub fn to_coercion(&self) -> Coercion {
        match self {
            Supercoercion::IdAtomic(p) => Coercion::id(p.ty()),
            Supercoercion::Fail {
                label,
                source,
                target,
            } => Coercion::fail(*source, *label, *target),
            Supercoercion::FailProj {
                label,
                ground,
                proj_label,
                target,
            } => Coercion::proj(*ground, *proj_label).seq(Coercion::fail(*ground, *label, *target)),
            Supercoercion::Inj(g) => Coercion::inj(*g),
            Supercoercion::Proj(g, l) => Coercion::proj(*g, *l),
            Supercoercion::ProjInj(g, l) => Coercion::proj(*g, *l).seq(Coercion::inj(*g)),
            Supercoercion::Fun(c1, c2) => Coercion::fun(c1.to_coercion(), c2.to_coercion()),
            Supercoercion::FunInj(c1, c2) => {
                Coercion::fun(c1.to_coercion(), c2.to_coercion()).seq(Coercion::inj(Ground::Fun))
            }
            Supercoercion::FunProj(l, c1, c2) => Coercion::proj(Ground::Fun, *l)
                .seq(Coercion::fun(c1.to_coercion(), c2.to_coercion())),
            Supercoercion::FunProjInj(l, c1, c2) => Coercion::proj(Ground::Fun, *l)
                .seq(Coercion::fun(c1.to_coercion(), c2.to_coercion()))
                .seq(Coercion::inj(Ground::Fun)),
        }
    }

    /// The canonical λS form of this supercoercion, `|N(c̈)|CS`.
    pub fn to_space(&self) -> SpaceCoercion {
        coercion_to_space(&self.to_coercion())
    }

    /// Composes two supercoercions *through λS*: `|N(c̈₁) ; N(c̈₂)|CS`.
    /// This single expression replaces Garcia's sixty-case table.
    pub fn compose_via_space(&self, other: &Supercoercion) -> SpaceCoercion {
        coercion_to_space(&self.to_coercion().seq(other.to_coercion()))
    }
}

impl fmt::Display for Supercoercion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Supercoercion::IdAtomic(p) => write!(f, "ι[{}]", p.ty()),
            Supercoercion::Fail { label, .. } => write!(f, "Fail^{label}"),
            Supercoercion::FailProj {
                label,
                ground,
                proj_label,
                ..
            } => write!(f, "Fail^[{label} {ground} {proj_label}]"),
            Supercoercion::Inj(g) => write!(f, "({g})!"),
            Supercoercion::Proj(g, l) => write!(f, "({g})?{l}"),
            Supercoercion::ProjInj(g, l) => write!(f, "({g})?{l}!"),
            Supercoercion::Fun(a, b) => write!(f, "({a} -> {b})"),
            Supercoercion::FunInj(a, b) => write!(f, "({a} !-> {b})"),
            Supercoercion::FunProj(l, a, b) => write!(f, "({a} ->?{l} {b})"),
            Supercoercion::FunProjInj(l, a, b) => write!(f, "({a} !->?{l} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::coercion::{GroundCoercion, Intermediate};

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    fn all_samples() -> Vec<(Supercoercion, Type, Type)> {
        let id_i = Rc::new(Supercoercion::IdAtomic(AtomicType::Dyn));
        vec![
            (
                Supercoercion::IdAtomic(AtomicType::Base(BaseType::Int)),
                Type::INT,
                Type::INT,
            ),
            (
                Supercoercion::Fail {
                    label: p(0),
                    source: gi(),
                    target: Ground::Fun,
                },
                Type::INT,
                Type::BOOL,
            ),
            (
                Supercoercion::FailProj {
                    label: p(0),
                    ground: gi(),
                    proj_label: p(1),
                    target: Ground::Fun,
                },
                Type::DYN,
                Type::BOOL,
            ),
            (Supercoercion::Inj(gi()), Type::INT, Type::DYN),
            (Supercoercion::Proj(gi(), p(2)), Type::DYN, Type::INT),
            (Supercoercion::ProjInj(gi(), p(2)), Type::DYN, Type::DYN),
            (
                Supercoercion::Fun(id_i.clone(), id_i.clone()),
                Type::dyn_fun(),
                Type::dyn_fun(),
            ),
            (
                Supercoercion::FunInj(id_i.clone(), id_i.clone()),
                Type::dyn_fun(),
                Type::DYN,
            ),
            (
                Supercoercion::FunProj(p(3), id_i.clone(), id_i.clone()),
                Type::DYN,
                Type::dyn_fun(),
            ),
            (
                Supercoercion::FunProjInj(p(3), id_i.clone(), id_i),
                Type::DYN,
                Type::DYN,
            ),
        ]
    }

    #[test]
    fn all_ten_constructors_translate_and_type_check() {
        for (sc, src, tgt) in all_samples() {
            let c = sc.to_coercion();
            assert!(
                c.check(&src, &tgt),
                "N({sc}) = {c} must coerce {src} ⇒ {tgt}"
            );
        }
    }

    #[test]
    fn normalisation_is_canonical() {
        // G?l! normalises to the canonical projection-then-injection.
        let sc = Supercoercion::ProjInj(gi(), p(0));
        assert_eq!(
            sc.to_space(),
            SpaceCoercion::proj(
                gi(),
                p(0),
                Intermediate::Inj(GroundCoercion::IdBase(BaseType::Int), gi())
            )
        );
    }

    #[test]
    fn composition_via_space_subsumes_the_sixty_case_table() {
        // Every composable pair of sample supercoercions composes via
        // the ten-line λS # — no sixty-case dispatch needed.
        let samples = all_samples();
        let mut composed = 0usize;
        for (c1, _, t1) in &samples {
            for (c2, s2, _) in &samples {
                if t1 == s2 {
                    let s = c1.compose_via_space(c2);
                    // The result is canonical: re-normalising its λC
                    // inclusion is the identity.
                    assert_eq!(coercion_to_space(&s.to_coercion()), s, "{c1} ; {c2}");
                    composed += 1;
                }
            }
        }
        assert!(composed >= 20, "only {composed} composable pairs");
    }

    #[test]
    fn projection_then_injection_cancels_against_matching_injection() {
        // Int! composed with Int?l! is Int! again (modulo canonical form).
        let inj = Supercoercion::Inj(gi());
        let proj_inj = Supercoercion::ProjInj(gi(), p(0));
        assert_eq!(
            inj.compose_via_space(&proj_inj),
            SpaceCoercion::inj(GroundCoercion::IdBase(BaseType::Int), gi())
        );
    }
}
