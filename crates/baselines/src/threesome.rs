//! Threesomes, with blame: the labeled types of Siek–Wadler 2010
//! (§6.1 of the PLDI 2015 paper).
//!
//! A threesome `⟨T ⇐P⇐ S⟩` factors a cast into a downcast `S ⇒ P`
//! followed by an upcast `P ⇒ T`, where the *labeled* mediating type
//! `P` records how blame is allocated:
//!
//! ```text
//! p, q ::= l | ε                     (optional labels)
//! P, Q ::= B^p | P →^p Q | ? | ⊥^{lGp}
//! ```
//!
//! Two threesomes collapse by taking the meet of their labeled types,
//! written `Q ∘ P` (note the reversal: `P` is applied first). The
//! paper reproduces the composition table and observes that its
//! correctness "is not immediate" — e.g. why do `P^{Gp}` and `⊥^{mHl}`
//! compose to `⊥^{lGp}`? — whereas each λS equation is justified
//! directly by Henglein's theory. Here we implement the table verbatim
//! and *validate it against λS*: erasing canonical coercions to
//! labeled types ([`from_space`]) is a homomorphism from `#` to `∘`.

use std::fmt;
use std::rc::Rc;

use bc_core::coercion::{GroundCoercion, Intermediate, SpaceCoercion};
use bc_syntax::{BaseType, Ground, Label};

/// A labeled type `P, Q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabeledType {
    /// The dynamic type `?`.
    Dyn,
    /// A base type with an optional topmost label, `B^p`.
    Base(BaseType, Option<Label>),
    /// A function type with an optional topmost label, `P →^p Q`.
    Fun(Rc<LabeledType>, Rc<LabeledType>, Option<Label>),
    /// The failure `⊥^{lGp}`: blame label `l`, source ground `G`, and
    /// an optional leading projection label `p`.
    Fail {
        /// The label blamed when the failure is reached.
        blame: Label,
        /// The ground type at which the mismatch occurred.
        ground: Ground,
        /// The optional label of a leading projection (`⊥^{lGp}`
        /// corresponds to the λS coercion `G?p ; ⊥…`).
        proj: Option<Label>,
    },
}

impl LabeledType {
    /// The topmost optional blame label of a labeled type (the `p` in
    /// the paper's `P^{Gp}` pattern).
    pub fn topmost(&self) -> Option<Label> {
        match self {
            LabeledType::Dyn => None,
            LabeledType::Base(_, p) | LabeledType::Fun(_, _, p) => *p,
            LabeledType::Fail { proj, .. } => *proj,
        }
    }

    /// The ground type a (non-`?`, non-`⊥`) labeled type is compatible
    /// with (the `G` in `P^{Gp}`).
    pub fn ground(&self) -> Option<Ground> {
        match self {
            LabeledType::Base(b, _) => Some(Ground::Base(*b)),
            LabeledType::Fun(_, _, _) => Some(Ground::Fun),
            LabeledType::Dyn | LabeledType::Fail { .. } => None,
        }
    }

    /// Replaces the topmost label.
    #[must_use]
    pub fn with_topmost(&self, p: Label) -> LabeledType {
        match self {
            LabeledType::Dyn => unreachable!("? has no label position"),
            LabeledType::Base(b, _) => LabeledType::Base(*b, Some(p)),
            LabeledType::Fun(a, c, _) => LabeledType::Fun(a.clone(), c.clone(), Some(p)),
            LabeledType::Fail { blame, ground, .. } => LabeledType::Fail {
                blame: *blame,
                ground: *ground,
                proj: Some(p),
            },
        }
    }
}

impl fmt::Display for LabeledType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lab = |p: &Option<Label>| p.map_or(String::new(), |l| format!("^{l}"));
        match self {
            LabeledType::Dyn => f.write_str("?"),
            LabeledType::Base(b, p) => write!(f, "{b}{}", lab(p)),
            LabeledType::Fun(a, b, p) => write!(f, "({a} ->{} {b})", lab(p)),
            LabeledType::Fail {
                blame,
                ground,
                proj,
            } => write!(f, "⊥^[{blame},{ground}{}]", lab(proj)),
        }
    }
}

/// The Siek–Wadler composition `Q ∘ P` (the meet of labeled types;
/// `P` is the threesome applied first).
///
/// # Panics
///
/// Panics when asked to compose shapes that cannot arise from
/// well-typed threesomes (e.g. a ground mismatch where the later type
/// carries no projection label to blame).
pub fn compose_labeled(q: &LabeledType, p: &LabeledType) -> LabeledType {
    match (q, p) {
        // P ∘ ? = P and ? ∘ P = P.
        (q, LabeledType::Dyn) => q.clone(),
        (LabeledType::Dyn, p) => p.clone(),
        // Q ∘ ⊥^{mGp} = ⊥^{mGp}.
        (_, LabeledType::Fail { .. }) => p.clone(),
        // ⊥^{mGq} ∘ P^{Gp} = ⊥^{mGp}  /  ⊥^{mHl} ∘ P^{Gp} = ⊥^{lGp}.
        (
            LabeledType::Fail {
                blame,
                ground,
                proj,
            },
            _,
        ) => {
            let pg = p.ground().expect("? and ⊥ handled above");
            if *ground == pg {
                LabeledType::Fail {
                    blame: *blame,
                    ground: pg,
                    proj: p.topmost(),
                }
            } else {
                LabeledType::Fail {
                    blame: proj.expect("mismatched composition needs a projection label"),
                    ground: pg,
                    proj: p.topmost(),
                }
            }
        }
        // B^q ∘ B^p = B^p.
        (LabeledType::Base(bq, _), LabeledType::Base(bp, pl)) if bq == bp => {
            LabeledType::Base(*bp, *pl)
        }
        // (P′ →^q Q′) ∘ (P →^p Q) = (P ∘ P′) →^p (Q′ ∘ Q).
        (LabeledType::Fun(p2, q2, _), LabeledType::Fun(p1, q1, pl)) => LabeledType::Fun(
            Rc::new(compose_labeled(p1, p2)),
            Rc::new(compose_labeled(q2, q1)),
            *pl,
        ),
        // Q^{Hm} ∘ P^{Gp} = ⊥^{mGp}  (G ≠ H).
        (q, p) => {
            let m = q
                .topmost()
                .expect("mismatched composition needs a projection label");
            LabeledType::Fail {
                blame: m,
                ground: p.ground().expect("? and ⊥ handled above"),
                proj: p.topmost(),
            }
        }
    }
}

/// Erases a canonical λS coercion to its Siek–Wadler labeled type —
/// the paper's claimed one-to-one correspondence (injections are
/// recoverable from the threesome's endpoints, so erasure drops them).
pub fn from_space(s: &SpaceCoercion) -> LabeledType {
    match s {
        SpaceCoercion::IdDyn => LabeledType::Dyn,
        SpaceCoercion::Proj(_, p, i) => from_intermediate(i).with_topmost(*p),
        SpaceCoercion::Mid(i) => from_intermediate(i),
    }
}

fn from_intermediate(i: &Intermediate) -> LabeledType {
    match i {
        Intermediate::Inj(g, _) | Intermediate::Ground(g) => from_ground(g),
        Intermediate::Fail(g, p, _) => LabeledType::Fail {
            blame: *p,
            ground: *g,
            proj: None,
        },
    }
}

fn from_ground(g: &GroundCoercion) -> LabeledType {
    match g {
        GroundCoercion::IdBase(b) => LabeledType::Base(*b, None),
        GroundCoercion::Fun(s, t) => {
            LabeledType::Fun(Rc::new(from_space(s)), Rc::new(from_space(t)), None)
        }
    }
}

/// Erases an *interned* canonical λS coercion
/// ([`bc_core::arena::CoercionId`]) to its labeled type, so the
/// comparison harness can work directly off a
/// [`bc_core::arena::CoercionArena`] without rebuilding trees first.
pub fn from_interned(
    arena: &bc_core::arena::CoercionArena,
    id: bc_core::arena::CoercionId,
) -> LabeledType {
    use bc_core::arena::{GNode, INode, SNode};
    let from_g = |g: GNode| match g {
        GNode::IdBase(b) => LabeledType::Base(b, None),
        GNode::Fun(s, t) => LabeledType::Fun(
            Rc::new(from_interned(arena, s)),
            Rc::new(from_interned(arena, t)),
            None,
        ),
    };
    let from_i = |i: INode| match i {
        INode::Inj(g, _) | INode::Ground(g) => from_g(g),
        INode::Fail(g, p, _) => LabeledType::Fail {
            blame: p,
            ground: g,
            proj: None,
        },
    };
    match arena.node(id) {
        SNode::IdDyn => LabeledType::Dyn,
        SNode::Proj(_, p, i) => from_i(i).with_topmost(p),
        SNode::Mid(i) => from_i(i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::compose::compose;

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn gb() -> Ground {
        Ground::Base(BaseType::Bool)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }
    fn id_int() -> GroundCoercion {
        GroundCoercion::IdBase(BaseType::Int)
    }

    #[test]
    fn interned_erasure_agrees_with_tree_erasure() {
        use bc_core::arena::CoercionArena;
        let mut arena = CoercionArena::new();
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let samples = [
            SpaceCoercion::IdDyn,
            inj.clone(),
            proj.clone(),
            SpaceCoercion::fun(inj.clone(), proj.clone()),
            SpaceCoercion::fail(gi(), p(2), gb()),
        ];
        for s in &samples {
            let id = arena.intern(s);
            assert_eq!(from_interned(&arena, id), from_space(s), "{s}");
        }
    }

    /// The homomorphism: erasure maps `s # t` to `map(t) ∘ map(s)`.
    fn homomorphic(s: &SpaceCoercion, t: &SpaceCoercion) {
        let lhs = from_space(&compose(s, t));
        let rhs = compose_labeled(&from_space(t), &from_space(s));
        assert_eq!(lhs, rhs, "erasure of {s} # {t}");
    }

    #[test]
    fn base_round_trip() {
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        homomorphic(&inj, &proj);
        homomorphic(&proj, &inj);
        homomorphic(&SpaceCoercion::IdDyn, &proj);
        homomorphic(&inj, &SpaceCoercion::IdDyn);
    }

    #[test]
    fn ground_mismatch_produces_the_right_failure() {
        // (idInt ; Int!) # (Bool?m ; idBool) = ⊥^{m,Int,ε}.
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(
            gb(),
            p(1),
            Intermediate::Ground(GroundCoercion::IdBase(BaseType::Bool)),
        );
        homomorphic(&inj, &proj);
        let composed = compose_labeled(&from_space(&proj), &from_space(&inj));
        assert_eq!(
            composed,
            LabeledType::Fail {
                blame: p(1),
                ground: gi(),
                proj: None
            }
        );
    }

    #[test]
    fn the_puzzling_rule_from_the_paper() {
        // §6.1: "why do P^{Gp} and ⊥^{mHl} compose to yield ⊥^{lGp}?"
        // Because the later threesome's mismatched *projection* (l) is
        // what fires; λS derives this from (g;G!) # (H?l;i) = ⊥GlH.
        let s = SpaceCoercion::proj(gi(), p(7), Intermediate::Inj(id_int(), gi()));
        // t projects at Bool (≠ Int) with label l, then fails with m.
        let t = SpaceCoercion::proj(gb(), p(8), Intermediate::Fail(gb(), p(9), Ground::Fun));
        homomorphic(&s, &t);
        let composed = compose_labeled(&from_space(&t), &from_space(&s));
        assert_eq!(
            composed,
            LabeledType::Fail {
                blame: p(8), // l — the projection label, not m = p(9)!
                ground: gi(),
                proj: Some(p(7)),
            }
        );
    }

    #[test]
    fn function_rule_swaps_and_keeps_the_first_label() {
        let inj = SpaceCoercion::inj(id_int(), gi());
        let proj = SpaceCoercion::proj(gi(), p(0), Intermediate::Ground(id_int()));
        let f1 = SpaceCoercion::fun(inj.clone(), proj.clone());
        let f2 = SpaceCoercion::fun(proj.clone(), inj.clone());
        homomorphic(&f1, &f2);
    }

    #[test]
    fn failure_absorbs() {
        let fail = SpaceCoercion::fail(gi(), p(2), gb());
        homomorphic(&fail, &SpaceCoercion::id_base(BaseType::Bool));
        homomorphic(&SpaceCoercion::id_base(BaseType::Int), &fail);
    }

    #[test]
    fn display_is_readable() {
        let l = LabeledType::Fail {
            blame: p(0),
            ground: gi(),
            proj: Some(p(1)),
        };
        assert_eq!(l.to_string(), "⊥^[p0,Int^p1]");
    }
}
