//! Baseline composition algebras that the paper compares against
//! (§6.1–§6.3), implemented for validation and benchmarking:
//!
//! * [`threesome`] — Siek–Wadler 2010 labeled types and their
//!   composition `Q ∘ P`, the "easy to compute, hard to understand"
//!   predecessor of λS's `#`. We validate the paper's claimed
//!   correspondence: `s # t` maps onto `Q ∘ P` under the erasure of
//!   canonical coercions to labeled types.
//! * [`supercoercion`] — Garcia 2013's ten supercoercion constructors
//!   with the `N(·)` interpretation into λC coercions. Garcia derives
//!   a sixty-case composition table; we show the ten-line λS `#`
//!   subsumes it by composing through normalisation.
//! * [`naive`] — a Henglein-style rewriting normaliser for λC
//!   coercions ("easy to understand, hard to compute"): it flattens
//!   compositions and rewrites adjacent pairs to a fixed point,
//!   paying the associativity juggling that λS's canonical grammar
//!   avoids. Used as the ablation baseline in the `compose` benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod supercoercion;
pub mod threesome;
