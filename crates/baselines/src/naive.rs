//! A Henglein-style *rewriting* normaliser for λC coercions — the
//! "easy to understand, hard to compute" baseline (Herman et al.
//! 2007/2010).
//!
//! Compositions are flattened into sequences (this is where the
//! associativity juggling the paper complains about gets paid: the
//! rewrite rules only fire on *adjacent* coercions, so sequences must
//! be reassociated/rescanned until a fixed point). Contrast with λS,
//! where the canonical grammar makes composition a single structural
//! recursion.

use std::rc::Rc;

use bc_lambda_c::coercion::Coercion;

/// Normalises a coercion by Henglein's rewrite rules:
///
/// ```text
/// id ; c        ⇒ c                 c ; id        ⇒ c
/// G! ; G?p      ⇒ id_G              G! ; H?p      ⇒ ⊥GpH   (G ≠ H)
/// (c→d);(c'→d') ⇒ (c';c) → (d;d')   ⊥GpH ; c      ⇒ ⊥GpH
/// c ; ⊥GpH      ⇒ ⊥GpH              (c a ground-type coercion)
/// ```
///
/// applied under reassociation until no rule fires. The result is
/// equal (as a canonical form) to `|c|CS`, but computed the slow way —
/// this function is the ablation baseline of the `compose` benchmark.
pub fn normalize(c: &Coercion) -> Coercion {
    let mut atoms = Vec::new();
    flatten(c, &mut atoms);
    simplify(&mut atoms);
    rebuild(atoms, c)
}

/// Flattens nested compositions into a sequence of non-`Seq` atoms,
/// recursively normalising under function coercions.
fn flatten(c: &Coercion, out: &mut Vec<Coercion>) {
    match c {
        Coercion::Seq(a, b) => {
            flatten(a, out);
            flatten(b, out);
        }
        Coercion::Fun(a, b) => {
            out.push(Coercion::Fun(Rc::new(normalize(a)), Rc::new(normalize(b))))
        }
        other => out.push(other.clone()),
    }
}

/// Rewrites adjacent atoms until a fixed point.
fn simplify(atoms: &mut Vec<Coercion>) {
    loop {
        // Drop identities.
        let before = atoms.len();
        atoms.retain(|a| !matches!(a, Coercion::Id(_)));
        let mut changed = atoms.len() != before;

        let mut i = 0;
        while i + 1 < atoms.len() {
            let replacement: Option<Vec<Coercion>> = match (&atoms[i], &atoms[i + 1]) {
                // G! ; G?p ⇒ id (dropped)  /  G! ; H?p ⇒ ⊥GpH.
                (Coercion::Inj(g), Coercion::Proj(h, p)) => {
                    if g == h {
                        Some(vec![])
                    } else {
                        Some(vec![Coercion::Fail(*g, *p, *h)])
                    }
                }
                // (c→d) ; (c'→d') ⇒ (c';c) → (d;d').
                (Coercion::Fun(c1, d1), Coercion::Fun(c2, d2)) => Some(vec![Coercion::Fun(
                    Rc::new(normalize(&Coercion::Seq(c2.clone(), c1.clone()))),
                    Rc::new(normalize(&Coercion::Seq(d1.clone(), d2.clone()))),
                )]),
                // ⊥ absorbs whatever follows.
                (Coercion::Fail(g, p, h), _) => Some(vec![Coercion::Fail(*g, *p, *h)]),
                // A ground-type coercion before ⊥ is absorbed.
                (Coercion::Fun(_, _), Coercion::Fail(g, p, h)) => {
                    Some(vec![Coercion::Fail(*g, *p, *h)])
                }
                _ => None,
            };
            if let Some(rep) = replacement {
                atoms.splice(i..i + 2, rep);
                changed = true;
                i = i.saturating_sub(1);
            } else {
                i += 1;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Rebuilds a sequence into a right-nested composition; an empty
/// sequence is the identity at the original coercion's (necessarily
/// equal) endpoints.
fn rebuild(atoms: Vec<Coercion>, original: &Coercion) -> Coercion {
    atoms
        .into_iter()
        .reduce(|acc, next| acc.seq(next))
        .unwrap_or_else(|| {
            let ty = original
                .synthesize()
                .map(|(a, _)| a)
                .unwrap_or(bc_syntax::Type::Dyn);
            Coercion::id(ty)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_syntax::{BaseType, Ground, Label, Type};
    use bc_translate::coercion_to_space;

    fn gi() -> Ground {
        Ground::Base(BaseType::Int)
    }
    fn p(n: u32) -> Label {
        Label::new(n)
    }

    /// The naive normal form agrees with the λS canonical form.
    fn agrees(c: &Coercion) {
        assert_eq!(
            coercion_to_space(&normalize(c)),
            coercion_to_space(c),
            "naive normalisation of {c}"
        );
    }

    #[test]
    fn identity_elimination() {
        let c = Coercion::id(Type::INT).seq(Coercion::inj(gi()));
        assert_eq!(normalize(&c), Coercion::inj(gi()));
        agrees(&c);
    }

    #[test]
    fn round_trip_cancels() {
        let c = Coercion::inj(gi()).seq(Coercion::proj(gi(), p(0)));
        assert_eq!(normalize(&c), Coercion::id(Type::INT));
        agrees(&c);
    }

    #[test]
    fn mismatch_fails() {
        let c = Coercion::inj(gi()).seq(Coercion::proj(Ground::Base(BaseType::Bool), p(0)));
        assert_eq!(
            normalize(&c),
            Coercion::fail(gi(), p(0), Ground::Base(BaseType::Bool))
        );
    }

    #[test]
    fn function_fusion_is_contravariant() {
        let f1 = Coercion::fun(Coercion::proj(gi(), p(0)), Coercion::inj(gi()));
        let f2 = Coercion::fun(Coercion::inj(gi()), Coercion::proj(gi(), p(1)));
        let c = f1.seq(f2);
        agrees(&c);
        match normalize(&c) {
            Coercion::Fun(dom, _) => {
                // Domain: inj ; proj — cancels to the identity.
                assert_eq!(*dom, Coercion::id(Type::INT));
            }
            other => panic!("expected function coercion, got {other}"),
        }
    }

    #[test]
    fn deep_reassociation() {
        // ((Int! ; Int?p) ; Int!) ; Int?q needs two cancellation
        // rounds across the reassociated sequence.
        let c = Coercion::inj(gi())
            .seq(Coercion::proj(gi(), p(0)))
            .seq(Coercion::inj(gi()))
            .seq(Coercion::proj(gi(), p(1)));
        assert_eq!(normalize(&c), Coercion::id(Type::INT));
        agrees(&c);
    }

    #[test]
    fn failure_absorbs_right_and_left() {
        let fail = Coercion::fail(gi(), p(0), Ground::Fun);
        let c = fail.clone().seq(Coercion::id(Type::BOOL));
        assert_eq!(normalize(&c), fail);
        let f = Coercion::fun(Coercion::id(Type::DYN), Coercion::id(Type::DYN));
        let c2 = f.seq(Coercion::fail(Ground::Fun, p(1), gi()));
        assert_eq!(normalize(&c2), Coercion::fail(Ground::Fun, p(1), gi()));
    }

    #[test]
    fn normalisation_is_idempotent() {
        let c = Coercion::inj(gi())
            .seq(Coercion::proj(gi(), p(0)))
            .seq(Coercion::inj(gi()));
        let once = normalize(&c);
        assert_eq!(normalize(&once), once);
    }
}
