//! The gradual type checker and cast-insertion pass (after Siek–Taha
//! 2006 and Wadler–Findler 2009).
//!
//! Where a static checker demands type *equality*, the gradual checker
//! demands *consistency* (`A ∼ B`, [`bc_syntax::Type::compatible`])
//! and inserts a λB cast `A ⇒p B` with a fresh blame label `p` at each
//! point where precision changes. The output is a λB term together
//! with a map from blame labels back to the source spans that
//! introduced them — running the program and catching `blame p` thus
//! produces a *source-level* diagnostic pointing at the boundary at
//! fault.

use std::collections::HashMap;

use bc_lambda_b::term::Term;
use bc_lambda_b::BTerm;
use bc_syntax::label::LabelSupply;
use bc_syntax::{BaseType, Constant, Name, TNode, Type, TypeArena, TypeId};

use crate::ast::{Expr, ExprI, ExprKind};
use crate::diagnostics::{Diagnostic, Span};

/// The result of elaborating a GTLC program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The compiled λB term.
    pub term: Term,
    /// The type of the whole program.
    pub ty: Type,
    /// Maps each inserted blame label id to the source span of the
    /// expression whose implicit conversion it guards.
    pub blame_spans: HashMap<u32, Span>,
}

/// Renders a blame label as a source diagnostic, given an
/// elaboration's label-to-span map.
fn explain_blame_at(
    blame_spans: &HashMap<u32, Span>,
    label: bc_syntax::Label,
    source: &str,
) -> Option<String> {
    let span = *blame_spans.get(&label.id())?;
    let side = if label.is_positive() {
        "the more dynamically typed side of this boundary"
    } else {
        "the context of this boundary"
    };
    Some(
        Diagnostic::new(
            format!("cast failed at run time; blame falls on {side}"),
            span,
        )
        .render(source),
    )
}

impl Program {
    /// Renders a blame label as a source diagnostic, if the label was
    /// introduced by this program's elaboration.
    pub fn explain_blame(&self, label: bc_syntax::Label, source: &str) -> Option<String> {
        explain_blame_at(&self.blame_spans, label, source)
    }
}

/// The result of elaborating a GTLC program against a shared
/// [`TypeArena`] — the interned counterpart of [`Program`], produced
/// by [`elaborate_in`].
///
/// The λB term is the same tree [`elaborate`] produces (λB is the
/// exchange format downstream translations consume); the program type
/// is an arena handle, and every type the elaboration touched is
/// interned in the arena the caller passed, so a warm arena makes a
/// structurally similar recompile intern nothing.
#[derive(Debug, Clone)]
pub struct ProgramI {
    /// The compiled λB term.
    pub term: Term,
    /// The type of the whole program, interned in the caller's arena.
    pub ty: TypeId,
    /// Maps each inserted blame label id to the source span of the
    /// expression whose implicit conversion it guards.
    pub blame_spans: HashMap<u32, Span>,
}

impl ProgramI {
    /// Renders a blame label as a source diagnostic, if the label was
    /// introduced by this program's elaboration.
    pub fn explain_blame(&self, label: bc_syntax::Label, source: &str) -> Option<String> {
        explain_blame_at(&self.blame_spans, label, source)
    }

    /// Resolves the program type and converts to the tree-typed
    /// [`Program`] (the exchange form).
    pub fn into_program(self, types: &mut TypeArena) -> Program {
        Program {
            term: self.term,
            ty: types.resolve_shared(self.ty),
            blame_spans: self.blame_spans,
        }
    }
}

/// Elaborates a surface expression into λB, checking gradual typing
/// and inserting casts.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on inconsistent types, unbound variables,
/// or applications of non-functions.
pub fn elaborate(expr: &Expr) -> Result<Program, Diagnostic> {
    let mut cx = Context {
        labels: LabelSupply::new(),
        blame_spans: HashMap::new(),
        env: Vec::new(),
    };
    let (term, ty) = cx.infer(expr)?;
    Ok(Program {
        term,
        ty,
        blame_spans: cx.blame_spans,
    })
}

struct Context {
    labels: LabelSupply,
    blame_spans: HashMap<u32, Span>,
    env: Vec<(Name, Type)>,
}

impl Context {
    /// Wraps `term : from` in a cast to `to` (a no-op when the types
    /// are equal), recording the span for blame reporting.
    fn coerce(&mut self, term: Term, from: &Type, to: &Type, span: Span) -> Term {
        if from == to {
            return term;
        }
        debug_assert!(from.compatible(to), "coerce on inconsistent types");
        let label = self.labels.fresh();
        self.blame_spans.insert(label.id(), span);
        term.cast(from.clone(), label, to.clone())
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| &**n == name)
            .map(|(_, t)| t.clone())
    }

    fn infer(&mut self, expr: &Expr) -> Result<(Term, Type), Diagnostic> {
        match &expr.kind {
            ExprKind::Int(n) => Ok((Term::int(*n), Type::INT)),
            ExprKind::Bool(b) => Ok((Term::bool(*b), Type::BOOL)),
            ExprKind::Var(x) => match self.lookup(x) {
                Some(t) => Ok((Term::Var(Name::from(x.as_str())), t)),
                None => Err(Diagnostic::new(
                    format!("unbound variable `{x}`"),
                    expr.span,
                )),
            },
            ExprKind::Lam { param, ty, body } => {
                self.env.push((Name::from(param.as_str()), ty.clone()));
                let result = self.infer(body);
                self.env.pop();
                let (bt, b_ty) = result?;
                Ok((
                    Term::Lam(Name::from(param.as_str()), ty.clone(), bt.into()),
                    Type::fun(ty.clone(), b_ty),
                ))
            }
            ExprKind::App(fun, arg) => {
                let (ft, f_ty) = self.infer(fun)?;
                let (at, a_ty) = self.infer(arg)?;
                match &f_ty {
                    // Applying a dynamic value: cast it to ? → ? and
                    // inject the argument.
                    Type::Dyn => {
                        let ft = self.coerce(ft, &Type::DYN, &Type::dyn_fun(), fun.span);
                        let at = self.coerce(at, &a_ty, &Type::DYN, arg.span);
                        Ok((ft.app(at), Type::DYN))
                    }
                    Type::Fun(dom, cod) => {
                        if !a_ty.compatible(dom) {
                            return Err(Diagnostic::new(
                                format!(
                                    "this argument has type `{a_ty}`, but the function expects `{dom}`"
                                ),
                                arg.span,
                            ));
                        }
                        let at = self.coerce(at, &a_ty, dom, arg.span);
                        Ok((ft.app(at), (**cod).clone()))
                    }
                    other => Err(Diagnostic::new(
                        format!("cannot call a value of type `{other}`"),
                        fun.span,
                    )),
                }
            }
            ExprKind::Prim(op, args) => {
                let (params, result) = op.signature();
                debug_assert_eq!(params.len(), args.len(), "parser arity mismatch");
                let mut terms = Vec::with_capacity(args.len());
                for (param, arg) in params.iter().zip(args) {
                    let (at, a_ty) = self.infer(arg)?;
                    if !a_ty.compatible(&param.ty()) {
                        return Err(Diagnostic::new(
                            format!(
                                "operator `{op}` expects `{}`, but this has type `{a_ty}`",
                                param.ty()
                            ),
                            arg.span,
                        ));
                    }
                    terms.push(self.coerce(at, &a_ty, &param.ty(), arg.span));
                }
                Ok((Term::Op(*op, terms), result.ty()))
            }
            ExprKind::If(cond, then_, else_) => {
                let (ct, c_ty) = self.infer(cond)?;
                if !c_ty.compatible(&Type::BOOL) {
                    return Err(Diagnostic::new(
                        format!("the condition has type `{c_ty}`, expected `Bool`"),
                        cond.span,
                    ));
                }
                let ct = self.coerce(ct, &c_ty, &Type::BOOL, cond.span);
                let (tt, t_ty) = self.infer(then_)?;
                let (et, e_ty) = self.infer(else_)?;
                let joined = join(&t_ty, &e_ty).ok_or_else(|| {
                    Diagnostic::new(
                        format!("branches have inconsistent types `{t_ty}` and `{e_ty}`"),
                        expr.span,
                    )
                })?;
                let tt = self.coerce(tt, &t_ty, &joined, then_.span);
                let et = self.coerce(et, &e_ty, &joined, else_.span);
                Ok((Term::If(ct.into(), tt.into(), et.into()), joined))
            }
            ExprKind::Let {
                name,
                ty,
                bound,
                body,
            } => {
                let (bt, b_ty) = self.infer(bound)?;
                let (bt, bind_ty) = match ty {
                    Some(annot) => {
                        if !b_ty.compatible(annot) {
                            return Err(Diagnostic::new(
                                format!(
                                    "`{name}` is annotated `{annot}` but bound to a value of type `{b_ty}`"
                                ),
                                bound.span,
                            ));
                        }
                        (self.coerce(bt, &b_ty, annot, bound.span), annot.clone())
                    }
                    None => (bt, b_ty),
                };
                self.env.push((Name::from(name.as_str()), bind_ty));
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    Term::Let(Name::from(name.as_str()), bt.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Letrec {
                name,
                param,
                param_ty,
                result_ty,
                fun_body,
                body,
            } => {
                let fun_ty = Type::fun(param_ty.clone(), result_ty.clone());
                self.env.push((Name::from(name.as_str()), fun_ty.clone()));
                self.env
                    .push((Name::from(param.as_str()), param_ty.clone()));
                let fun_result = self.infer(fun_body);
                self.env.pop();
                let (ft, f_ty) = match fun_result {
                    Ok(r) => r,
                    Err(e) => {
                        self.env.pop();
                        return Err(e);
                    }
                };
                if !f_ty.compatible(result_ty) {
                    self.env.pop();
                    return Err(Diagnostic::new(
                        format!(
                            "`{name}` is declared to return `{result_ty}` but its body has type `{f_ty}`"
                        ),
                        fun_body.span,
                    ));
                }
                let ft = self.coerce(ft, &f_ty, result_ty, fun_body.span);
                let fix = Term::Fix(
                    Name::from(name.as_str()),
                    Name::from(param.as_str()),
                    param_ty.clone(),
                    result_ty.clone(),
                    ft.into(),
                );
                // `name` is still bound (to the function) in the body.
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    Term::Let(Name::from(name.as_str()), fix.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Ascribe(inner, ty) => {
                let (it, i_ty) = self.infer(inner)?;
                if !i_ty.compatible(ty) {
                    return Err(Diagnostic::new(
                        format!("cannot ascribe type `{ty}` to a value of type `{i_ty}`"),
                        expr.span,
                    ));
                }
                Ok((self.coerce(it, &i_ty, ty, expr.span), ty.clone()))
            }
        }
    }
}

/// Elaborates a surface expression into λB against a caller-owned
/// [`TypeArena`]: the interned fast path of [`elaborate`].
///
/// The inference environment holds [`TypeId`]s, every consistency
/// check goes through the arena's memoized [`TypeArena::compatible`],
/// and the conditional join runs on ids ([`TypeArena::join`]) — no
/// structural type equality anywhere, and repeated types cost no fresh
/// `Rc` spine (tree annotations on the emitted term are materialised
/// through the arena's shared-resolve memo). Agreement with
/// [`elaborate`] — same term, same type, same blame spans, same
/// diagnostics on ill-typed input — is validated by property test.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on inconsistent types, unbound variables,
/// or applications of non-functions — byte-identical to the one
/// [`elaborate`] produces.
pub fn elaborate_in(expr: &Expr, types: &mut TypeArena) -> Result<ProgramI, Diagnostic> {
    let mut cx = ContextI {
        labels: LabelSupply::new(),
        blame_spans: HashMap::new(),
        env: Vec::new(),
        types,
    };
    let (term, ty) = cx.infer(expr)?;
    Ok(ProgramI {
        term,
        ty,
        blame_spans: cx.blame_spans,
    })
}

/// The interned elaboration context: [`Context`] with the environment
/// and all comparisons on [`TypeId`]s.
struct ContextI<'a> {
    labels: LabelSupply,
    blame_spans: HashMap<u32, Span>,
    env: Vec<(Name, TypeId)>,
    types: &'a mut TypeArena,
}

impl ContextI<'_> {
    /// Wraps `term : from` in a cast to `to` (a no-op when the ids are
    /// equal — hash-consing canonicity makes that the structural
    /// equality of the tree elaborator), recording the span for blame
    /// reporting.
    fn coerce(&mut self, term: Term, from: TypeId, to: TypeId, span: Span) -> Term {
        if from == to {
            return term;
        }
        debug_assert!(
            self.types.compatible(from, to),
            "coerce on inconsistent types"
        );
        let label = self.labels.fresh();
        self.blame_spans.insert(label.id(), span);
        let source = self.types.resolve_shared(from);
        let target = self.types.resolve_shared(to);
        term.cast(source, label, target)
    }

    fn lookup(&self, name: &str) -> Option<TypeId> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| &**n == name)
            .map(|(_, t)| *t)
    }

    fn infer(&mut self, expr: &Expr) -> Result<(Term, TypeId), Diagnostic> {
        match &expr.kind {
            ExprKind::Int(n) => Ok((Term::int(*n), self.types.base(BaseType::Int))),
            ExprKind::Bool(b) => Ok((Term::bool(*b), self.types.base(BaseType::Bool))),
            ExprKind::Var(x) => match self.lookup(x) {
                Some(t) => Ok((Term::Var(Name::from(x.as_str())), t)),
                None => Err(Diagnostic::new(
                    format!("unbound variable `{x}`"),
                    expr.span,
                )),
            },
            ExprKind::Lam { param, ty, body } => {
                let tid = self.types.intern(ty);
                self.env.push((Name::from(param.as_str()), tid));
                let result = self.infer(body);
                self.env.pop();
                let (bt, b_ty) = result?;
                Ok((
                    Term::Lam(Name::from(param.as_str()), ty.clone(), bt.into()),
                    self.types.fun(tid, b_ty),
                ))
            }
            ExprKind::App(fun, arg) => {
                let (ft, f_ty) = self.infer(fun)?;
                let (at, a_ty) = self.infer(arg)?;
                match self.types.node(f_ty) {
                    // Applying a dynamic value: cast it to ? → ? and
                    // inject the argument.
                    TNode::Dyn => {
                        let dyn_id = self.types.dyn_ty();
                        let dyn_fun = self.types.fun(dyn_id, dyn_id);
                        let ft = self.coerce(ft, dyn_id, dyn_fun, fun.span);
                        let at = self.coerce(at, a_ty, dyn_id, arg.span);
                        Ok((ft.app(at), dyn_id))
                    }
                    TNode::Fun(dom, cod) => {
                        if !self.types.compatible(a_ty, dom) {
                            return Err(Diagnostic::new(
                                format!(
                                    "this argument has type `{}`, but the function expects `{}`",
                                    self.types.display(a_ty),
                                    self.types.display(dom)
                                ),
                                arg.span,
                            ));
                        }
                        let at = self.coerce(at, a_ty, dom, arg.span);
                        Ok((ft.app(at), cod))
                    }
                    TNode::Base(_) => Err(Diagnostic::new(
                        format!("cannot call a value of type `{}`", self.types.display(f_ty)),
                        fun.span,
                    )),
                }
            }
            ExprKind::Prim(op, args) => {
                let (params, result) = op.signature();
                debug_assert_eq!(params.len(), args.len(), "parser arity mismatch");
                let mut terms = Vec::with_capacity(args.len());
                for (param, arg) in params.iter().zip(args) {
                    let (at, a_ty) = self.infer(arg)?;
                    let param_id = self.types.base(*param);
                    if !self.types.compatible(a_ty, param_id) {
                        return Err(Diagnostic::new(
                            format!(
                                "operator `{op}` expects `{}`, but this has type `{}`",
                                param.ty(),
                                self.types.display(a_ty)
                            ),
                            arg.span,
                        ));
                    }
                    terms.push(self.coerce(at, a_ty, param_id, arg.span));
                }
                Ok((Term::Op(*op, terms), self.types.base(result)))
            }
            ExprKind::If(cond, then_, else_) => {
                let (ct, c_ty) = self.infer(cond)?;
                let bool_id = self.types.base(BaseType::Bool);
                if !self.types.compatible(c_ty, bool_id) {
                    return Err(Diagnostic::new(
                        format!(
                            "the condition has type `{}`, expected `Bool`",
                            self.types.display(c_ty)
                        ),
                        cond.span,
                    ));
                }
                let ct = self.coerce(ct, c_ty, bool_id, cond.span);
                let (tt, t_ty) = self.infer(then_)?;
                let (et, e_ty) = self.infer(else_)?;
                let joined = self.types.join(t_ty, e_ty).ok_or_else(|| {
                    Diagnostic::new(
                        format!(
                            "branches have inconsistent types `{}` and `{}`",
                            self.types.display(t_ty),
                            self.types.display(e_ty)
                        ),
                        expr.span,
                    )
                })?;
                let tt = self.coerce(tt, t_ty, joined, then_.span);
                let et = self.coerce(et, e_ty, joined, else_.span);
                Ok((Term::If(ct.into(), tt.into(), et.into()), joined))
            }
            ExprKind::Let {
                name,
                ty,
                bound,
                body,
            } => {
                let (bt, b_ty) = self.infer(bound)?;
                let (bt, bind_ty) = match ty {
                    Some(annot) => {
                        let annot_id = self.types.intern(annot);
                        if !self.types.compatible(b_ty, annot_id) {
                            return Err(Diagnostic::new(
                                format!(
                                    "`{name}` is annotated `{annot}` but bound to a value of type `{}`",
                                    self.types.display(b_ty)
                                ),
                                bound.span,
                            ));
                        }
                        (self.coerce(bt, b_ty, annot_id, bound.span), annot_id)
                    }
                    None => (bt, b_ty),
                };
                self.env.push((Name::from(name.as_str()), bind_ty));
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    Term::Let(Name::from(name.as_str()), bt.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Letrec {
                name,
                param,
                param_ty,
                result_ty,
                fun_body,
                body,
            } => {
                let param_id = self.types.intern(param_ty);
                let result_id = self.types.intern(result_ty);
                let fun_id = self.types.fun(param_id, result_id);
                self.env.push((Name::from(name.as_str()), fun_id));
                self.env.push((Name::from(param.as_str()), param_id));
                let fun_result = self.infer(fun_body);
                self.env.pop();
                let (ft, f_ty) = match fun_result {
                    Ok(r) => r,
                    Err(e) => {
                        self.env.pop();
                        return Err(e);
                    }
                };
                if !self.types.compatible(f_ty, result_id) {
                    self.env.pop();
                    return Err(Diagnostic::new(
                        format!(
                            "`{name}` is declared to return `{result_ty}` but its body has type `{}`",
                            self.types.display(f_ty)
                        ),
                        fun_body.span,
                    ));
                }
                let ft = self.coerce(ft, f_ty, result_id, fun_body.span);
                let fix = Term::Fix(
                    Name::from(name.as_str()),
                    Name::from(param.as_str()),
                    param_ty.clone(),
                    result_ty.clone(),
                    ft.into(),
                );
                // `name` is still bound (to the function) in the body.
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    Term::Let(Name::from(name.as_str()), fix.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Ascribe(inner, ty) => {
                let (it, i_ty) = self.infer(inner)?;
                let tid = self.types.intern(ty);
                if !self.types.compatible(i_ty, tid) {
                    return Err(Diagnostic::new(
                        format!(
                            "cannot ascribe type `{ty}` to a value of type `{}`",
                            self.types.display(i_ty)
                        ),
                        expr.span,
                    ));
                }
                Ok((self.coerce(it, i_ty, tid, expr.span), tid))
            }
        }
    }
}

/// The result of elaborating a GTLC program straight to the compiled
/// λB IR: the allocation-free counterpart of [`ProgramI`], produced by
/// [`elaborate_compiled`] from an already-interned [`ExprI`].
///
/// No `Rc<Type>` spine and no `Rc<Term>` tree is built anywhere on
/// this path — the term is an id-annotated [`BTerm`] whose every
/// annotation is a handle into the arena the caller parsed against.
/// The ids inherit that arena's offset contract (see
/// [`bc_lambda_b::bterm`]): compile before the arena freezes and the
/// program is portable to any session sharing the same frozen base.
#[derive(Debug, Clone)]
pub struct ProgramC {
    /// The compiled λB term.
    pub term: BTerm,
    /// The type of the whole program, interned in the caller's arena.
    pub ty: TypeId,
    /// Maps each inserted blame label id to the source span of the
    /// expression whose implicit conversion it guards.
    pub blame_spans: HashMap<u32, Span>,
}

impl ProgramC {
    /// Renders a blame label as a source diagnostic, if the label was
    /// introduced by this program's elaboration.
    pub fn explain_blame(&self, label: bc_syntax::Label, source: &str) -> Option<String> {
        explain_blame_at(&self.blame_spans, label, source)
    }
}

/// Elaborates an interned surface expression (from
/// [`parse_in`](crate::parser::parse_in)) straight into the compiled
/// λB IR — the final leg of the allocation-free front end.
///
/// Annotations arrive as [`TypeId`]s, every judgment runs on ids, and
/// the emitted [`BTerm`] carries those same ids: against a warm arena
/// the whole pass interns nothing and builds no tree node of any kind.
/// Labels, blame spans, and diagnostics agree exactly with
/// [`elaborate`] (the traversal order is identical), so
/// `decompile(term)` equals the tree elaboration — pinned by test.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on inconsistent types, unbound variables,
/// or applications of non-functions — byte-identical to the one
/// [`elaborate`] produces.
pub fn elaborate_compiled(expr: &ExprI, types: &mut TypeArena) -> Result<ProgramC, Diagnostic> {
    let mut cx = ContextC {
        labels: LabelSupply::new(),
        blame_spans: HashMap::new(),
        env: Vec::new(),
        types,
    };
    let (term, ty) = cx.infer(expr)?;
    Ok(ProgramC {
        term,
        ty,
        blame_spans: cx.blame_spans,
    })
}

/// The compiled elaboration context: [`ContextI`] emitting [`BTerm`]
/// instead of tree terms, with annotations pre-interned by the parser.
struct ContextC<'a> {
    labels: LabelSupply,
    blame_spans: HashMap<u32, Span>,
    env: Vec<(Name, TypeId)>,
    types: &'a mut TypeArena,
}

impl ContextC<'_> {
    /// Wraps `term : from` in a cast to `to` (a no-op when the ids are
    /// equal), recording the span for blame reporting. Unlike
    /// [`ContextI::coerce`] this never resolves an id to a tree — the
    /// cast node carries the ids themselves.
    fn coerce(&mut self, term: BTerm, from: TypeId, to: TypeId, span: Span) -> BTerm {
        if from == to {
            return term;
        }
        debug_assert!(
            self.types.compatible(from, to),
            "coerce on inconsistent types"
        );
        let label = self.labels.fresh();
        self.blame_spans.insert(label.id(), span);
        BTerm::Cast(term.into(), from, label, to)
    }

    fn lookup(&self, name: &str) -> Option<TypeId> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| &**n == name)
            .map(|(_, t)| *t)
    }

    fn infer(&mut self, expr: &ExprI) -> Result<(BTerm, TypeId), Diagnostic> {
        match &expr.kind {
            ExprKind::Int(n) => Ok((
                BTerm::Const(Constant::Int(*n)),
                self.types.base(BaseType::Int),
            )),
            ExprKind::Bool(b) => Ok((
                BTerm::Const(Constant::Bool(*b)),
                self.types.base(BaseType::Bool),
            )),
            ExprKind::Var(x) => match self.lookup(x) {
                Some(t) => Ok((BTerm::Var(Name::from(x.as_str())), t)),
                None => Err(Diagnostic::new(
                    format!("unbound variable `{x}`"),
                    expr.span,
                )),
            },
            ExprKind::Lam { param, ty, body } => {
                self.env.push((Name::from(param.as_str()), *ty));
                let result = self.infer(body);
                self.env.pop();
                let (bt, b_ty) = result?;
                Ok((
                    BTerm::Lam(Name::from(param.as_str()), *ty, bt.into()),
                    self.types.fun(*ty, b_ty),
                ))
            }
            ExprKind::App(fun, arg) => {
                let (ft, f_ty) = self.infer(fun)?;
                let (at, a_ty) = self.infer(arg)?;
                match self.types.node(f_ty) {
                    // Applying a dynamic value: cast it to ? → ? and
                    // inject the argument.
                    TNode::Dyn => {
                        let dyn_id = self.types.dyn_ty();
                        let dyn_fun = self.types.fun(dyn_id, dyn_id);
                        let ft = self.coerce(ft, dyn_id, dyn_fun, fun.span);
                        let at = self.coerce(at, a_ty, dyn_id, arg.span);
                        Ok((BTerm::App(ft.into(), at.into()), dyn_id))
                    }
                    TNode::Fun(dom, cod) => {
                        if !self.types.compatible(a_ty, dom) {
                            return Err(Diagnostic::new(
                                format!(
                                    "this argument has type `{}`, but the function expects `{}`",
                                    self.types.display(a_ty),
                                    self.types.display(dom)
                                ),
                                arg.span,
                            ));
                        }
                        let at = self.coerce(at, a_ty, dom, arg.span);
                        Ok((BTerm::App(ft.into(), at.into()), cod))
                    }
                    TNode::Base(_) => Err(Diagnostic::new(
                        format!("cannot call a value of type `{}`", self.types.display(f_ty)),
                        fun.span,
                    )),
                }
            }
            ExprKind::Prim(op, args) => {
                let (params, result) = op.signature();
                debug_assert_eq!(params.len(), args.len(), "parser arity mismatch");
                let mut terms = Vec::with_capacity(args.len());
                for (param, arg) in params.iter().zip(args) {
                    let (at, a_ty) = self.infer(arg)?;
                    let param_id = self.types.base(*param);
                    if !self.types.compatible(a_ty, param_id) {
                        return Err(Diagnostic::new(
                            format!(
                                "operator `{op}` expects `{}`, but this has type `{}`",
                                param.ty(),
                                self.types.display(a_ty)
                            ),
                            arg.span,
                        ));
                    }
                    terms.push(self.coerce(at, a_ty, param_id, arg.span));
                }
                Ok((BTerm::Op(*op, terms), self.types.base(result)))
            }
            ExprKind::If(cond, then_, else_) => {
                let (ct, c_ty) = self.infer(cond)?;
                let bool_id = self.types.base(BaseType::Bool);
                if !self.types.compatible(c_ty, bool_id) {
                    return Err(Diagnostic::new(
                        format!(
                            "the condition has type `{}`, expected `Bool`",
                            self.types.display(c_ty)
                        ),
                        cond.span,
                    ));
                }
                let ct = self.coerce(ct, c_ty, bool_id, cond.span);
                let (tt, t_ty) = self.infer(then_)?;
                let (et, e_ty) = self.infer(else_)?;
                let joined = self.types.join(t_ty, e_ty).ok_or_else(|| {
                    Diagnostic::new(
                        format!(
                            "branches have inconsistent types `{}` and `{}`",
                            self.types.display(t_ty),
                            self.types.display(e_ty)
                        ),
                        expr.span,
                    )
                })?;
                let tt = self.coerce(tt, t_ty, joined, then_.span);
                let et = self.coerce(et, e_ty, joined, else_.span);
                Ok((BTerm::If(ct.into(), tt.into(), et.into()), joined))
            }
            ExprKind::Let {
                name,
                ty,
                bound,
                body,
            } => {
                let (bt, b_ty) = self.infer(bound)?;
                let (bt, bind_ty) = match ty {
                    Some(annot_id) => {
                        if !self.types.compatible(b_ty, *annot_id) {
                            return Err(Diagnostic::new(
                                format!(
                                    "`{name}` is annotated `{}` but bound to a value of type `{}`",
                                    self.types.display(*annot_id),
                                    self.types.display(b_ty)
                                ),
                                bound.span,
                            ));
                        }
                        (self.coerce(bt, b_ty, *annot_id, bound.span), *annot_id)
                    }
                    None => (bt, b_ty),
                };
                self.env.push((Name::from(name.as_str()), bind_ty));
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    BTerm::Let(Name::from(name.as_str()), bt.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Letrec {
                name,
                param,
                param_ty,
                result_ty,
                fun_body,
                body,
            } => {
                let fun_id = self.types.fun(*param_ty, *result_ty);
                self.env.push((Name::from(name.as_str()), fun_id));
                self.env.push((Name::from(param.as_str()), *param_ty));
                let fun_result = self.infer(fun_body);
                self.env.pop();
                let (ft, f_ty) = match fun_result {
                    Ok(r) => r,
                    Err(e) => {
                        self.env.pop();
                        return Err(e);
                    }
                };
                if !self.types.compatible(f_ty, *result_ty) {
                    self.env.pop();
                    return Err(Diagnostic::new(
                        format!(
                            "`{name}` is declared to return `{}` but its body has type `{}`",
                            self.types.display(*result_ty),
                            self.types.display(f_ty)
                        ),
                        fun_body.span,
                    ));
                }
                let ft = self.coerce(ft, f_ty, *result_ty, fun_body.span);
                let fix = BTerm::Fix(
                    Name::from(name.as_str()),
                    Name::from(param.as_str()),
                    *param_ty,
                    *result_ty,
                    ft.into(),
                );
                // `name` is still bound (to the function) in the body.
                let result = self.infer(body);
                self.env.pop();
                let (nt, n_ty) = result?;
                Ok((
                    BTerm::Let(Name::from(name.as_str()), fix.into(), nt.into()),
                    n_ty,
                ))
            }
            ExprKind::Ascribe(inner, ty) => {
                let (it, i_ty) = self.infer(inner)?;
                if !self.types.compatible(i_ty, *ty) {
                    return Err(Diagnostic::new(
                        format!(
                            "cannot ascribe type `{}` to a value of type `{}`",
                            self.types.display(*ty),
                            self.types.display(i_ty)
                        ),
                        expr.span,
                    ));
                }
                Ok((self.coerce(it, i_ty, *ty, expr.span), *ty))
            }
        }
    }
}

/// The join (least upper bound with respect to precision `<:n`) of two
/// consistent types; `None` if the types are inconsistent.
fn join(a: &Type, b: &Type) -> Option<Type> {
    match (a, b) {
        (Type::Dyn, _) | (_, Type::Dyn) => Some(Type::Dyn),
        (Type::Base(x), Type::Base(y)) => (x == y).then(|| a.clone()),
        (Type::Fun(a1, a2), Type::Fun(b1, b2)) => Some(Type::fun(join(a1, b1)?, join(a2, b2)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use bc_lambda_b::eval::{run, Outcome};
    use bc_lambda_b::typing::type_of;

    fn compile_ok(src: &str) -> Program {
        compile(src).unwrap_or_else(|e| panic!("compile error:\n{}", e.render(src)))
    }

    fn eval_src(src: &str) -> Outcome {
        let p = compile_ok(src);
        // Elaboration must produce well-typed λB with the same type.
        assert_eq!(type_of(&p.term), Ok(p.ty.clone()), "on {src}");
        run(&p.term, 1_000_000).unwrap().outcome
    }

    #[test]
    fn statically_typed_programs_need_no_casts() {
        let p = compile_ok("let f = fun (x : Int) => x + 1 in f 41");
        assert_eq!(p.term.cast_count(), 0);
        assert_eq!(
            eval_src("let f = fun (x : Int) => x + 1 in f 41"),
            Outcome::Value(Term::int(42))
        );
    }

    #[test]
    fn dynamic_programs_insert_casts() {
        let p = compile_ok("let f = fun x => x + 1 in f 41");
        assert!(p.term.cast_count() > 0);
        assert_eq!(
            eval_src("let f = fun x => x + 1 in f 41"),
            Outcome::Value(Term::int(42))
        );
    }

    #[test]
    fn misuse_of_dynamic_blames_at_runtime() {
        match eval_src("let f = fun x => x + 1 in f true") {
            Outcome::Blame(_) => {}
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn blame_maps_back_to_source() {
        let src = "let f = fun x => x + 1 in f true";
        let p = compile_ok(src);
        match run(&p.term, 10_000).unwrap().outcome {
            Outcome::Blame(l) => {
                let msg = p.explain_blame(l, src).expect("label has a span");
                assert!(msg.contains("^"), "{msg}");
            }
            other => panic!("expected blame, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_static_types_are_rejected() {
        assert!(compile("1 + true").is_err());
        assert!(compile("(fun (x : Int) => x) true").is_err());
        assert!(compile("if 1 then 2 else 3").is_err());
        assert!(compile("(true : Int)").is_err());
        assert!(compile("x").is_err());
        assert!(compile("1 2").is_err());
    }

    #[test]
    fn dynamic_versions_are_accepted() {
        // The same programs go through once a ? intervenes.
        assert!(compile("(1 : ?) + 1").is_ok());
        assert!(compile("(fun (x : Int) => x) ((true : ?) : Int)").is_ok());
        assert!(compile("if (1 : ?) then 2 else 3").is_ok());
    }

    #[test]
    fn if_branches_join() {
        let p = compile_ok("if true then 1 else (2 : ?)");
        assert_eq!(p.ty, Type::DYN);
        // Int→Int joined with ?→Int is ?→Int.
        let p2 = compile_ok("if true then fun (x:Int) => x else fun y => (y : Int)");
        assert_eq!(p2.ty, Type::fun(Type::DYN, Type::INT));
    }

    #[test]
    fn letrec_parity() {
        let src = "letrec even (n : Int) : Bool = \
                     if n = 0 then true else \
                     if n = 1 then false else even (n - 2) \
                   in even 10";
        assert_eq!(eval_src(src), Outcome::Value(Term::bool(true)));
    }

    #[test]
    fn mixed_even_odd_from_the_paper() {
        // Typed even, untyped odd, mutually recursive through ?.
        let src = "letrec even (n : Int) : Bool = \
                     if n = 0 then true else (odd' : ?) (n - 1) \
                   in let odd' = fun m => if m = 0 then false else even (m - 1) \
                   in even 9";
        // `odd'` is not in scope inside `even` in this toy syntax, so
        // build it the other way round instead:
        let src2 = "let odd = fun even' => fun m => \
                      if m = 0 then false else even' (m - 1) \
                    in letrec even (n : Int) : Bool = \
                      if n = 0 then true else ((odd (even : ?)) (n - 1) : Bool) \
                    in even 9";
        let _ = src;
        assert_eq!(eval_src(src2), Outcome::Value(Term::bool(false)));
    }

    #[test]
    fn compiled_front_end_agrees_with_tree_front_end() {
        let srcs = [
            "let f = fun (x : Int) => x + 1 in f 41",
            "let f = fun x => x + 1 in f 41",
            "let f = fun x => x + 1 in f true",
            "if true then 1 else (2 : ?)",
            "if true then fun (x:Int) => x else fun y => (y : Int)",
            "letrec even (n : Int) : Bool = \
               if n = 0 then true else \
               if n = 1 then false else even (n - 2) \
             in even 10",
            "(fun (f : ? -> ?) => f 1) (fun x => x)",
        ];
        let mut types = TypeArena::new();
        for src in srcs {
            let tree = compile(src).unwrap();
            let compiled = crate::compile_compiled(src, &mut types).unwrap();
            assert_eq!(
                bc_lambda_b::bterm::decompile(&compiled.term, &types),
                tree.term,
                "on {src}"
            );
            assert_eq!(types.resolve(compiled.ty), tree.ty, "on {src}");
            assert_eq!(compiled.blame_spans, tree.blame_spans, "on {src}");
            // The compiled term is well-typed in place, at the program
            // type, with no tree ever built.
            assert_eq!(
                bc_lambda_b::type_of_compiled(&compiled.term, &mut types),
                Ok(compiled.ty),
                "on {src}"
            );
        }
    }

    #[test]
    fn compiled_front_end_interns_nothing_when_warm() {
        let src = "letrec loop (n : Int) : Int = \
                     if n = 0 then 0 else loop (n - 1) \
                   in loop 3";
        let mut types = TypeArena::new();
        let cold = crate::compile_compiled(src, &mut types).unwrap();
        let watermark = types.len();
        let warm = crate::compile_compiled(src, &mut types).unwrap();
        assert_eq!(types.len(), watermark, "warm recompile interned a type");
        assert_eq!(warm.term, cold.term);
        assert_eq!(warm.ty, cold.ty);
    }

    #[test]
    fn compiled_front_end_diagnostics_match() {
        for src in ["1 + true", "x", "1 2", "(true : Int)", "if 1 then 2 else 3"] {
            let mut types = TypeArena::new();
            let tree_err = compile(src).unwrap_err();
            let compiled_err = crate::compile_compiled(src, &mut types).unwrap_err();
            assert_eq!(compiled_err.render(src), tree_err.render(src), "on {src}");
        }
    }

    #[test]
    fn ascription_casts() {
        let p = compile_ok("(1 : ?)");
        assert_eq!(p.ty, Type::DYN);
        assert_eq!(p.term.cast_count(), 1);
    }
}
