//! Source spans and diagnostics for the GTLC front end.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The span covering both operands.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span (used for end-of-input diagnostics).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }
}

/// A compiler diagnostic: a message attached to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Where in the source the problem lies.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Creates a diagnostic with no source location — for errors
    /// raised past the front end (e.g. run-path type errors on
    /// calculus terms, which carry no spans). [`Diagnostic::render`]
    /// and `Display` omit the location for these instead of pointing
    /// at unrelated text.
    pub fn unlocated(message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(message, Span::point(0))
    }

    /// Whether this diagnostic carries no source location (a
    /// zero-width span at the very start locates nothing).
    pub fn is_unlocated(&self) -> bool {
        self.span.start == 0 && self.span.end == 0
    }

    /// Renders the diagnostic against the source text, with a caret
    /// line pointing at the offending span:
    ///
    /// ```text
    /// error: expected `then`
    ///   |
    /// 2 | if x els y
    ///   |      ^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        if self.is_unlocated() {
            return format!("error: {}", self.message);
        }
        let (line_no, col, line) = locate(source, self.span.start);
        let width = self.span.end.saturating_sub(self.span.start).max(1);
        let width = width.min(line.len().saturating_sub(col).max(1));
        let gutter = format!("{line_no}");
        let pad = " ".repeat(gutter.len());
        format!(
            "error: {}\n{pad} |\n{gutter} | {line}\n{pad} | {}{}",
            self.message,
            " ".repeat(col),
            "^".repeat(width),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unlocated() {
            return write!(f, "error: {}", self.message);
        }
        write!(
            f,
            "error at {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// Finds the 1-based line number, 0-based column, and line text
/// containing a byte offset.
fn locate(source: &str, offset: usize) -> (usize, usize, &str) {
    let mut line_start = 0usize;
    let mut line_no = 1usize;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line_start = i + 1;
            line_no += 1;
        }
    }
    let line_end = source[line_start..]
        .find('\n')
        .map_or(source.len(), |k| line_start + k);
    (line_no, offset - line_start, &source[line_start..line_end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge() {
        let s = Span::new(2, 5).merge(Span::new(4, 9));
        assert_eq!(s, Span::new(2, 9));
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "let x = 1 in\nif x els y";
        let d = Diagnostic::new("expected `then`", Span::new(18, 21));
        let rendered = d.render(src);
        assert!(rendered.contains("error: expected `then`"));
        assert!(rendered.contains("2 | if x els y"));
        assert!(rendered.contains("^^^"));
    }

    #[test]
    fn unlocated_diagnostics_claim_no_position() {
        let d = Diagnostic::unlocated("term has the wrong type");
        assert!(d.is_unlocated());
        assert_eq!(d.to_string(), "error: term has the wrong type");
        let rendered = d.render("let x = 1 in x");
        assert!(
            !rendered.contains('^'),
            "no caret may point at unrelated text:\n{rendered}"
        );
    }

    #[test]
    fn locate_handles_first_line() {
        let (line, col, text) = locate("abc def", 4);
        assert_eq!((line, col, text), (1, 4, "abc def"));
    }
}
