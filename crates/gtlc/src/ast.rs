//! The surface abstract syntax of the GTLC.

use bc_syntax::{Op, Type};

use crate::diagnostics::Span;

/// A surface expression, carrying the source span it was parsed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression proper.
    pub kind: ExprKind,
    /// Where it appears in the source.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A variable reference.
    Var(String),
    /// `fun (x : T) => e` — the annotation defaults to `?` when
    /// omitted (`fun x => e`), which is what makes the language
    /// gradual.
    Lam {
        /// Parameter name.
        param: String,
        /// Parameter type (`?` if unannotated).
        ty: Type,
        /// Function body.
        body: Box<Expr>,
    },
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// A primitive operator application (from `+`, `and`, `not`, …).
    Prim(Op, Vec<Expr>),
    /// `if c then t else e`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2` with optional annotation on `x`.
    Let {
        /// Bound name.
        name: String,
        /// Optional annotation.
        ty: Option<Type>,
        /// Bound expression.
        bound: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
    /// `letrec f (x : T1) : T2 = e1 in e2` — a recursive function.
    Letrec {
        /// Function name.
        name: String,
        /// Parameter name.
        param: String,
        /// Parameter type.
        param_ty: Type,
        /// Result type.
        result_ty: Type,
        /// Function body.
        fun_body: Box<Expr>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// A type ascription `(e : T)`.
    Ascribe(Box<Expr>, Type),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = Expr::new(ExprKind::Int(1), Span::new(0, 1));
        assert_eq!(e.span.end, 1);
        assert!(matches!(e.kind, ExprKind::Int(1)));
    }
}
