//! The surface abstract syntax of the GTLC.
//!
//! The AST is generic in its type-annotation representation `T`: the
//! tree-building parse path uses [`Expr`]`<Type>` (the default), and
//! the intern-at-parse path uses [`ExprI`] = [`Expr`]`<TypeId>`, whose
//! annotations are `Copy` handles into the [`TypeArena`] the parser
//! interned against — no `Rc<Type>` spine is ever built for an
//! annotation on that path. An `ExprI` is only meaningful alongside
//! its arena (ids are plain indices; see the id-offset contract on
//! `bc_lambda_b::bterm`).
//!
//! [`TypeArena`]: bc_syntax::TypeArena

use bc_syntax::{Op, Type, TypeId};

use crate::diagnostics::Span;

/// A surface expression, carrying the source span it was parsed from.
///
/// `T` is the type-annotation representation: tree [`Type`] (default)
/// or interned [`TypeId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Expr<T = Type> {
    /// The expression proper.
    pub kind: ExprKind<T>,
    /// Where it appears in the source.
    pub span: Span,
}

/// A surface expression with interned type annotations, as produced by
/// [`parse_in`](crate::parser::parse_in).
pub type ExprI = Expr<TypeId>;

impl<T> Expr<T> {
    /// Creates an expression node.
    pub fn new(kind: ExprKind<T>, span: Span) -> Expr<T> {
        Expr { kind, span }
    }
}

/// Expression shapes, generic in the annotation representation `T`.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind<T = Type> {
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A variable reference.
    Var(String),
    /// `fun (x : T) => e` — the annotation defaults to `?` when
    /// omitted (`fun x => e`), which is what makes the language
    /// gradual.
    Lam {
        /// Parameter name.
        param: String,
        /// Parameter type (`?` if unannotated).
        ty: T,
        /// Function body.
        body: Box<Expr<T>>,
    },
    /// Application `e1 e2`.
    App(Box<Expr<T>>, Box<Expr<T>>),
    /// A primitive operator application (from `+`, `and`, `not`, …).
    Prim(Op, Vec<Expr<T>>),
    /// `if c then t else e`.
    If(Box<Expr<T>>, Box<Expr<T>>, Box<Expr<T>>),
    /// `let x = e1 in e2` with optional annotation on `x`.
    Let {
        /// Bound name.
        name: String,
        /// Optional annotation.
        ty: Option<T>,
        /// Bound expression.
        bound: Box<Expr<T>>,
        /// Body.
        body: Box<Expr<T>>,
    },
    /// `letrec f (x : T1) : T2 = e1 in e2` — a recursive function.
    Letrec {
        /// Function name.
        name: String,
        /// Parameter name.
        param: String,
        /// Parameter type.
        param_ty: T,
        /// Result type.
        result_ty: T,
        /// Function body.
        fun_body: Box<Expr<T>>,
        /// Continuation.
        body: Box<Expr<T>>,
    },
    /// A type ascription `(e : T)`.
    Ascribe(Box<Expr<T>>, T),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e: Expr = Expr::new(ExprKind::Int(1), Span::new(0, 1));
        assert_eq!(e.span.end, 1);
        assert!(matches!(e.kind, ExprKind::Int(1)));
    }
}
