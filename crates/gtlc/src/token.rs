//! Tokens of the GTLC surface syntax.

use std::fmt;

use crate::diagnostics::Span;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),
    /// `fun`
    Fun,
    /// `let`
    Let,
    /// `letrec`
    Letrec,
    /// `in`
    In,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `true`
    True,
    /// `false`
    False,
    /// `not`
    Not,
    /// `and`
    And,
    /// `or`
    Or,
    /// `quot`
    Quot,
    /// `rem`
    Rem,
    /// `Int` (type)
    TyInt,
    /// `Bool` (type)
    TyBool,
    /// `?` (the dynamic type)
    Question,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<`
    Less,
    /// `<=`
    LessEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(n) => write!(f, "{n}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Fun => f.write_str("fun"),
            TokenKind::Let => f.write_str("let"),
            TokenKind::Letrec => f.write_str("letrec"),
            TokenKind::In => f.write_str("in"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Then => f.write_str("then"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::True => f.write_str("true"),
            TokenKind::False => f.write_str("false"),
            TokenKind::Not => f.write_str("not"),
            TokenKind::And => f.write_str("and"),
            TokenKind::Or => f.write_str("or"),
            TokenKind::Quot => f.write_str("quot"),
            TokenKind::Rem => f.write_str("rem"),
            TokenKind::TyInt => f.write_str("Int"),
            TokenKind::TyBool => f.write_str("Bool"),
            TokenKind::Question => f.write_str("?"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::FatArrow => f.write_str("=>"),
            TokenKind::Arrow => f.write_str("->"),
            TokenKind::Equals => f.write_str("="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Less => f.write_str("<"),
            TokenKind::LessEq => f.write_str("<="),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}
