//! Recursive-descent parser for the GTLC surface syntax.
//!
//! ```text
//! expr     := lambda | let | letrec | if | or
//! lambda   := "fun" (ident | "(" ident ":" type ")") "=>" expr
//! let      := "let" ident (":" type)? "=" expr "in" expr
//! letrec   := "letrec" ident "(" ident ":" type ")" ":" type "=" expr "in" expr
//! if       := "if" expr "then" expr "else" expr
//! or       := and ("or" and)*
//! and      := cmp ("and" cmp)*
//! cmp      := add (("=" | "<" | "<=") add)?
//! add      := mul (("+" | "-") mul)*
//! mul      := unary (("*" | "quot" | "rem") unary)*
//! unary    := "not" unary | "-" unary | app
//! app      := atom atom*
//! atom     := int | "true" | "false" | ident | "(" expr (":" type)? ")"
//! type     := tyatom ("->" type)?
//! tyatom   := "Int" | "Bool" | "?" | "(" type ")"
//! ```

use bc_syntax::{BaseType, Op, Type, TypeArena, TypeId};

use crate::ast::{Expr, ExprI, ExprKind};
use crate::diagnostics::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// How the parser builds type annotations: either as `Rc<Type>` trees
/// (the classic path) or by interning directly into a [`TypeArena`]
/// (the allocation-free path — the annotation never exists as a tree).
trait TyBuild {
    /// The annotation representation.
    type Ty;
    /// The base type `Int` / `Bool`.
    fn base(&mut self, b: BaseType) -> Self::Ty;
    /// The dynamic type `?`.
    fn dynamic(&mut self) -> Self::Ty;
    /// The function type `dom -> cod`.
    fn fun(&mut self, dom: Self::Ty, cod: Self::Ty) -> Self::Ty;
}

/// Tree-building annotations.
struct TreeTy;

impl TyBuild for TreeTy {
    type Ty = Type;
    fn base(&mut self, b: BaseType) -> Type {
        b.ty()
    }
    fn dynamic(&mut self) -> Type {
        Type::DYN
    }
    fn fun(&mut self, dom: Type, cod: Type) -> Type {
        Type::fun(dom, cod)
    }
}

/// Intern-at-parse annotations: types are built bottom-up as arena
/// ids, so a warm arena hands back existing ids and allocates nothing.
struct ArenaTy<'t>(&'t mut TypeArena);

impl TyBuild for ArenaTy<'_> {
    type Ty = TypeId;
    fn base(&mut self, b: BaseType) -> TypeId {
        self.0.base(b)
    }
    fn dynamic(&mut self) -> TypeId {
        self.0.dyn_ty()
    }
    fn fun(&mut self, dom: TypeId, cod: TypeId) -> TypeId {
        self.0.fun(dom, cod)
    }
}

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into
/// an expression.
///
/// # Errors
///
/// Returns a [`Diagnostic`] at the first syntax error.
pub fn parse(tokens: &[Token]) -> Result<Expr, Diagnostic> {
    let mut p = Parser {
        tokens,
        pos: 0,
        ty_build: TreeTy,
    };
    let e = p.expr()?;
    p.expect(&TokenKind::Eof, "expected end of input")?;
    Ok(e)
}

/// Parses a token stream with type annotations interned directly into
/// `types`: the same grammar as [`parse`], but no `Rc<Type>` spine is
/// ever built — each annotation is hash-consed bottom-up, so parsing
/// structurally similar source against a warm arena allocates no type
/// nodes at all.
///
/// # Errors
///
/// Returns a [`Diagnostic`] at the first syntax error — identical to
/// the one [`parse`] produces.
pub fn parse_in(tokens: &[Token], types: &mut TypeArena) -> Result<ExprI, Diagnostic> {
    let mut p = Parser {
        tokens,
        pos: 0,
        ty_build: ArenaTy(types),
    };
    let e = p.expr()?;
    p.expect(&TokenKind::Eof, "expected end of input")?;
    Ok(e)
}

struct Parser<'a, B> {
    tokens: &'a [Token],
    pos: usize,
    ty_build: B,
}

impl<'a, B: TyBuild> Parser<'a, B> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, message: &str) -> Result<Token, Diagnostic> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::new(
                format!("{message}, found `{}`", self.peek().kind),
                self.peek().span,
            ))
        }
    }

    fn ident(&mut self, message: &str) -> Result<(String, Span), Diagnostic> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                let span = self.peek().span;
                self.bump();
                Ok((s, span))
            }
            other => Err(Diagnostic::new(
                format!("{message}, found `{other}`"),
                self.peek().span,
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        match self.peek().kind {
            TokenKind::Fun => self.lambda(),
            TokenKind::Let => self.let_(),
            TokenKind::Letrec => self.letrec(),
            TokenKind::If => self.if_(),
            _ => self.or(),
        }
    }

    fn lambda(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let start = self.expect(&TokenKind::Fun, "expected `fun`")?.span;
        let (param, ty) = if self.eat(&TokenKind::LParen) {
            let (name, _) = self.ident("expected a parameter name")?;
            self.expect(&TokenKind::Colon, "expected `:` after parameter name")?;
            let ty = self.ty()?;
            self.expect(&TokenKind::RParen, "expected `)` after parameter type")?;
            (name, ty)
        } else {
            // Unannotated parameter: dynamically typed.
            let (name, _) = self.ident("expected a parameter")?;
            let dyn_ty = self.ty_build.dynamic();
            (name, dyn_ty)
        };
        self.expect(&TokenKind::FatArrow, "expected `=>` after parameter")?;
        let body = self.expr()?;
        let span = start.merge(body.span);
        Ok(Expr::new(
            ExprKind::Lam {
                param,
                ty,
                body: Box::new(body),
            },
            span,
        ))
    }

    fn let_(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let start = self.expect(&TokenKind::Let, "expected `let`")?.span;
        let (name, _) = self.ident("expected a name after `let`")?;
        let ty = if self.eat(&TokenKind::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        self.expect(&TokenKind::Equals, "expected `=` in let binding")?;
        let bound = self.expr()?;
        self.expect(&TokenKind::In, "expected `in` after let binding")?;
        let body = self.expr()?;
        let span = start.merge(body.span);
        Ok(Expr::new(
            ExprKind::Let {
                name,
                ty,
                bound: Box::new(bound),
                body: Box::new(body),
            },
            span,
        ))
    }

    fn letrec(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let start = self.expect(&TokenKind::Letrec, "expected `letrec`")?.span;
        let (name, _) = self.ident("expected a function name after `letrec`")?;
        self.expect(&TokenKind::LParen, "expected `(` after function name")?;
        let (param, _) = self.ident("expected a parameter name")?;
        self.expect(&TokenKind::Colon, "expected `:` after parameter name")?;
        let param_ty = self.ty()?;
        self.expect(&TokenKind::RParen, "expected `)` after parameter type")?;
        self.expect(&TokenKind::Colon, "expected `:` before the result type")?;
        let result_ty = self.ty()?;
        self.expect(&TokenKind::Equals, "expected `=` in letrec binding")?;
        let fun_body = self.expr()?;
        self.expect(&TokenKind::In, "expected `in` after letrec binding")?;
        let body = self.expr()?;
        let span = start.merge(body.span);
        Ok(Expr::new(
            ExprKind::Letrec {
                name,
                param,
                param_ty,
                result_ty,
                fun_body: Box::new(fun_body),
                body: Box::new(body),
            },
            span,
        ))
    }

    fn if_(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let start = self.expect(&TokenKind::If, "expected `if`")?.span;
        let cond = self.expr()?;
        self.expect(&TokenKind::Then, "expected `then`")?;
        let then_ = self.expr()?;
        self.expect(&TokenKind::Else, "expected `else`")?;
        let else_ = self.expr()?;
        let span = start.merge(else_.span);
        Ok(Expr::new(
            ExprKind::If(Box::new(cond), Box::new(then_), Box::new(else_)),
            span,
        ))
    }

    fn or(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let mut lhs = self.and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Prim(Op::Or, vec![lhs, rhs]), span);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let mut lhs = self.cmp()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Prim(Op::And, vec![lhs, rhs]), span);
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let lhs = self.add()?;
        let op = match self.peek().kind {
            TokenKind::Equals => Some(Op::Eq),
            TokenKind::Less => Some(Op::Lt),
            TokenKind::LessEq => Some(Op::Leq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add()?;
            let span = lhs.span.merge(rhs.span);
            Ok(Expr::new(ExprKind::Prim(op, vec![lhs, rhs]), span))
        } else {
            Ok(lhs)
        }
    }

    fn add(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => Op::Add,
                TokenKind::Minus => Op::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Prim(op, vec![lhs, rhs]), span);
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => Op::Mul,
                TokenKind::Quot => Op::Quot,
                TokenKind::Rem => Op::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Prim(op, vec![lhs, rhs]), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        match self.peek().kind {
            TokenKind::Not => {
                let start = self.bump().span;
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Prim(Op::Not, vec![e]), span))
            }
            TokenKind::Minus => {
                let start = self.bump().span;
                let e = self.unary()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Prim(Op::Neg, vec![e]), span))
            }
            _ => self.app(),
        }
    }

    fn app(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let mut fun = self.atom()?;
        while self.starts_atom() {
            let arg = self.atom()?;
            let span = fun.span.merge(arg.span);
            fun = Expr::new(ExprKind::App(Box::new(fun), Box::new(arg)), span);
        }
        Ok(fun)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Int(_)
                | TokenKind::Ident(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
        )
    }

    fn atom(&mut self) -> Result<Expr<B::Ty>, Diagnostic> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), tok.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), tok.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), tok.span))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::new(ExprKind::Var(name), tok.span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                if self.eat(&TokenKind::Colon) {
                    let ty = self.ty()?;
                    let close = self.expect(&TokenKind::RParen, "expected `)` after ascription")?;
                    let span = tok.span.merge(close.span);
                    Ok(Expr::new(ExprKind::Ascribe(Box::new(inner), ty), span))
                } else {
                    let close = self.expect(&TokenKind::RParen, "expected `)`")?;
                    let span = tok.span.merge(close.span);
                    Ok(Expr::new(inner.kind, span))
                }
            }
            other => Err(Diagnostic::new(
                format!("expected an expression, found `{other}`"),
                tok.span,
            )),
        }
    }

    fn ty(&mut self) -> Result<B::Ty, Diagnostic> {
        let lhs = self.ty_atom()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.ty()?;
            Ok(self.ty_build.fun(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_atom(&mut self) -> Result<B::Ty, Diagnostic> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::TyInt => {
                self.bump();
                Ok(self.ty_build.base(BaseType::Int))
            }
            TokenKind::TyBool => {
                self.bump();
                Ok(self.ty_build.base(BaseType::Bool))
            }
            TokenKind::Question => {
                self.bump();
                Ok(self.ty_build.dynamic())
            }
            TokenKind::LParen => {
                self.bump();
                let t = self.ty()?;
                self.expect(&TokenKind::RParen, "expected `)` in type")?;
                Ok(t)
            }
            other => Err(Diagnostic::new(
                format!("expected a type, found `{other}`"),
                tok.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_str(src: &str) -> Expr {
        parse(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse error: {}", e.render(src)))
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_str("f x y");
        match e.kind {
            ExprKind::App(fx, y) => {
                assert!(matches!(y.kind, ExprKind::Var(ref n) if n == "y"));
                assert!(matches!(fx.kind, ExprKind::App(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_str("1 + 2 * 3");
        match e.kind {
            ExprKind::Prim(Op::Add, args) => {
                assert!(matches!(args[1].kind, ExprKind::Prim(Op::Mul, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrow_types_are_right_associative() {
        let e = parse_str("fun (f : Int -> Int -> Bool) => f");
        match e.kind {
            ExprKind::Lam { ty, .. } => {
                assert_eq!(ty, Type::fun(Type::INT, Type::fun(Type::INT, Type::BOOL)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unannotated_parameters_are_dynamic() {
        let e = parse_str("fun x => x");
        match e.kind {
            ExprKind::Lam { ty, .. } => assert_eq!(ty, Type::DYN),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ascription() {
        let e = parse_str("(1 : ?)");
        assert!(matches!(e.kind, ExprKind::Ascribe(_, Type::Dyn)));
    }

    #[test]
    fn letrec_form() {
        let e = parse_str("letrec f (n : Int) : Int = f (n - 1) in f 3");
        assert!(matches!(e.kind, ExprKind::Letrec { .. }));
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse(&lex("1 < 2 < 3").unwrap()).is_err());
    }

    #[test]
    fn unary_minus_and_not() {
        let e = parse_str("not (- 1 < 2)");
        assert!(matches!(e.kind, ExprKind::Prim(Op::Not, _)));
    }

    #[test]
    fn error_mentions_the_found_token() {
        let err = parse(&lex("if 1 els 2").unwrap()).unwrap_err();
        assert!(err.message.contains("expected `then`"), "{}", err.message);
    }

    #[test]
    fn if_and_or_nest() {
        let e = parse_str("if true and false or true then 1 else 2");
        assert!(matches!(e.kind, ExprKind::If(_, _, _)));
    }
}
