//! Hand-written lexer for the GTLC surface syntax.
//!
//! Comments run from `--` to the end of the line. Identifiers are
//! ASCII `[a-zA-Z_][a-zA-Z0-9_']*`; keywords are carved out of the
//! identifier space.

use crate::diagnostics::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Lexes a source string into tokens (ending with an `Eof` token).
///
/// # Errors
///
/// Returns a [`Diagnostic`] on unrecognised characters or malformed
/// integer literals.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: -- to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Integer literals.
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &source[start..i];
            let value: i64 = text.parse().map_err(|_| {
                Diagnostic::new(
                    format!("integer literal `{text}` is out of range"),
                    Span::new(start, i),
                )
            })?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || ch == '\'' {
                    i += 1;
                } else {
                    break;
                }
            }
            let text = &source[start..i];
            let kind = match text {
                "fun" => TokenKind::Fun,
                "let" => TokenKind::Let,
                "letrec" => TokenKind::Letrec,
                "in" => TokenKind::In,
                "if" => TokenKind::If,
                "then" => TokenKind::Then,
                "else" => TokenKind::Else,
                "true" => TokenKind::True,
                "false" => TokenKind::False,
                "not" => TokenKind::Not,
                "and" => TokenKind::And,
                "or" => TokenKind::Or,
                "quot" => TokenKind::Quot,
                "rem" => TokenKind::Rem,
                "Int" => TokenKind::TyInt,
                "Bool" => TokenKind::TyBool,
                _ => TokenKind::Ident(text.to_owned()),
            };
            tokens.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }
        // Symbols.
        let (kind, len) = match c {
            '?' => (TokenKind::Question, 1),
            '(' => (TokenKind::LParen, 1),
            ')' => (TokenKind::RParen, 1),
            ':' => (TokenKind::Colon, 1),
            '+' => (TokenKind::Plus, 1),
            '*' => (TokenKind::Star, 1),
            '=' if bytes.get(i + 1) == Some(&b'>') => (TokenKind::FatArrow, 2),
            '=' => (TokenKind::Equals, 1),
            '-' if bytes.get(i + 1) == Some(&b'>') => (TokenKind::Arrow, 2),
            '-' => (TokenKind::Minus, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => (TokenKind::LessEq, 2),
            '<' => (TokenKind::Less, 1),
            other => {
                return Err(Diagnostic::new(
                    format!("unrecognised character `{other}`"),
                    Span::new(start, start + other.len_utf8()),
                ))
            }
        };
        i += len;
        tokens.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_lambda() {
        assert_eq!(
            kinds("fun (x : Int) => x + 1"),
            vec![
                TokenKind::Fun,
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::TyInt,
                TokenKind::RParen,
                TokenKind::FatArrow,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_arrows() {
        assert_eq!(
            kinds("-> => - ="),
            vec![
                TokenKind::Arrow,
                TokenKind::FatArrow,
                TokenKind::Minus,
                TokenKind::Equals,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- the loneliest number\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <="),
            vec![TokenKind::Less, TokenKind::LessEq, TokenKind::Eof]
        );
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(
            kinds("even'"),
            vec![TokenKind::Ident("even'".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("1 # 2").is_err());
    }

    #[test]
    fn rejects_huge_literals() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = lex("let x = 10").unwrap();
        assert_eq!(toks[3].span, Span::new(8, 10));
    }
}
