//! A gradually-typed λ-calculus (GTLC) front end for the blame
//! calculus.
//!
//! The PLDI 2015 paper (like the gradual-typing literature it builds
//! on: Siek–Taha 2006, Wadler–Findler 2009) assumes a source language
//! whose type checker admits the dynamic type `?` and whose compiler
//! inserts casts at the boundaries where precision changes, producing
//! λB terms. This crate is that front end:
//!
//! * [`lexer`]/[`parser`] — a hand-written lexer and recursive-descent
//!   parser with source spans;
//! * [`ast`] — the surface syntax;
//! * [`elaborate`](mod@elaborate) — the gradual type checker *and* cast-insertion
//!   pass: it checks consistency (`∼`) where a static checker would
//!   require equality, and emits a λB cast (with a fresh blame label)
//!   at every implicit conversion. Each label is mapped back to the
//!   source span that introduced it, so blame can be reported as a
//!   source diagnostic;
//! * [`diagnostics`] — error and blame rendering against the source.
//!
//! # Example
//!
//! ```
//! use bc_gtlc::compile;
//!
//! let program = bc_gtlc::compile("let f = fun x => x + 1 in f true").unwrap();
//! // The program type-checks gradually (x : ? is cast to Int), but
//! // running it blames the implicit cast at `x + 1`... unless the
//! // argument is an Int.
//! let out = bc_lambda_b::eval::run(&program.term, 1_000).unwrap();
//! assert!(matches!(out.outcome, bc_lambda_b::eval::Outcome::Blame(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diagnostics;
pub mod elaborate;
pub mod lexer;
pub mod parser;
pub mod token;

pub use diagnostics::{Diagnostic, Span};
pub use elaborate::{elaborate, elaborate_compiled, elaborate_in, Program, ProgramC, ProgramI};

/// Parses and elaborates a GTLC source program into a λB term.
///
/// # Errors
///
/// Returns a [`Diagnostic`] (with source span) on lexical, syntactic,
/// or type errors.
pub fn compile(source: &str) -> Result<Program, Diagnostic> {
    let tokens = lexer::lex(source)?;
    let expr = parser::parse(&tokens)?;
    elaborate(&expr)
}

/// [`compile`] against a caller-owned [`bc_syntax::TypeArena`]: the
/// type checker's environment, consistency checks, and joins all run
/// on interned [`bc_syntax::TypeId`]s, so a warm arena answers every
/// repeated question from its memo tables and a structurally similar
/// recompile interns no new type nodes.
///
/// # Errors
///
/// Returns a [`Diagnostic`] (with source span) on lexical, syntactic,
/// or type errors — identical to the one [`compile`] produces.
pub fn compile_in(source: &str, types: &mut bc_syntax::TypeArena) -> Result<ProgramI, Diagnostic> {
    let tokens = lexer::lex(source)?;
    let expr = parser::parse(&tokens)?;
    elaborate_in(&expr, types)
}

/// The allocation-free front end: annotations are interned *at parse
/// time* ([`parser::parse_in`]) and elaboration emits the compiled λB
/// IR directly ([`elaborate_compiled`]) — no `Rc<Type>` spine and no
/// `Rc<Term>` tree is ever built. Against a warm arena the whole
/// source-to-λB pass allocates nothing in the arena at all.
///
/// # Errors
///
/// Returns a [`Diagnostic`] (with source span) on lexical, syntactic,
/// or type errors — identical to the one [`compile`] produces.
pub fn compile_compiled(
    source: &str,
    types: &mut bc_syntax::TypeArena,
) -> Result<ProgramC, Diagnostic> {
    let tokens = lexer::lex(source)?;
    let expr = parser::parse_in(&tokens, types)?;
    elaborate_compiled(&expr, types)
}
